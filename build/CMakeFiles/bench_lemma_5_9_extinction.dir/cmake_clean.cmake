file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma_5_9_extinction.dir/bench/bench_lemma_5_9_extinction.cpp.o"
  "CMakeFiles/bench_lemma_5_9_extinction.dir/bench/bench_lemma_5_9_extinction.cpp.o.d"
  "bench_lemma_5_9_extinction"
  "bench_lemma_5_9_extinction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma_5_9_extinction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
