# Empty dependencies file for bench_lemma_5_9_extinction.
# This may be replaced when dependencies are built.
