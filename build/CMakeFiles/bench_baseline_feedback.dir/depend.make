# Empty dependencies file for bench_baseline_feedback.
# This may be replaced when dependencies are built.
