file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_feedback.dir/bench/bench_baseline_feedback.cpp.o"
  "CMakeFiles/bench_baseline_feedback.dir/bench/bench_baseline_feedback.cpp.o.d"
  "bench_baseline_feedback"
  "bench_baseline_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
