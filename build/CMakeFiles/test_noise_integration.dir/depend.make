# Empty dependencies file for test_noise_integration.
# This may be replaced when dependencies are built.
