file(REMOVE_RECURSE
  "CMakeFiles/test_noise_integration.dir/tests/test_noise_integration.cpp.o"
  "CMakeFiles/test_noise_integration.dir/tests/test_noise_integration.cpp.o.d"
  "test_noise_integration"
  "test_noise_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
