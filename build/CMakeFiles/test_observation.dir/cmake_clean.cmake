file(REMOVE_RECURSE
  "CMakeFiles/test_observation.dir/tests/test_observation.cpp.o"
  "CMakeFiles/test_observation.dir/tests/test_observation.cpp.o.d"
  "test_observation"
  "test_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
