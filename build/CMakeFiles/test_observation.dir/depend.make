# Empty dependencies file for test_observation.
# This may be replaced when dependencies are built.
