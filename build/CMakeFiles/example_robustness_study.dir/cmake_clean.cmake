file(REMOVE_RECURSE
  "CMakeFiles/example_robustness_study.dir/examples/robustness_study.cpp.o"
  "CMakeFiles/example_robustness_study.dir/examples/robustness_study.cpp.o.d"
  "example_robustness_study"
  "example_robustness_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_robustness_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
