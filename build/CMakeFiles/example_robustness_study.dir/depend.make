# Empty dependencies file for example_robustness_study.
# This may be replaced when dependencies are built.
