# Empty dependencies file for test_rumor_spread.
# This may be replaced when dependencies are built.
