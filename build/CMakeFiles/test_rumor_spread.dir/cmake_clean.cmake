file(REMOVE_RECURSE
  "CMakeFiles/test_rumor_spread.dir/tests/test_rumor_spread.cpp.o"
  "CMakeFiles/test_rumor_spread.dir/tests/test_rumor_spread.cpp.o.d"
  "test_rumor_spread"
  "test_rumor_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rumor_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
