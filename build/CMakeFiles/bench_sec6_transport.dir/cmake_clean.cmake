file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_transport.dir/bench/bench_sec6_transport.cpp.o"
  "CMakeFiles/bench_sec6_transport.dir/bench/bench_sec6_transport.cpp.o.d"
  "bench_sec6_transport"
  "bench_sec6_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
