# Empty dependencies file for bench_sec6_transport.
# This may be replaced when dependencies are built.
