file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_ant.dir/tests/test_optimal_ant.cpp.o"
  "CMakeFiles/test_optimal_ant.dir/tests/test_optimal_ant.cpp.o.d"
  "test_optimal_ant"
  "test_optimal_ant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_ant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
