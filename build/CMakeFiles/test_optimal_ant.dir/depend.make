# Empty dependencies file for test_optimal_ant.
# This may be replaced when dependencies are built.
