# Empty dependencies file for bench_sec6_robustness.
# This may be replaced when dependencies are built.
