file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_robustness.dir/bench/bench_sec6_robustness.cpp.o"
  "CMakeFiles/bench_sec6_robustness.dir/bench/bench_sec6_robustness.cpp.o.d"
  "bench_sec6_robustness"
  "bench_sec6_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
