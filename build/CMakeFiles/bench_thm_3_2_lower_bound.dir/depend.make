# Empty dependencies file for bench_thm_3_2_lower_bound.
# This may be replaced when dependencies are built.
