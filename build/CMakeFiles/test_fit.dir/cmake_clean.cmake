file(REMOVE_RECURSE
  "CMakeFiles/test_fit.dir/tests/test_fit.cpp.o"
  "CMakeFiles/test_fit.dir/tests/test_fit.cpp.o.d"
  "test_fit"
  "test_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
