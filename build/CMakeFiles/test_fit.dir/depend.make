# Empty dependencies file for test_fit.
# This may be replaced when dependencies are built.
