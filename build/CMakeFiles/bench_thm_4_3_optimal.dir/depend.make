# Empty dependencies file for bench_thm_4_3_optimal.
# This may be replaced when dependencies are built.
