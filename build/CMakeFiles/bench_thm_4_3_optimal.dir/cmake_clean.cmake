file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_4_3_optimal.dir/bench/bench_thm_4_3_optimal.cpp.o"
  "CMakeFiles/bench_thm_4_3_optimal.dir/bench/bench_thm_4_3_optimal.cpp.o.d"
  "bench_thm_4_3_optimal"
  "bench_thm_4_3_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_4_3_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
