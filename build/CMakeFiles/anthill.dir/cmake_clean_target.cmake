file(REMOVE_RECURSE
  "libanthill.a"
)
