
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiment.cpp" "CMakeFiles/anthill.dir/src/analysis/experiment.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "CMakeFiles/anthill.dir/src/analysis/metrics.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/analysis/metrics.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "CMakeFiles/anthill.dir/src/analysis/report.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/runner.cpp" "CMakeFiles/anthill.dir/src/analysis/runner.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/analysis/runner.cpp.o.d"
  "/root/repo/src/analysis/scenario.cpp" "CMakeFiles/anthill.dir/src/analysis/scenario.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/analysis/scenario.cpp.o.d"
  "/root/repo/src/core/ant.cpp" "CMakeFiles/anthill.dir/src/core/ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/ant.cpp.o.d"
  "/root/repo/src/core/colony.cpp" "CMakeFiles/anthill.dir/src/core/colony.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/colony.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "CMakeFiles/anthill.dir/src/core/convergence.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/convergence.cpp.o.d"
  "/root/repo/src/core/optimal_ant.cpp" "CMakeFiles/anthill.dir/src/core/optimal_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/optimal_ant.cpp.o.d"
  "/root/repo/src/core/quality_aware_ant.cpp" "CMakeFiles/anthill.dir/src/core/quality_aware_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/quality_aware_ant.cpp.o.d"
  "/root/repo/src/core/quorum_ant.cpp" "CMakeFiles/anthill.dir/src/core/quorum_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/quorum_ant.cpp.o.d"
  "/root/repo/src/core/rate_boosted_ant.cpp" "CMakeFiles/anthill.dir/src/core/rate_boosted_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/rate_boosted_ant.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "CMakeFiles/anthill.dir/src/core/registry.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/registry.cpp.o.d"
  "/root/repo/src/core/rumor_spread.cpp" "CMakeFiles/anthill.dir/src/core/rumor_spread.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/rumor_spread.cpp.o.d"
  "/root/repo/src/core/simple_ant.cpp" "CMakeFiles/anthill.dir/src/core/simple_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/simple_ant.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "CMakeFiles/anthill.dir/src/core/simulation.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/simulation.cpp.o.d"
  "/root/repo/src/core/uniform_recruit_ant.cpp" "CMakeFiles/anthill.dir/src/core/uniform_recruit_ant.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/core/uniform_recruit_ant.cpp.o.d"
  "/root/repo/src/env/environment.cpp" "CMakeFiles/anthill.dir/src/env/environment.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/env/environment.cpp.o.d"
  "/root/repo/src/env/faults.cpp" "CMakeFiles/anthill.dir/src/env/faults.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/env/faults.cpp.o.d"
  "/root/repo/src/env/observation.cpp" "CMakeFiles/anthill.dir/src/env/observation.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/env/observation.cpp.o.d"
  "/root/repo/src/env/pairing.cpp" "CMakeFiles/anthill.dir/src/env/pairing.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/env/pairing.cpp.o.d"
  "/root/repo/src/env/scheduler.cpp" "CMakeFiles/anthill.dir/src/env/scheduler.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/env/scheduler.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "CMakeFiles/anthill.dir/src/util/ascii_plot.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/anthill.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/fit.cpp" "CMakeFiles/anthill.dir/src/util/fit.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/fit.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "CMakeFiles/anthill.dir/src/util/histogram.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/anthill.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/anthill.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/anthill.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/anthill.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
