# Empty dependencies file for anthill.
# This may be replaced when dependencies are built.
