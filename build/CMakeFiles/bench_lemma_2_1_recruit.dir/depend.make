# Empty dependencies file for bench_lemma_2_1_recruit.
# This may be replaced when dependencies are built.
