file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma_2_1_recruit.dir/bench/bench_lemma_2_1_recruit.cpp.o"
  "CMakeFiles/bench_lemma_2_1_recruit.dir/bench/bench_lemma_2_1_recruit.cpp.o.d"
  "bench_lemma_2_1_recruit"
  "bench_lemma_2_1_recruit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma_2_1_recruit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
