# Empty dependencies file for bench_sec6_quality.
# This may be replaced when dependencies are built.
