file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_quality.dir/bench/bench_sec6_quality.cpp.o"
  "CMakeFiles/bench_sec6_quality.dir/bench/bench_sec6_quality.cpp.o.d"
  "bench_sec6_quality"
  "bench_sec6_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
