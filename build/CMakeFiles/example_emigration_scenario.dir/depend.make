# Empty dependencies file for example_emigration_scenario.
# This may be replaced when dependencies are built.
