file(REMOVE_RECURSE
  "CMakeFiles/example_emigration_scenario.dir/examples/emigration_scenario.cpp.o"
  "CMakeFiles/example_emigration_scenario.dir/examples/emigration_scenario.cpp.o.d"
  "example_emigration_scenario"
  "example_emigration_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_emigration_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
