file(REMOVE_RECURSE
  "CMakeFiles/test_simple_ant.dir/tests/test_simple_ant.cpp.o"
  "CMakeFiles/test_simple_ant.dir/tests/test_simple_ant.cpp.o.d"
  "test_simple_ant"
  "test_simple_ant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple_ant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
