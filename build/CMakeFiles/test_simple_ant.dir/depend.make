# Empty dependencies file for test_simple_ant.
# This may be replaced when dependencies are built.
