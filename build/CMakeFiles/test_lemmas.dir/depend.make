# Empty dependencies file for test_lemmas.
# This may be replaced when dependencies are built.
