file(REMOVE_RECURSE
  "CMakeFiles/test_lemmas.dir/tests/test_lemmas.cpp.o"
  "CMakeFiles/test_lemmas.dir/tests/test_lemmas.cpp.o.d"
  "test_lemmas"
  "test_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
