file(REMOVE_RECURSE
  "CMakeFiles/example_algorithm_comparison.dir/examples/algorithm_comparison.cpp.o"
  "CMakeFiles/example_algorithm_comparison.dir/examples/algorithm_comparison.cpp.o.d"
  "example_algorithm_comparison"
  "example_algorithm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_algorithm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
