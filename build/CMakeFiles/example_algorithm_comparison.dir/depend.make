# Empty dependencies file for example_algorithm_comparison.
# This may be replaced when dependencies are built.
