# Empty dependencies file for bench_lemma_5_4_initial_gap.
# This may be replaced when dependencies are built.
