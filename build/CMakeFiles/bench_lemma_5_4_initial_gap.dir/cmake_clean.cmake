file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma_5_4_initial_gap.dir/bench/bench_lemma_5_4_initial_gap.cpp.o"
  "CMakeFiles/bench_lemma_5_4_initial_gap.dir/bench/bench_lemma_5_4_initial_gap.cpp.o.d"
  "bench_lemma_5_4_initial_gap"
  "bench_lemma_5_4_initial_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma_5_4_initial_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
