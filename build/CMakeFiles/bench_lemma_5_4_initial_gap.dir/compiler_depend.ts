# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_lemma_5_4_initial_gap.
