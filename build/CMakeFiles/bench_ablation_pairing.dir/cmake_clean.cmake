file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pairing.dir/bench/bench_ablation_pairing.cpp.o"
  "CMakeFiles/bench_ablation_pairing.dir/bench/bench_ablation_pairing.cpp.o.d"
  "bench_ablation_pairing"
  "bench_ablation_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
