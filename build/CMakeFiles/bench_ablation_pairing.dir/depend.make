# Empty dependencies file for bench_ablation_pairing.
# This may be replaced when dependencies are built.
