file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma_4_2_dropout.dir/bench/bench_lemma_4_2_dropout.cpp.o"
  "CMakeFiles/bench_lemma_4_2_dropout.dir/bench/bench_lemma_4_2_dropout.cpp.o.d"
  "bench_lemma_4_2_dropout"
  "bench_lemma_4_2_dropout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma_4_2_dropout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
