# Empty dependencies file for bench_lemma_4_2_dropout.
# This may be replaced when dependencies are built.
