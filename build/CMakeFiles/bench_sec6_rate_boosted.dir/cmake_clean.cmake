file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_rate_boosted.dir/bench/bench_sec6_rate_boosted.cpp.o"
  "CMakeFiles/bench_sec6_rate_boosted.dir/bench/bench_sec6_rate_boosted.cpp.o.d"
  "bench_sec6_rate_boosted"
  "bench_sec6_rate_boosted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_rate_boosted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
