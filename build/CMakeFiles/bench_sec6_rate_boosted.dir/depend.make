# Empty dependencies file for bench_sec6_rate_boosted.
# This may be replaced when dependencies are built.
