file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_engine.dir/bench/bench_sweep_engine.cpp.o"
  "CMakeFiles/bench_sweep_engine.dir/bench/bench_sweep_engine.cpp.o.d"
  "bench_sweep_engine"
  "bench_sweep_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
