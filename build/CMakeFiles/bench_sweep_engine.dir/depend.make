# Empty dependencies file for bench_sweep_engine.
# This may be replaced when dependencies are built.
