file(REMOVE_RECURSE
  "CMakeFiles/test_colony.dir/tests/test_colony.cpp.o"
  "CMakeFiles/test_colony.dir/tests/test_colony.cpp.o.d"
  "test_colony"
  "test_colony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
