# Empty dependencies file for test_colony.
# This may be replaced when dependencies are built.
