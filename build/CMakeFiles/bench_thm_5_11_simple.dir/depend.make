# Empty dependencies file for bench_thm_5_11_simple.
# This may be replaced when dependencies are built.
