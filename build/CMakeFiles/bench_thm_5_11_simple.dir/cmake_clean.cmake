file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_5_11_simple.dir/bench/bench_thm_5_11_simple.cpp.o"
  "CMakeFiles/bench_thm_5_11_simple.dir/bench/bench_thm_5_11_simple.cpp.o.d"
  "bench_thm_5_11_simple"
  "bench_thm_5_11_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_5_11_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
