// Run manifests: a JSON sidecar written next to every sweep CSV that
// records how the artifact was produced — build identity (git sha),
// thread count, cell accounting (total/cached/run), engine and fallback
// counts, and the full identity of every scenario (name, algorithm,
// ResultStore fingerprint, and the exact identity JSON those fingerprints
// hash). The sweep service reuses this very document as its on-disk job
// record, so offline and served runs leave the same provenance trail.
#ifndef HH_ANALYSIS_MANIFEST_HPP
#define HH_ANALYSIS_MANIFEST_HPP

#include <string>

#include "analysis/runner.hpp"
#include "util/json.hpp"

namespace hh::analysis {

/// The git sha this binary was configured from ("unknown" when the build
/// tree was exported outside git). Baked in at CMake configure time.
[[nodiscard]] const char* build_git_sha();

/// Context a manifest records beyond what the BatchResult itself holds.
struct ManifestInfo {
  unsigned threads = 0;               ///< runner worker threads
  const ResumeReport* resume = nullptr;  ///< cached/run split, when resumable
  std::string store_dir;              ///< result-store directory ("" = none)
};

/// Build the manifest document for one batch. When `info.resume` is null
/// the cached count is inferred from the engine counters (cache-served
/// cells are the only trials with an unknown engine).
[[nodiscard]] util::Json run_manifest_json(const BatchResult& batch,
                                           const ManifestInfo& info);

/// Write run_manifest_json next to `csv_path` (foo.csv -> foo.manifest.json;
/// any other extension gets ".manifest.json" appended). Returns the path
/// written, or "" on I/O failure (stderr warning) or when `csv_path` is
/// empty — like write_csv, never fatal.
std::string write_run_manifest(const std::string& csv_path,
                               const BatchResult& batch,
                               const ManifestInfo& info);

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_MANIFEST_HPP
