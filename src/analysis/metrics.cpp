#include "analysis/metrics.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hh::analysis {

std::vector<double> count_series(const core::Trajectories& t, env::NestId nest,
                                 bool committed) {
  const auto& table = committed ? t.committed : t.counts;
  std::vector<double> out;
  out.reserve(table.size());
  for (const auto& row : table) {
    HH_EXPECTS(nest < row.size());
    out.push_back(static_cast<double>(row[nest]));
  }
  return out;
}

std::vector<double> proportion_series(const core::Trajectories& t,
                                      env::NestId nest, std::uint32_t num_ants,
                                      bool committed) {
  HH_EXPECTS(num_ants >= 1);
  std::vector<double> out = count_series(t, nest, committed);
  for (double& v : out) v /= static_cast<double>(num_ants);
  return out;
}

std::vector<double> gap_series(const core::Trajectories& t, env::NestId i,
                               env::NestId j, double cap) {
  std::vector<double> out;
  out.reserve(t.committed.size());
  for (const auto& row : t.committed) {
    HH_EXPECTS(i < row.size() && j < row.size());
    const double hi = static_cast<double>(std::max(row[i], row[j]));
    const double lo = static_cast<double>(std::min(row[i], row[j]));
    out.push_back(lo == 0.0 ? cap : hi / lo - 1.0);
  }
  return out;
}

std::vector<double> competing_nests_series(const core::Trajectories& t) {
  std::vector<double> out;
  out.reserve(t.committed.size());
  for (const auto& row : t.committed) {
    std::uint32_t competing = 0;
    for (std::size_t i = 1; i < row.size(); ++i) competing += row[i] > 0 ? 1 : 0;
    out.push_back(static_cast<double>(competing));
  }
  return out;
}

std::uint32_t extinction_round(const core::Trajectories& t, env::NestId nest) {
  std::uint32_t death = 0;
  for (std::size_t r = 0; r < t.committed.size(); ++r) {
    HH_EXPECTS(nest < t.committed[r].size());
    if (t.committed[r][nest] == 0) {
      if (death == 0) death = static_cast<std::uint32_t>(r + 1);
    } else {
      death = 0;  // came back to life; not extinct yet
    }
  }
  return death;
}

double weighted_duration(const core::RunResult& result, double tandem_cost,
                         double transport_cost) {
  HH_EXPECTS(!result.trajectories.tandem_successes.empty());
  HH_EXPECTS(tandem_cost >= transport_cost);
  const std::size_t horizon =
      result.converged
          ? std::min<std::size_t>(result.rounds,
                                  result.trajectories.tandem_successes.size())
          : result.trajectories.tandem_successes.size();
  double duration = 0.0;
  for (std::size_t r = 0; r < horizon; ++r) {
    duration += result.trajectories.tandem_successes[r] > 0 ? tandem_cost
                                                            : transport_cost;
  }
  return duration;
}

FirstPassageSummary first_passage_summary(
    std::span<const std::uint32_t> first_passage) {
  FirstPassageSummary s;
  std::vector<std::uint32_t> reached;
  reached.reserve(first_passage.size());
  for (const std::uint32_t t : first_passage) {
    if (t == 0) {
      ++s.unreached;
    } else {
      reached.push_back(t);
    }
  }
  s.reached = static_cast<std::uint32_t>(reached.size());
  if (reached.empty()) return s;
  std::sort(reached.begin(), reached.end());
  s.min = reached.front();
  s.max = reached.back();
  double sum = 0.0;
  for (const std::uint32_t t : reached) sum += static_cast<double>(t);
  s.mean = sum / static_cast<double>(reached.size());
  const std::size_t mid = reached.size() / 2;
  s.median = reached.size() % 2 == 1
                 ? static_cast<double>(reached[mid])
                 : (static_cast<double>(reached[mid - 1]) +
                    static_cast<double>(reached[mid])) /
                       2.0;
  return s;
}

util::Series to_series(const std::vector<double>& values, std::string name,
                       char marker) {
  util::Series s;
  s.name = std::move(name);
  s.marker = marker;
  s.y = values;
  s.x.resize(values.size());
  for (std::size_t r = 0; r < values.size(); ++r) {
    s.x[r] = static_cast<double>(r + 1);
  }
  return s;
}

}  // namespace hh::analysis
