// Sharded, append-only on-disk store of completed trial results — the
// substrate of resumable million-trial sweeps (Runner::run_resumable) and
// of the resident sweep service (service/server.hpp).
//
// A store is a directory of shard files. Each worker thread of a resumable
// run appends fixed-size binary records to its OWN shard (no lock on the
// hot path); opening the store scans every shard and builds an in-memory
// index keyed by (scenario fingerprint, trial index, trial seed). A cell
// found in the index is never re-run — and because a trial's result is a
// pure function of (scenario, seed), a batch reconstructed from any mix of
// cached and fresh cells is bit-identical to a cold run at any thread
// count. Kill the process at any point, rerun the same command, and the
// aggregate cannot change.
//
// Cross-process model: N processes may write into ONE directory at once,
// each opening the store with its own writer namespace (a tag baked into
// its shard filenames, so two processes can never race on a file) — there
// is no cross-process locking, on the hot path or anywhere else. Readers
// pick up other writers' records with reload() (incremental: only new
// bytes are parsed, and a tail that was mid-append at the previous scan is
// re-verified). compact() merges every indexed record into a single shard
// and removes the rest — run it only while no other process is writing the
// directory (see DESIGN.md §7 for the invariants).
//
// Durability model: records are framed with a per-record checksum, so a
// shard torn mid-record by a crash (or mid-write kill) loses only its
// unflushed tail — the valid prefix is recovered and the lost cells are
// simply recomputed on resume. See DESIGN.md §4 for the format.
#ifndef HH_ANALYSIS_RESULT_STORE_HPP
#define HH_ANALYSIS_RESULT_STORE_HPP

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"

namespace hh::analysis {

/// Identity of one sweep cell: which scenario (by content fingerprint, not
/// name), which trial slot, and which seed that slot resolved to. The seed
/// is part of the key so a scenario reused at a different sweep position
/// (where trial_seed differs) can never alias a cached record.
struct TrialKey {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint32_t trial = 0;

  [[nodiscard]] bool operator==(const TrialKey&) const = default;
};

struct TrialKeyHash {
  [[nodiscard]] std::size_t operator()(const TrialKey& key) const;
};

/// Content fingerprint of a scenario: a stable 64-bit hash over every
/// field that determines a trial's outcome — algorithm name, colony size,
/// qualities, round caps, stability/tolerance, noise, faults, pairing,
/// skip probability, and algorithm params.
///
/// Deliberately EXCLUDED: the display name and axes (presentation only),
/// config.seed (overwritten per trial; the trial seed is in the key),
/// record_trajectories and enforce_model (side-effect-free — they never
/// change TrialStats), and config.engine (the §1 equivalence contract
/// makes scalar and packed runs bit-identical, so they share cache).
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& scenario);

class ResultStore {
 public:
  /// Open (creating the directory if needed) and index every shard.
  /// Records with bad checksums and torn tails are dropped (counted in
  /// dropped_records()); whole files with a bad header are quarantined —
  /// renamed to *.hhrs.bad and counted in quarantined_files(). A file still
  /// shorter than its header is left pending (a live writer may be
  /// mid-create) and re-checked on the next reload().
  ///
  /// `writer_namespace` tags every shard THIS store creates (letters,
  /// digits, '-', '_'; other characters are replaced with '_'). Give each
  /// process of a shared directory its own namespace so shard files can
  /// never collide; loading is namespace-agnostic — every *.hhrs file in
  /// the directory is indexed regardless of who wrote it.
  explicit ResultStore(std::filesystem::path directory,
                       std::string writer_namespace = {});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The cached result for `key`, or nullptr. Safe to call concurrently
  /// with other find()s (the index is immutable outside reload()/
  /// compact()); never call it concurrently with those two.
  [[nodiscard]] const TrialStats* find(const TrialKey& key) const;

  /// Rescan the directory and index everything appended since the last
  /// scan — new shard files (any writer's) and new records on known ones.
  /// Incremental: previously parsed bytes are never re-read, except that
  /// a tail which failed its checksum at the last scan is re-verified (a
  /// record that was MID-APPEND by a live writer then may be complete
  /// now). Returns the number of newly indexed records. Not thread-safe
  /// with find(); the caller serializes (the sweep service reloads
  /// between jobs, never during one).
  std::size_t reload();

  struct CompactReport {
    std::size_t records = 0;        ///< records in the merged shard
    std::size_t removed_files = 0;  ///< old shard files deleted
  };

  /// Merge every indexed record into one freshly written shard and delete
  /// all other shard files. Safe against a crash at any point (the merged
  /// shard is complete and checksummed before anything is removed;
  /// duplicate records are idempotent). NOT safe under concurrent writers
  /// in other processes — their open shards would be unlinked and their
  /// records lost to future opens. Run it from the single coordinating
  /// process while the directory is quiescent. On a failed write (disk
  /// full) the store is left untouched.
  CompactReport compact();

  /// Indexed records / shard files scanned / invalid records dropped.
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t shard_files() const { return files_.size(); }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  /// Shards quarantined since open: files whose HEADER failed verification
  /// (foreign or corrupted file, not a torn tail) are renamed to
  /// `<shard>.hhrs.bad` so they are never rescanned and an operator can
  /// inspect them. Cumulative count; surfaced in ResumeReport and the
  /// daemon's status output.
  [[nodiscard]] std::size_t quarantined_files() const { return quarantined_; }
  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }
  [[nodiscard]] const std::string& writer_namespace() const { return ns_; }

  /// Append-only writer over one worker-private shard file. Not
  /// thread-safe — one writer per worker. flush() pushes buffered records
  /// to the OS (so they survive a SIGKILL of this process); the
  /// destructor flushes too. A failed write (disk full) is reported to
  /// stderr once and exposed via write_failed() — the run's RESULTS stay
  /// correct either way; only resumability of this run's cells is lost.
  class ShardWriter {
   public:
    void append(const TrialKey& key, const TrialStats& stats);
    void flush();
    [[nodiscard]] bool write_failed() const { return write_failed_; }
    ~ShardWriter();

   private:
    friend class ResultStore;
    ShardWriter(std::ofstream out);

    std::ofstream out_;
    std::vector<std::uint8_t> buffer_;  // reused per record
    bool write_failed_ = false;
  };

  /// Create a new shard file for one worker. Thread-safe (file naming is
  /// serialized); the returned writer itself is single-threaded.
  [[nodiscard]] std::unique_ptr<ShardWriter> open_shard();

 private:
  /// Per-shard-file scan cursor (reload() resumes parsing here).
  struct ShardState {
    std::uintmax_t offset = 0;  ///< bytes consumed through last valid record
    bool header_ok = false;
    bool dead = false;  ///< bad header: never read this file again
    bool quarantined = false;  ///< renamed to *.hhrs.bad; cursor removable
    /// Offset whose invalid record was already counted in dropped_ (so a
    /// persistently-torn tail is not re-counted every reload).
    std::uintmax_t counted_bad_at = static_cast<std::uintmax_t>(-1);
  };

  /// Parse everything after state.offset; returns newly indexed records.
  std::size_t scan_shard(const std::filesystem::path& path, ShardState& state);
  /// Index all *.hhrs files (new cursors for unseen paths).
  std::size_t scan_directory();
  /// Reserve the next shard filename for this writer (serialized).
  std::filesystem::path next_shard_path();

  std::filesystem::path dir_;
  std::string ns_;
  // Audited: the only iteration is compact(), which sorts records by key
  // before writing (byte-identical merged shards regardless of hash
  // order); find()/insert never feed ordered output.
  std::unordered_map<TrialKey, TrialStats, TrialKeyHash> index_;  // lint: order-independent
  /// Scan cursors keyed by path; std::map for deterministic scan order.
  std::map<std::filesystem::path, ShardState> files_;
  std::size_t dropped_ = 0;
  std::size_t quarantined_ = 0;

  std::mutex shard_mutex_;      // guards shard file creation only
  std::uint64_t session_ = 0;   // per-open nonce, keeps shard names unique
  unsigned next_shard_ = 0;
};

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_RESULT_STORE_HPP
