// Sharded, append-only on-disk store of completed trial results — the
// substrate of resumable million-trial sweeps (Runner::run_resumable).
//
// A store is a directory of shard files. Each worker thread of a resumable
// run appends fixed-size binary records to its OWN shard (no lock on the
// hot path); opening the store scans every shard and builds an in-memory
// index keyed by (scenario fingerprint, trial index, trial seed). A cell
// found in the index is never re-run — and because a trial's result is a
// pure function of (scenario, seed), a batch reconstructed from any mix of
// cached and fresh cells is bit-identical to a cold run at any thread
// count. Kill the process at any point, rerun the same command, and the
// aggregate cannot change.
//
// Durability model: records are framed with a per-record checksum, so a
// shard torn mid-record by a crash (or mid-write kill) loses only its
// unflushed tail — the valid prefix is recovered and the lost cells are
// simply recomputed on resume. See DESIGN.md §4 for the format.
#ifndef HH_ANALYSIS_RESULT_STORE_HPP
#define HH_ANALYSIS_RESULT_STORE_HPP

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"

namespace hh::analysis {

/// Identity of one sweep cell: which scenario (by content fingerprint, not
/// name), which trial slot, and which seed that slot resolved to. The seed
/// is part of the key so a scenario reused at a different sweep position
/// (where trial_seed differs) can never alias a cached record.
struct TrialKey {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint32_t trial = 0;

  [[nodiscard]] bool operator==(const TrialKey&) const = default;
};

struct TrialKeyHash {
  [[nodiscard]] std::size_t operator()(const TrialKey& key) const;
};

/// Content fingerprint of a scenario: a stable 64-bit hash over every
/// field that determines a trial's outcome — algorithm name, colony size,
/// qualities, round caps, stability/tolerance, noise, faults, pairing,
/// skip probability, and algorithm params.
///
/// Deliberately EXCLUDED: the display name and axes (presentation only),
/// config.seed (overwritten per trial; the trial seed is in the key),
/// record_trajectories and enforce_model (side-effect-free — they never
/// change TrialStats), and config.engine (the §1 equivalence contract
/// makes scalar and packed runs bit-identical, so they share cache).
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& scenario);

class ResultStore {
 public:
  /// Open (creating the directory if needed) and index every shard.
  /// Records with bad checksums and torn tails are dropped (counted in
  /// dropped_records()); whole files with a bad header are skipped.
  explicit ResultStore(std::filesystem::path directory);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The cached result for `key`, or nullptr. Safe to call concurrently
  /// with other find()s (the index is immutable after construction).
  [[nodiscard]] const TrialStats* find(const TrialKey& key) const;

  /// Indexed records / shard files scanned / invalid records dropped.
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t shard_files() const { return shard_files_; }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

  /// Append-only writer over one worker-private shard file. Not
  /// thread-safe — one writer per worker. flush() pushes buffered records
  /// to the OS (so they survive a SIGKILL of this process); the
  /// destructor flushes too. A failed write (disk full) is reported to
  /// stderr once and exposed via write_failed() — the run's RESULTS stay
  /// correct either way; only resumability of this run's cells is lost.
  class ShardWriter {
   public:
    void append(const TrialKey& key, const TrialStats& stats);
    void flush();
    [[nodiscard]] bool write_failed() const { return write_failed_; }
    ~ShardWriter();

   private:
    friend class ResultStore;
    ShardWriter(std::ofstream out);

    std::ofstream out_;
    std::vector<std::uint8_t> buffer_;  // reused per record
    bool write_failed_ = false;
  };

  /// Create a new shard file for one worker. Thread-safe (file naming is
  /// serialized); the returned writer itself is single-threaded.
  [[nodiscard]] std::unique_ptr<ShardWriter> open_shard();

 private:
  void load_shard(const std::filesystem::path& path);

  std::filesystem::path dir_;
  std::unordered_map<TrialKey, TrialStats, TrialKeyHash> index_;
  std::size_t shard_files_ = 0;
  std::size_t dropped_ = 0;

  std::mutex shard_mutex_;      // guards shard file creation only
  std::uint64_t session_ = 0;   // per-open nonce, keeps shard names unique
  unsigned next_shard_ = 0;
};

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_RESULT_STORE_HPP
