// The shared bench-driver front-end: one flag parser and one
// declare-then-run harness replacing the hand-rolled argv loops the 15
// drivers used to carry.
//
// Every driver follows the same shape:
//
//   int main(int argc, char** argv) {
//     hh::analysis::cli::Experiment exp("thm511", argc, argv);
//     exp.declare("grid",   spec,  kTrials, 0x511);     // defaults
//     exp.declare("ksweep", kspec, kTrials, 0x511F);
//     if (exp.dump_spec_requested()) return 0;           // --dump-spec
//     const auto batch = exp.run("grid");                // or exp.scenarios()
//     ...reporting...
//   }
//
// Standard flags (uniform across all drivers):
//   --spec FILE     run from a serialized ExperimentSpec instead of the
//                   declared defaults ("-" = stdin). Sweeps are matched
//                   by name; a file sweep the driver never declares is an
//                   error (it would silently not run).
//   --dump-spec     print the canonical JSON of what WOULD run (defaults
//                   + any --spec/--trials/--seed overrides) and exit.
//                   `driver --dump-spec | driver --spec /dev/stdin`
//                   reproduces the flag-driven run bit-for-bit — same
//                   ResultStore fingerprints, same tidy CSV.
//   --resume-dir D  checkpoint every (scenario, trial) cell into an
//                   analysis::ResultStore at D (Runner::run_resumable).
//   --threads N     worker threads (0 = all cores).
//   --trials N      override every sweep's trial count.
//   --seed N        override every sweep's base seed.
//   --progress      repaint a per-sweep progress line on stderr
//                   (stderr_progress in report.hpp) as blocks finish.
#ifndef HH_ANALYSIS_CLI_HPP
#define HH_ANALYSIS_CLI_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/runner.hpp"
#include "analysis/spec.hpp"

namespace hh::analysis::cli {

/// The parsed standard flag set.
struct Options {
  std::string spec_path;    ///< --spec FILE ("" = none, "-" = stdin)
  bool dump_spec = false;   ///< --dump-spec
  std::string resume_dir;   ///< --resume-dir DIR ("" = no checkpointing)
  unsigned threads = 0;     ///< --threads N (0 = hardware concurrency)
  bool progress = false;    ///< --progress (stderr status line per sweep)
  std::optional<std::size_t> trials;       ///< --trials N override
  std::optional<std::uint64_t> base_seed;  ///< --seed N override
};

/// Parse a driver's argv. Prints usage and calls std::exit — 0 on
/// --help, 2 on a malformed or unknown flag (a flag without its required
/// argument is a usage error, reported on stderr).
[[nodiscard]] Options parse_options(int argc, char** argv,
                                    std::string_view driver);

/// The declare-then-run harness. Declaration must be complete before
/// dump_spec_requested(); execution accessors are valid after it.
class Experiment {
 public:
  /// Parses argv (see parse_options) and, under --spec, loads the file —
  /// exiting with a diagnostic on unreadable/malformed specs.
  Experiment(std::string name, int argc, char** argv);
  /// Testing seam: inject pre-parsed options (no exit paths except the
  /// declared-sweep validation).
  Experiment(std::string name, Options options);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Declare one sweep with its in-code defaults. Under --spec, a file
  /// entry of the same name REPLACES the defaults (scenarios, trials,
  /// seed); --trials/--seed apply on top either way.
  void declare(std::string sweep, SweepSpec spec, std::size_t trials,
               std::uint64_t base_seed);
  void declare(std::string sweep, std::vector<Scenario> scenarios,
               std::size_t trials, std::uint64_t base_seed);

  /// Call once after all declare()s. Validates that every sweep in a
  /// --spec file was declared (exit 2 otherwise — a file sweep that
  /// never runs would be silent data loss); under --dump-spec prints the
  /// canonical JSON to stdout and returns true (driver returns 0).
  [[nodiscard]] bool dump_spec_requested();

  /// Run one declared sweep: Runner::run, or run_resumable under
  /// --resume-dir (cached/run split printed), plus the engine-fallback
  /// summary (report.hpp). Throws std::out_of_range for an undeclared
  /// name.
  [[nodiscard]] BatchResult run(std::string_view sweep);

  /// The expanded scenarios / effective trials / effective seed of a
  /// declared sweep — for drivers that measure through Runner::map
  /// instead of run(). The scenario vector is cached (stable reference).
  [[nodiscard]] const std::vector<Scenario>& scenarios(std::string_view sweep);
  [[nodiscard]] std::size_t trials(std::string_view sweep) const;
  [[nodiscard]] std::uint64_t base_seed(std::string_view sweep) const;

  /// The shared runner (constructed once from --threads).
  [[nodiscard]] const Runner& runner();

  [[nodiscard]] const Options& options() const { return options_; }
  /// The effective experiment description (what --dump-spec prints).
  [[nodiscard]] const ExperimentSpec& spec() const { return effective_; }

 private:
  /// Lazily expanded scenario cache, parallel to effective_.sweeps.
  struct Expansion {
    std::vector<Scenario> scenarios;
    bool ready = false;
  };

  [[nodiscard]] std::size_t index_or_throw(std::string_view sweep) const;
  void adopt(SweepEntry entry);

  std::string name_;
  Options options_;
  ExperimentSpec loaded_;              ///< --spec file content
  std::vector<bool> loaded_consumed_;  ///< per loaded_.sweeps entry
  ExperimentSpec effective_;           ///< the declared (effective) sweeps
  std::vector<Expansion> expansions_;  ///< parallel to effective_.sweeps
  std::unique_ptr<Runner> runner_;
};

}  // namespace hh::analysis::cli

#endif  // HH_ANALYSIS_CLI_HPP
