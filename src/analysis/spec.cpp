#include "analysis/spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "core/registry.hpp"
#include "util/contracts.hpp"

namespace hh::analysis {

using util::Json;

SpecError::SpecError(std::string path, const std::string& message)
    : std::runtime_error(message + " (at " + path + ")"),
      path_(std::move(path)) {}

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw SpecError(path, message);
}

std::string at(const std::string& path, std::string_view key) {
  return path + "." + std::string(key);
}

std::string at(const std::string& path, std::size_t index) {
  return path + "[" + std::to_string(index) + "]";
}

// --- typed readers ----------------------------------------------------------

double read_number(const Json& json, const std::string& path) {
  if (!json.is_number()) fail(path, "expected a number");
  return json.as_number();
}

double read_number_in(const Json& json, const std::string& path, double lo,
                      double hi) {
  const double v = read_number(json, path);
  if (!(v >= lo && v <= hi)) {
    fail(path, "value " + util::format_double(v) + " is outside [" +
                   util::format_double(lo) + ", " + util::format_double(hi) +
                   "]");
  }
  return v;
}

std::uint32_t read_u32(const Json& json, const std::string& path) {
  const double v = read_number(json, path);
  if (v < 0.0 || v > 4294967295.0 || v != std::floor(v)) {
    fail(path, "expected an unsigned 32-bit integer");
  }
  return static_cast<std::uint32_t>(v);
}

/// Canonical 64-bit unsigned: a decimal string (doubles cannot carry all
/// 64 bits); a plain non-negative integer number is accepted up to 2^53.
std::uint64_t read_u64(const Json& json, const std::string& path) {
  if (json.is_string()) {
    const std::string& s = json.as_string();
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      fail(path, "expected a decimal unsigned integer string");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size()) {
      fail(path, "unsigned integer out of 64-bit range");
    }
    return v;
  }
  if (json.is_number()) {
    const double v = json.as_number();
    if (v < 0.0 || v != std::floor(v) || v > 9007199254740992.0) {
      fail(path,
           "expected an unsigned integer (use a decimal string for values "
           "beyond 2^53)");
    }
    return static_cast<std::uint64_t>(v);
  }
  fail(path, "expected an unsigned integer (number or decimal string)");
}

Json u64_json(std::uint64_t v) { return Json(std::to_string(v)); }

bool read_bool(const Json& json, const std::string& path) {
  if (!json.is_bool()) fail(path, "expected true or false");
  return json.as_bool();
}

const std::string& read_string(const Json& json, const std::string& path) {
  if (!json.is_string()) fail(path, "expected a string");
  return json.as_string();
}

const Json::Array& read_array(const Json& json, const std::string& path) {
  if (!json.is_array()) fail(path, "expected an array");
  return json.as_array();
}

std::vector<double> read_numbers(const Json& json, const std::string& path,
                                 double lo, double hi) {
  const Json::Array& array = read_array(json, path);
  std::vector<double> out;
  out.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    out.push_back(read_number_in(array[i], at(path, i), lo, hi));
  }
  return out;
}

std::vector<std::uint32_t> read_u32s(const Json& json,
                                     const std::string& path) {
  const Json::Array& array = read_array(json, path);
  std::vector<std::uint32_t> out;
  out.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    out.push_back(read_u32(array[i], at(path, i)));
  }
  return out;
}

/// Object traversal that REJECTS unknown keys: every key must be consumed
/// through get()/require() before finish(), or the leftover key's full
/// path lands in a SpecError. The backbone of "a typo fails loudly".
class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string path) : path_(std::move(path)) {
    if (!json.is_object()) fail(path_, "expected an object");
    object_ = &json.as_object();
    consumed_.assign(object_->size(), false);
  }

  [[nodiscard]] const std::string& path() const { return path_; }

  /// The member named `key`, or nullptr (marks the key consumed).
  const Json* get(std::string_view key) {
    for (std::size_t i = 0; i < object_->size(); ++i) {
      if ((*object_)[i].first == key) {
        consumed_[i] = true;
        return &(*object_)[i].second;
      }
    }
    return nullptr;
  }

  const Json& require(std::string_view key) {
    const Json* member = get(key);
    if (member == nullptr) {
      fail(at(path_, key), "missing required key");
    }
    return *member;
  }

  /// Call after all reads: any unconsumed key is an error.
  void finish() const {
    for (std::size_t i = 0; i < object_->size(); ++i) {
      if (!consumed_[i]) {
        fail(at(path_, (*object_)[i].first), "unknown key");
      }
    }
  }

 private:
  const Json::Object* object_;
  std::string path_;
  std::vector<bool> consumed_;
};

// --- enum codecs ------------------------------------------------------------

env::PairingKind pairing_from_name(const std::string& name,
                                   const std::string& path) {
  if (const auto kind = env::pairing_from_name(name)) return *kind;
  fail(path, "unknown pairing '" + name +
                 "' (expected \"permutation\", \"uniform-proposal\", or "
                 "\"counter-lottery\")");
}

env::BackendKind backend_from_name(const std::string& name,
                                   const std::string& path) {
  if (const auto kind = env::backend_from_name(name)) return *kind;
  fail(path, "unknown environment backend '" + name +
                 "' (expected \"home-nest\" or \"lattice\")");
}

core::EngineKind engine_from_name(const std::string& name,
                                  const std::string& path) {
  for (const core::EngineKind kind :
       {core::EngineKind::kAuto, core::EngineKind::kScalar,
        core::EngineKind::kPacked}) {
    if (core::engine_name(kind) == name) return kind;
  }
  fail(path, "unknown engine '" + name +
                 "' (expected \"auto\", \"scalar\", or \"packed\")");
}

// --- config / params --------------------------------------------------------

Json qualities_json(const std::vector<double>& qualities) {
  Json out{Json::Array{}};
  for (const double q : qualities) out.push_back(Json(q));
  return out;
}

/// Full lattice world block (every field, fixed order).
Json lattice_to_json(const env::LatticeConfig& lattice) {
  Json j{Json::Object{}};
  j.set("width", Json(static_cast<double>(lattice.width)));
  j.set("height", Json(static_cast<double>(lattice.height)));
  j.set("nest_site", Json(static_cast<double>(lattice.nest_site)));
  j.set("target_site", Json(static_cast<double>(lattice.target_site)));
  j.set("persist_fast", Json(lattice.persist_fast));
  j.set("persist_slow", Json(lattice.persist_slow));
  j.set("fast_fraction", Json(lattice.fast_fraction));
  return j;
}

env::LatticeConfig lattice_from_json(const Json& json,
                                     const std::string& path) {
  ObjectReader reader(json, path);
  env::LatticeConfig lattice;
  if (const Json* v = reader.get("width")) {
    lattice.width = read_u32(*v, at(path, "width"));
  }
  if (const Json* v = reader.get("height")) {
    lattice.height = read_u32(*v, at(path, "height"));
  }
  if (const Json* v = reader.get("nest_site")) {
    lattice.nest_site = read_u32(*v, at(path, "nest_site"));
  }
  if (const Json* v = reader.get("target_site")) {
    lattice.target_site = read_u32(*v, at(path, "target_site"));
  }
  if (const Json* v = reader.get("persist_fast")) {
    lattice.persist_fast =
        read_number_in(*v, at(path, "persist_fast"), 0.0, 1.0);
  }
  if (const Json* v = reader.get("persist_slow")) {
    lattice.persist_slow =
        read_number_in(*v, at(path, "persist_slow"), 0.0, 1.0);
  }
  if (const Json* v = reader.get("fast_fraction")) {
    lattice.fast_fraction =
        read_number_in(*v, at(path, "fast_fraction"), 0.0, 1.0);
  }
  reader.finish();
  return lattice;
}

/// Full canonical config (every field, fixed order).
Json config_to_json(const core::SimulationConfig& config) {
  Json j{Json::Object{}};
  j.set("num_ants", Json(static_cast<double>(config.num_ants)));
  j.set("qualities", qualities_json(config.qualities));
  j.set("seed", u64_json(config.seed));
  j.set("max_rounds", Json(static_cast<double>(config.max_rounds)));
  j.set("stability_rounds",
        Json(static_cast<double>(config.stability_rounds)));
  j.set("convergence_tolerance", Json(config.convergence_tolerance));
  j.set("enforce_model", Json(config.enforce_model));
  j.set("record_trajectories", Json(config.record_trajectories));
  j.set("skip_probability", Json(config.skip_probability));
  Json noise{Json::Object{}};
  noise.set("count_sigma", Json(config.noise.count_sigma));
  noise.set("quality_flip_prob", Json(config.noise.quality_flip_prob));
  noise.set("quality_sigma", Json(config.noise.quality_sigma));
  j.set("noise", std::move(noise));
  Json faults{Json::Object{}};
  faults.set("crash_fraction", Json(config.faults.crash_fraction));
  faults.set("byzantine_fraction", Json(config.faults.byzantine_fraction));
  faults.set("crash_horizon",
             Json(static_cast<double>(config.faults.crash_horizon)));
  j.set("faults", std::move(faults));
  j.set("pairing", Json(env::pairing_name(config.pairing)));
  j.set("engine", Json(core::engine_name(config.engine)));
  // Backend vocabulary is ADDITIVE: home-nest configs serialize exactly
  // as they did pre-seam (no env_backend key), so every existing spec
  // file and fingerprint is untouched. New worlds add their block.
  if (config.env_backend != env::BackendKind::kHomeNest) {
    j.set("env_backend", Json(env::backend_name(config.env_backend)));
    j.set("lattice", lattice_to_json(config.lattice));
  }
  return j;
}

/// Whether a config must be runnable on its own. A SCENARIO config must
/// be (n >= 1, k >= 1); a sweep BASE config may leave num_ants/qualities
/// unset when an axis (colony_sizes, nest_counts, ...) fills them.
enum class ConfigRole : std::uint8_t { kScenario, kBase };

core::SimulationConfig config_from_json(const Json& json,
                                        const std::string& path,
                                        ConfigRole role) {
  ObjectReader reader(json, path);
  core::SimulationConfig config;
  const Json* num_ants = role == ConfigRole::kScenario
                             ? &reader.require("num_ants")
                             : reader.get("num_ants");
  if (num_ants != nullptr) {
    config.num_ants = read_u32(*num_ants, at(path, "num_ants"));
  }
  if (role == ConfigRole::kScenario && config.num_ants == 0) {
    fail(at(path, "num_ants"), "must be >= 1");
  }
  const Json* qualities = role == ConfigRole::kScenario
                              ? &reader.require("qualities")
                              : reader.get("qualities");
  if (qualities != nullptr) {
    const std::string qpath = at(path, "qualities");
    const Json::Array& array = read_array(*qualities, qpath);
    if (role == ConfigRole::kScenario && array.empty()) {
      fail(qpath, "at least one candidate nest is required");
    }
    config.qualities.reserve(array.size());
    for (std::size_t i = 0; i < array.size(); ++i) {
      config.qualities.push_back(
          read_number_in(array[i], at(qpath, i), 0.0, 1.0));
    }
  }
  if (const Json* v = reader.get("seed")) {
    config.seed = read_u64(*v, at(path, "seed"));
  }
  if (const Json* v = reader.get("max_rounds")) {
    config.max_rounds = read_u32(*v, at(path, "max_rounds"));
  }
  if (const Json* v = reader.get("stability_rounds")) {
    config.stability_rounds = read_u32(*v, at(path, "stability_rounds"));
  }
  if (const Json* v = reader.get("convergence_tolerance")) {
    config.convergence_tolerance =
        read_number_in(*v, at(path, "convergence_tolerance"), 0.0, 1.0);
  }
  if (const Json* v = reader.get("enforce_model")) {
    config.enforce_model = read_bool(*v, at(path, "enforce_model"));
  }
  if (const Json* v = reader.get("record_trajectories")) {
    config.record_trajectories =
        read_bool(*v, at(path, "record_trajectories"));
  }
  if (const Json* v = reader.get("skip_probability")) {
    config.skip_probability =
        read_number_in(*v, at(path, "skip_probability"), 0.0, 1.0);
  }
  if (const Json* v = reader.get("noise")) {
    const std::string npath = at(path, "noise");
    ObjectReader noise(*v, npath);
    if (const Json* n = noise.get("count_sigma")) {
      config.noise.count_sigma = read_number_in(
          *n, at(npath, "count_sigma"), 0.0,
          std::numeric_limits<double>::max());
    }
    if (const Json* n = noise.get("quality_flip_prob")) {
      config.noise.quality_flip_prob =
          read_number_in(*n, at(npath, "quality_flip_prob"), 0.0, 1.0);
    }
    if (const Json* n = noise.get("quality_sigma")) {
      config.noise.quality_sigma =
          read_number_in(*n, at(npath, "quality_sigma"), 0.0,
                         std::numeric_limits<double>::max());
    }
    noise.finish();
  }
  if (const Json* v = reader.get("faults")) {
    const std::string fpath = at(path, "faults");
    ObjectReader faults(*v, fpath);
    if (const Json* f = faults.get("crash_fraction")) {
      config.faults.crash_fraction =
          read_number_in(*f, at(fpath, "crash_fraction"), 0.0, 1.0);
    }
    if (const Json* f = faults.get("byzantine_fraction")) {
      config.faults.byzantine_fraction =
          read_number_in(*f, at(fpath, "byzantine_fraction"), 0.0, 1.0);
    }
    if (const Json* f = faults.get("crash_horizon")) {
      config.faults.crash_horizon =
          read_u32(*f, at(fpath, "crash_horizon"));
    }
    faults.finish();
  }
  if (const Json* v = reader.get("pairing")) {
    config.pairing = pairing_from_name(
        read_string(*v, at(path, "pairing")), at(path, "pairing"));
  }
  if (const Json* v = reader.get("engine")) {
    config.engine = engine_from_name(read_string(*v, at(path, "engine")),
                                     at(path, "engine"));
  }
  if (const Json* v = reader.get("env_backend")) {
    config.env_backend = backend_from_name(
        read_string(*v, at(path, "env_backend")), at(path, "env_backend"));
  }
  if (const Json* v = reader.get("lattice")) {
    if (config.env_backend != env::BackendKind::kLattice) {
      fail(at(path, "lattice"),
           "lattice world block given but env_backend is '" +
               std::string(env::backend_name(config.env_backend)) +
               "' (set \"env_backend\": \"lattice\")");
    }
    config.lattice = lattice_from_json(*v, at(path, "lattice"));
  }
  reader.finish();
  return config;
}

/// Canonical params: every algorithm_param_table() key, table order. The
/// table IS the schema — a field added to AlgorithmParams shows up here
/// (and in identity fingerprints) by adding its table row.
Json params_to_json(const core::AlgorithmParams& params) {
  Json j{Json::Object{}};
  for (const core::ParamInfo& info : core::algorithm_param_table()) {
    j.set(std::string(info.key), Json(params.*(info.field)));
  }
  return j;
}

core::AlgorithmParams params_from_json(const Json& json,
                                       const std::string& path) {
  ObjectReader reader(json, path);
  core::AlgorithmParams params;
  for (const core::ParamInfo& info : core::algorithm_param_table()) {
    if (const Json* v = reader.get(info.key)) {
      params.*(info.field) = read_number_in(*v, at(path, std::string(info.key)),
                                            info.min_value, info.max_value);
    }
  }
  reader.finish();  // a key outside the table is a typo, not a tunable
  return params;
}

std::string read_algorithm(const Json& json, const std::string& path) {
  const std::string& name = read_string(json, path);
  if (!core::AlgorithmRegistry::instance().contains(name)) {
    fail(path, "unknown algorithm '" + name +
                   "' (registered: " + core::known_algorithms() + ")");
  }
  return name;
}

// --- scenario ---------------------------------------------------------------

Json axis_value_to_json(const AxisValue& axis) {
  Json j{Json::Object{}};
  j.set("axis", Json(axis.axis));
  j.set("value", Json(axis.value));
  j.set("label", Json(axis.label));
  return j;
}

AxisValue axis_value_from_json(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  AxisValue axis;
  axis.axis = read_string(reader.require("axis"), at(path, "axis"));
  axis.value = read_number(reader.require("value"), at(path, "value"));
  if (const Json* v = reader.get("label")) {
    axis.label = read_string(*v, at(path, "label"));
  }
  reader.finish();
  return axis;
}

/// The shared core of scenario_to_json (full form) and the sweep base
/// (no name/axes).
void emit_scenario_body(Json& j, const Scenario& scenario) {
  j.set("algorithm", Json(scenario.algorithm));
  j.set("config", config_to_json(scenario.config));
  j.set("params", params_to_json(scenario.params));
}

}  // namespace

Json scenario_to_json(const Scenario& scenario) {
  Json j{Json::Object{}};
  j.set("name", Json(scenario.name));
  emit_scenario_body(j, scenario);
  Json axes{Json::Array{}};
  for (const AxisValue& axis : scenario.axes) {
    axes.push_back(axis_value_to_json(axis));
  }
  j.set("axes", std::move(axes));
  return j;
}

Scenario scenario_from_json(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  Scenario scenario;
  if (const Json* v = reader.get("name")) {
    scenario.name = read_string(*v, at(path, "name"));
  }
  scenario.algorithm =
      read_algorithm(reader.require("algorithm"), at(path, "algorithm"));
  scenario.config = config_from_json(reader.require("config"),
                                     at(path, "config"), ConfigRole::kScenario);
  if (const Json* v = reader.get("params")) {
    scenario.params = params_from_json(*v, at(path, "params"));
  }
  if (const Json* v = reader.get("axes")) {
    const std::string apath = at(path, "axes");
    const Json::Array& array = read_array(*v, apath);
    for (std::size_t i = 0; i < array.size(); ++i) {
      scenario.axes.push_back(axis_value_from_json(array[i], at(apath, i)));
    }
  }
  reader.finish();
  return scenario;
}

std::string scenario_identity_json(const Scenario& scenario) {
  // EXACTLY the outcome-determining fields (see scenario_fingerprint's
  // contract): no name/axes (presentation), no seed (per trial), no
  // engine (the §1 equivalence contract shares cache across engines), no
  // enforce_model/record_trajectories (side-effect-free).
  const core::SimulationConfig& c = scenario.config;
  Json config{Json::Object{}};
  config.set("num_ants", Json(static_cast<double>(c.num_ants)));
  config.set("qualities", qualities_json(c.qualities));
  config.set("max_rounds", Json(static_cast<double>(c.max_rounds)));
  config.set("stability_rounds", Json(static_cast<double>(c.stability_rounds)));
  config.set("convergence_tolerance", Json(c.convergence_tolerance));
  config.set("skip_probability", Json(c.skip_probability));
  Json noise{Json::Object{}};
  noise.set("count_sigma", Json(c.noise.count_sigma));
  noise.set("quality_flip_prob", Json(c.noise.quality_flip_prob));
  noise.set("quality_sigma", Json(c.noise.quality_sigma));
  config.set("noise", std::move(noise));
  Json faults{Json::Object{}};
  faults.set("crash_fraction", Json(c.faults.crash_fraction));
  faults.set("byzantine_fraction", Json(c.faults.byzantine_fraction));
  faults.set("crash_horizon", Json(static_cast<double>(c.faults.crash_horizon)));
  config.set("faults", std::move(faults));
  config.set("pairing", Json(env::pairing_name(c.pairing)));
  // Identity vocabulary grows with the backend: home-nest identity JSON
  // is byte-identical to pre-seam output (fingerprints unchanged); any
  // other world names itself plus its full geometry/motility block.
  if (c.env_backend != env::BackendKind::kHomeNest) {
    config.set("env_backend", Json(env::backend_name(c.env_backend)));
    config.set("lattice", lattice_to_json(c.lattice));
  }

  Json j{Json::Object{}};
  j.set("algorithm", Json(scenario.algorithm));
  j.set("config", std::move(config));
  j.set("params", params_to_json(scenario.params));
  return util::dump_json(j, /*indent=*/0);
}

// --- sweep entries ----------------------------------------------------------

namespace {

Json axis_to_json(const SweepSpec::Axis& axis) {
  const SweepSpec::AxisDesc& desc = axis.desc;
  HH_EXPECTS(!desc.kind.empty());
  Json j{Json::Object{}};
  j.set("kind", Json(desc.kind));
  if (desc.kind == "algorithms" || desc.kind == "pairings" ||
      desc.kind == "engines") {
    Json names{Json::Array{}};
    for (const std::string& label : desc.labels) names.push_back(Json(label));
    j.set("names", std::move(names));
  } else if (desc.kind == "colony_nest_pairs") {
    Json pairs{Json::Array{}};
    for (const auto& [n, k] : desc.pairs) {
      Json pair{Json::Array{}};
      pair.push_back(Json(static_cast<double>(n)));
      pair.push_back(Json(static_cast<double>(k)));
      pairs.push_back(std::move(pair));
    }
    j.set("pairs", std::move(pairs));
    j.set("bad_fraction", Json(desc.fraction));
  } else if (desc.kind == "quality_sets") {
    Json sets{Json::Array{}};
    for (std::size_t i = 0; i < desc.labels.size(); ++i) {
      Json set{Json::Object{}};
      set.set("label", Json(desc.labels[i]));
      set.set("qualities", qualities_json(desc.vectors[i]));
      sets.push_back(std::move(set));
    }
    j.set("sets", std::move(sets));
  } else {
    if (desc.kind == "param_values") j.set("name", Json(desc.labels.at(0)));
    Json values{Json::Array{}};
    for (const double v : desc.values) values.push_back(Json(v));
    j.set("values", std::move(values));
    if (desc.kind == "nest_counts") j.set("bad_fraction", Json(desc.fraction));
  }
  return j;
}

void axis_from_json(SweepSpec& spec, const Json& json,
                    const std::string& path) {
  ObjectReader reader(json, path);
  const std::string kind = read_string(reader.require("kind"), at(path, "kind"));
  const double kInf = std::numeric_limits<double>::max();
  if (kind == "algorithms") {
    const std::string npath = at(path, "names");
    const Json::Array& array = read_array(reader.require("names"), npath);
    std::vector<std::string> names;
    names.reserve(array.size());
    for (std::size_t i = 0; i < array.size(); ++i) {
      names.push_back(read_algorithm(array[i], at(npath, i)));
    }
    spec.algorithms(std::move(names));
  } else if (kind == "pairings") {
    const std::string npath = at(path, "names");
    const Json::Array& array = read_array(reader.require("names"), npath);
    std::vector<env::PairingKind> kinds;
    for (std::size_t i = 0; i < array.size(); ++i) {
      kinds.push_back(pairing_from_name(
          read_string(array[i], at(npath, i)), at(npath, i)));
    }
    spec.pairings(std::move(kinds));
  } else if (kind == "engines") {
    const std::string npath = at(path, "names");
    const Json::Array& array = read_array(reader.require("names"), npath);
    std::vector<core::EngineKind> kinds;
    for (std::size_t i = 0; i < array.size(); ++i) {
      kinds.push_back(engine_from_name(
          read_string(array[i], at(npath, i)), at(npath, i)));
    }
    spec.engines(std::move(kinds));
  } else if (kind == "colony_sizes") {
    spec.colony_sizes(
        read_u32s(reader.require("values"), at(path, "values")));
  } else if (kind == "nest_counts") {
    double bad_fraction = 0.5;
    if (const Json* v = reader.get("bad_fraction")) {
      bad_fraction = read_number_in(*v, at(path, "bad_fraction"), 0.0, 1.0);
    }
    spec.nest_counts(read_u32s(reader.require("values"), at(path, "values")),
                     bad_fraction);
  } else if (kind == "colony_nest_pairs") {
    double bad_fraction = 0.5;
    if (const Json* v = reader.get("bad_fraction")) {
      bad_fraction = read_number_in(*v, at(path, "bad_fraction"), 0.0, 1.0);
    }
    const std::string ppath = at(path, "pairs");
    const Json::Array& array = read_array(reader.require("pairs"), ppath);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string epath = at(ppath, i);
      const Json::Array& pair = read_array(array[i], epath);
      if (pair.size() != 2) fail(epath, "expected an [n, k] pair");
      pairs.emplace_back(read_u32(pair[0], at(epath, std::size_t{0})),
                         read_u32(pair[1], at(epath, std::size_t{1})));
    }
    spec.colony_nest_pairs(std::move(pairs), bad_fraction);
  } else if (kind == "quality_sets") {
    const std::string spath = at(path, "sets");
    const Json::Array& array = read_array(reader.require("sets"), spath);
    std::vector<std::pair<std::string, std::vector<double>>> sets;
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string epath = at(spath, i);
      ObjectReader set(array[i], epath);
      std::string label =
          read_string(set.require("label"), at(epath, "label"));
      std::vector<double> qualities = read_numbers(
          set.require("qualities"), at(epath, "qualities"), 0.0, 1.0);
      set.finish();
      sets.emplace_back(std::move(label), std::move(qualities));
    }
    spec.quality_sets(std::move(sets));
  } else if (kind == "count_noise") {
    spec.count_noise(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, kInf));
  } else if (kind == "quality_flip") {
    spec.quality_flip(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "crash_fractions") {
    spec.crash_fractions(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "byzantine_fractions") {
    spec.byzantine_fractions(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "skip_probabilities") {
    spec.skip_probabilities(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "n_estimate_errors") {
    spec.n_estimate_errors(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "quorum_fractions") {
    spec.quorum_fractions(
        read_numbers(reader.require("values"), at(path, "values"), 0.0, 1.0));
  } else if (kind == "param_values") {
    const std::string key =
        read_string(reader.require("name"), at(path, "name"));
    const core::ParamInfo* info = core::find_param(key);
    if (info == nullptr) {
      fail(at(path, "name"),
           "unknown parameter '" + key + "' (known: " + core::known_params() +
               ")");
    }
    spec.param_values(key,
                      read_numbers(reader.require("values"), at(path, "values"),
                                   info->min_value, info->max_value));
  } else {
    fail(at(path, "kind"), "unknown axis kind '" + kind + "'");
  }
  reader.finish();
}

}  // namespace

std::vector<Scenario> SweepEntry::expand() const {
  return sweep ? sweep->expand() : scenarios;
}

std::size_t SweepEntry::size() const {
  return sweep ? sweep->size() : scenarios.size();
}

const SweepEntry* ExperimentSpec::find(std::string_view sweep) const {
  for (const SweepEntry& entry : sweeps) {
    if (entry.name == sweep) return &entry;
  }
  return nullptr;
}

Json sweep_entry_to_json(const SweepEntry& entry) {
  Json j{Json::Object{}};
  j.set("name", Json(entry.name));
  j.set("trials", Json(static_cast<double>(entry.trials)));
  j.set("base_seed", u64_json(entry.base_seed));
  if (entry.sweep && entry.sweep->serializable()) {
    // The SweepSpec's own name prefixes every expanded scenario's name;
    // it need not equal the entry name, so it is carried explicitly.
    j.set("sweep_name", Json(entry.sweep->name()));
    Json base{Json::Object{}};
    emit_scenario_body(base, entry.sweep->base_scenario());
    j.set("base", std::move(base));
    Json axes{Json::Array{}};
    for (const SweepSpec::Axis& axis : entry.sweep->axes()) {
      axes.push_back(axis_to_json(axis));
    }
    j.set("axes", std::move(axes));
  } else {
    // Custom-mutator sweeps (or entries declared concrete) serialize as
    // the expanded scenario list — heavier, but loss-free.
    Json scenarios{Json::Array{}};
    for (const Scenario& scenario : entry.expand()) {
      scenarios.push_back(scenario_to_json(scenario));
    }
    j.set("scenarios", std::move(scenarios));
  }
  return j;
}

SweepEntry sweep_entry_from_json(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  SweepEntry entry;
  entry.name = read_string(reader.require("name"), at(path, "name"));
  {
    const double trials =
        read_number(reader.require("trials"), at(path, "trials"));
    // Upper bound before the cast: a double beyond 2^53 is not exactly
    // countable anyway, and casting one beyond SIZE_MAX would be UB.
    if (trials < 1.0 || trials != std::floor(trials) ||
        trials > 9007199254740992.0) {
      fail(at(path, "trials"), "expected a positive integer (at most 2^53)");
    }
    entry.trials = static_cast<std::size_t>(trials);
  }
  entry.base_seed = read_u64(reader.require("base_seed"), at(path, "base_seed"));
  std::string sweep_name = entry.name;
  if (const Json* v = reader.get("sweep_name")) {
    sweep_name = read_string(*v, at(path, "sweep_name"));
  }
  const Json* base = reader.get("base");
  const Json* axes = reader.get("axes");
  const Json* scenarios = reader.get("scenarios");
  if (scenarios != nullptr && (base != nullptr || axes != nullptr)) {
    fail(path, "a sweep is either declarative (base + axes) or concrete "
               "(scenarios), not both");
  }
  if (scenarios != nullptr) {
    const std::string spath = at(path, "scenarios");
    const Json::Array& array = read_array(*scenarios, spath);
    for (std::size_t i = 0; i < array.size(); ++i) {
      entry.scenarios.push_back(scenario_from_json(array[i], at(spath, i)));
    }
  } else if (base != nullptr) {
    const std::string bpath = at(path, "base");
    ObjectReader base_reader(*base, bpath);
    SweepSpec spec(sweep_name);
    spec.algorithm(read_algorithm(base_reader.require("algorithm"),
                                  at(bpath, "algorithm")));
    spec.base(config_from_json(base_reader.require("config"),
                               at(bpath, "config"), ConfigRole::kBase));
    if (const Json* v = base_reader.get("params")) {
      spec.params(params_from_json(*v, at(bpath, "params")));
    }
    base_reader.finish();
    if (axes != nullptr) {
      const std::string apath = at(path, "axes");
      const Json::Array& array = read_array(*axes, apath);
      for (std::size_t i = 0; i < array.size(); ++i) {
        axis_from_json(spec, array[i], at(apath, i));
      }
    }
    // The base may legitimately be incomplete (ConfigRole::kBase) as long
    // as the axes fill the holes — so verify the EXPANDED scenarios are
    // runnable here, with a path-qualified error, instead of letting an
    // n-less sweep abort deep in the engine on a contract check.
    for (const Scenario& expanded : spec.expand()) {
      if (expanded.config.num_ants == 0) {
        fail(path, "scenario '" + expanded.name +
                       "' has no colony size: set base.config.num_ants or "
                       "add a colony_sizes/colony_nest_pairs axis");
      }
      if (expanded.config.qualities.empty()) {
        fail(path, "scenario '" + expanded.name +
                       "' has no candidate nests: set base.config.qualities "
                       "or add a nest_counts/quality_sets axis");
      }
    }
    entry.sweep = std::move(spec);
  } else {
    fail(path, "a sweep needs either \"base\" (+ \"axes\") or \"scenarios\"");
  }
  reader.finish();
  return entry;
}

Json experiment_to_json(const ExperimentSpec& spec) {
  Json j{Json::Object{}};
  j.set("anthill_spec", Json(1.0));
  j.set("name", Json(spec.name));
  Json sweeps{Json::Array{}};
  for (const SweepEntry& entry : spec.sweeps) {
    sweeps.push_back(sweep_entry_to_json(entry));
  }
  j.set("sweeps", std::move(sweeps));
  return j;
}

ExperimentSpec experiment_from_json(const Json& json) {
  const std::string path = "spec";
  ObjectReader reader(json, path);
  const double version =
      read_number(reader.require("anthill_spec"), at(path, "anthill_spec"));
  if (version != 1.0) {
    fail(at(path, "anthill_spec"),
         "unsupported spec version " + util::format_double(version) +
             " (this build reads version 1)");
  }
  ExperimentSpec spec;
  if (const Json* v = reader.get("name")) {
    spec.name = read_string(*v, at(path, "name"));
  }
  const std::string spath = at(path, "sweeps");
  const Json::Array& sweeps = read_array(reader.require("sweeps"), spath);
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    spec.sweeps.push_back(sweep_entry_from_json(sweeps[i], at(spath, i)));
    const std::string& name = spec.sweeps.back().name;
    for (std::size_t j = 0; j + 1 < spec.sweeps.size(); ++j) {
      if (spec.sweeps[j].name == name) {
        fail(at(spath, i), "duplicate sweep name '" + name + "'");
      }
    }
  }
  reader.finish();
  return spec;
}

ExperimentSpec parse_experiment_spec(std::string_view text) {
  return experiment_from_json(util::parse_json(text));
}

std::string dump_experiment_spec(const ExperimentSpec& spec, int indent) {
  return util::dump_json(experiment_to_json(spec), indent);
}

ExperimentSpec load_experiment_spec(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;  // lint: allow-float-fmt (file slurp, no float rendering)
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open spec file '" + path + "'");
    }
    std::ostringstream buffer;  // lint: allow-float-fmt (file slurp, no float rendering)
    buffer << in.rdbuf();
    text = buffer.str();
  }
  try {
    return parse_experiment_spec(text);
  } catch (const util::JsonParseError& e) {
    throw std::runtime_error(std::string(path == "-" ? "<stdin>" : path) +
                             ": " + e.what());
  } catch (const SpecError& e) {
    throw std::runtime_error(std::string(path == "-" ? "<stdin>" : path) +
                             ": " + e.what());
  }
}

}  // namespace hh::analysis
