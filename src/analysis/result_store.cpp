#include "analysis/result_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <span>
#include <stdexcept>

#include "analysis/spec.hpp"
#include "util/binary_io.hpp"
#include "util/contracts.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace hh::analysis {

namespace {

// Shard file layout (all little-endian; see DESIGN.md §4):
//   header:  magic u32 'HHRS', version u32
//   records: payload (kPayloadBytes) + checksum32(payload)
// Payload: fingerprint u64, seed u64, trial u32, converged u8, rounds f64,
// winner u32, winner_quality f64, recruitments f64.
constexpr std::uint32_t kShardMagic = 0x53524848;  // "HHRS"
constexpr std::uint32_t kShardVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kPayloadBytes = 8 + 8 + 4 + 1 + 8 + 4 + 8 + 8;
constexpr std::size_t kRecordBytes = kPayloadBytes + 4;
constexpr const char* kShardExtension = ".hhrs";

void encode_payload(std::vector<std::uint8_t>& out, const TrialKey& key,
                    const TrialStats& stats) {
  util::put_u64(out, key.fingerprint);
  util::put_u64(out, key.seed);
  util::put_u32(out, key.trial);
  util::put_u8(out, stats.converged ? 1 : 0);
  util::put_f64(out, stats.rounds);
  util::put_u32(out, stats.winner);
  util::put_f64(out, stats.winner_quality);
  util::put_f64(out, stats.recruitments);
}

std::string sanitize_namespace(std::string ns) {
  for (char& c : ns) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return ns;
}

}  // namespace

std::size_t TrialKeyHash::operator()(const TrialKey& key) const {
  // The fingerprint and seed are already well-mixed 64-bit values; one
  // extra mix folds the trial index in without a measurable cost.
  return static_cast<std::size_t>(
      util::mix_seed(key.fingerprint ^ key.seed, key.trial));
}

std::uint64_t scenario_fingerprint(const Scenario& scenario) {
  // v2: the hash input IS the canonical serialized identity (analysis/
  // spec.hpp) — the very bytes `--dump-spec` emits for the scenario's
  // outcome-determining fields. A spec-file-driven sweep therefore shares
  // every cached cell with the flag-driven run it was dumped from, and a
  // field added to AlgorithmParams (one algorithm_param_table() row)
  // reaches the fingerprint with no edit here.
  util::Fnv64 h;
  h.str("hh.scenario.v2");
  h.str(scenario_identity_json(scenario));
  return h.digest();
}

ResultStore::ResultStore(std::filesystem::path directory,
                         std::string writer_namespace)
    : dir_(std::move(directory)), ns_(sanitize_namespace(std::move(writer_namespace))) {
  std::filesystem::create_directories(dir_);
  // Nonce for this open: keeps shard names from two sequential (or even
  // concurrent) processes distinct. Result identity never depends on it.
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  session_ = util::mix_seed(static_cast<std::uint64_t>(now),
                            reinterpret_cast<std::uintptr_t>(this));
  (void)scan_directory();
}

std::size_t ResultStore::scan_directory() {
  std::vector<std::filesystem::path> shards;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == kShardExtension) {
      shards.push_back(entry.path());
    }
  }
  for (const auto& path : shards) files_.try_emplace(path);
  // files_ is path-sorted, so the scan order is deterministic (directory
  // iteration order is not); duplicate keys hold identical payloads anyway
  // — trials are pure functions of the key — so order only matters for
  // reproducible dropped-record counts.
  std::size_t added = 0;
  for (auto& [path, state] : files_) added += scan_shard(path, state);
  // Quarantined shards were renamed to *.hhrs.bad on disk; drop their scan
  // cursors so shard_files() reflects only live shards.
  std::erase_if(files_,
                [](const auto& entry) { return entry.second.quarantined; });
  return added;
}

std::size_t ResultStore::reload() { return scan_directory(); }

std::size_t ResultStore::scan_shard(const std::filesystem::path& path,
                                    ShardState& state) {
  if (state.dead) return 0;
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec) return 0;  // vanished (a compact elsewhere); keep the cursor
  if (file_size <= state.offset && state.header_ok) return 0;

  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  if (!state.header_ok) {
    // A file shorter than its header may be a live writer mid-create:
    // leave it pending and re-check on the next reload().
    if (file_size < kHeaderBytes) return 0;
    // One sized read, not a byte-iterator loop: a cold open over a
    // million-trial store reads tens of MB of shards and this is its cost.
    std::vector<std::uint8_t> head(kHeaderBytes);
    in.read(reinterpret_cast<char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
    util::ByteReader header({head.data(),
                             static_cast<std::size_t>(std::max<std::streamsize>(
                                 in.gcount(), 0))});
    if (header.u32() != kShardMagic || header.u32() != kShardVersion ||
        !header.ok()) {
      // Foreign or corrupted file: quarantine it — rename to *.hhrs.bad so
      // it is never rescanned and an operator can inspect what happened.
      // Visible (dropped + quarantined counters) but never fatal — resume
      // just recomputes.
      state.dead = true;
      ++dropped_;
      ++quarantined_;
      std::filesystem::path bad = path;
      bad += ".bad";
      std::error_code rename_ec;
      std::filesystem::rename(path, bad, rename_ec);
      // If the rename failed (permissions, races) the dead flag still
      // keeps the file skipped; only drop the cursor on success.
      if (!rename_ec) state.quarantined = true;
      return 0;
    }
    state.header_ok = true;
    state.offset = kHeaderBytes;
  }

  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(file_size - state.offset));
  in.seekg(static_cast<std::streamoff>(state.offset));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  bytes.resize(
      static_cast<std::size_t>(std::max<std::streamsize>(in.gcount(), 0)));

  std::size_t added = 0;
  std::size_t offset = 0;
  while (offset + kRecordBytes <= bytes.size()) {
    const std::span<const std::uint8_t> payload{bytes.data() + offset,
                                                kPayloadBytes};
    util::ByteReader tail(
        {bytes.data() + offset + kPayloadBytes, std::size_t{4}});
    if (tail.u32() != util::checksum32(payload)) {
      // Torn or corrupt record: everything after it in this shard is
      // suspect (appends are sequential), so stop reading the file — but
      // keep the cursor HERE. A record torn because its writer (possibly
      // another process) was mid-append is complete on a later reload();
      // genuine corruption just re-fails the same cheap check. Count the
      // drop once per position.
      if (state.counted_bad_at != state.offset) {
        state.counted_bad_at = state.offset;
        ++dropped_;
      }
      return added;
    }
    util::ByteReader r(payload);
    TrialKey key;
    key.fingerprint = r.u64();
    key.seed = r.u64();
    key.trial = r.u32();
    TrialStats stats;
    stats.converged = r.u8() != 0;
    stats.rounds = r.f64();
    stats.winner = r.u32();
    stats.winner_quality = r.f64();
    stats.recruitments = r.f64();
    index_.insert_or_assign(key, stats);
    offset += kRecordBytes;
    state.offset += kRecordBytes;
    ++added;
  }
  if (offset != bytes.size() && state.counted_bad_at != state.offset) {
    // Trailing partial record: same re-verify-on-reload treatment.
    state.counted_bad_at = state.offset;
    ++dropped_;
  }
  return added;
}

const TrialStats* ResultStore::find(const TrialKey& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

std::filesystem::path ResultStore::next_shard_path() {
  const std::lock_guard<std::mutex> lock(shard_mutex_);
  std::filesystem::path path;
  do {
    char name[96];
    if (ns_.empty()) {
      std::snprintf(name, sizeof(name), "shard-%016llx-%04u%s",
                    static_cast<unsigned long long>(session_), next_shard_++,
                    kShardExtension);
    } else {
      std::snprintf(name, sizeof(name), "shard-%.32s-%016llx-%04u%s",
                    ns_.c_str(), static_cast<unsigned long long>(session_),
                    next_shard_++, kShardExtension);
    }
    path = dir_ / name;
  } while (std::filesystem::exists(path));
  return path;
}

std::unique_ptr<ResultStore::ShardWriter> ResultStore::open_shard() {
  const std::filesystem::path path = next_shard_path();
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("result store: cannot create shard " +
                             path.string());
  }
  std::vector<std::uint8_t> header;
  util::put_u32(header, kShardMagic);
  util::put_u32(header, kShardVersion);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.flush();
  return std::unique_ptr<ShardWriter>(new ShardWriter(std::move(out)));
}

ResultStore::CompactReport ResultStore::compact() {
  CompactReport report;
  // Snapshot what exists NOW; only these are removed afterwards (a writer
  // racing this call in the same process would be a coordinator bug — see
  // the header contract).
  std::vector<std::filesystem::path> old_files;
  old_files.reserve(files_.size());
  for (const auto& [path, state] : files_) old_files.push_back(path);

  // Deterministic record order: sorted by key, so equal stores compact to
  // byte-identical shards regardless of insertion history.
  std::vector<const std::pair<const TrialKey, TrialStats>*> records;
  records.reserve(index_.size());
  for (const auto& entry : index_) records.push_back(&entry);
  std::sort(records.begin(), records.end(), [](const auto* a, const auto* b) {
    const TrialKey& x = a->first;
    const TrialKey& y = b->first;
    if (x.fingerprint != y.fingerprint) return x.fingerprint < y.fingerprint;
    if (x.trial != y.trial) return x.trial < y.trial;
    return x.seed < y.seed;
  });

  // Write the merged shard under a .tmp name invisible to scans, then
  // publish it with one atomic rename: a crash at ANY point leaves either
  // the old files intact (tmp is garbage, never indexed) or the complete
  // merged shard plus redundant-but-idempotent old files.
  const std::filesystem::path merged = next_shard_path();
  std::filesystem::path tmp = merged;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
      throw std::runtime_error("result store: cannot create merged shard " +
                               tmp.string());
    }
    std::vector<std::uint8_t> header;
    util::put_u32(header, kShardMagic);
    util::put_u32(header, kShardVersion);
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    ShardWriter writer(std::move(out));
    for (const auto* entry : records) writer.append(entry->first, entry->second);
    writer.flush();
    if (writer.write_failed()) {
      // Disk full mid-merge: leave the store exactly as it was.
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return report;
    }
  }
  if (util::fault::inject("store.compact.pre_rename")) {
    // Fail verb: abort the compact, store untouched (crash verb never
    // returns — the next open sees only the old shards plus a stray .tmp).
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return report;
  }
  {
    std::error_code ec;
    std::filesystem::rename(tmp, merged, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      return report;
    }
  }
  report.records = records.size();

  // The merged shard is complete and checksummed on disk; removing the old
  // files is now safe at any crash point (duplicates are idempotent).
  if (!util::fault::inject("store.compact.pre_remove")) {
    for (const auto& path : old_files) {
      std::error_code ec;
      if (std::filesystem::remove(path, ec) && !ec) ++report.removed_files;
    }
  }
  files_.clear();
  ShardState state;
  state.header_ok = true;
  state.offset = kHeaderBytes + records.size() * kRecordBytes;
  files_.emplace(merged, state);
  return report;
}

ResultStore::ShardWriter::ShardWriter(std::ofstream out)
    : out_(std::move(out)) {
  buffer_.reserve(kRecordBytes);
}

void ResultStore::ShardWriter::append(const TrialKey& key,
                                      const TrialStats& stats) {
  if (write_failed_) return;  // a failed shard never takes more appends
  buffer_.clear();
  encode_payload(buffer_, key, stats);
  HH_ASSERT(buffer_.size() == kPayloadBytes);
  util::put_u32(buffer_, util::checksum32(buffer_));
  if (util::fault::inject("store.append.torn")) {
    // Chaos: persist half a record — what a crash mid-append leaves on
    // disk — then close this shard to writes. Readers must checksum-drop
    // the torn tail; the run's in-memory results stay correct.
    out_.write(reinterpret_cast<const char*>(buffer_.data()),
               static_cast<std::streamsize>(kRecordBytes / 2));
    out_.flush();
    write_failed_ = true;
    std::fprintf(stderr, "fault: torn record injected; shard closed\n");
    return;
  }
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
}

void ResultStore::ShardWriter::flush() {
  if (util::fault::inject("store.flush.skip")) return;  // records stay buffered
  out_.flush();
  // A write failure (disk full, quota) never corrupts results — the
  // in-memory batch is complete regardless — but it must not be silent:
  // the lost records mean the next resume recomputes them.
  if (!out_.good() && !write_failed_) {
    write_failed_ = true;
    std::fprintf(stderr,
                 "result store: shard write failed (disk full?); results "
                 "are intact but this run's records will not resume\n");
  }
}

ResultStore::ShardWriter::~ShardWriter() { flush(); }

}  // namespace hh::analysis
