#include "analysis/result_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <span>
#include <stdexcept>

#include "analysis/spec.hpp"
#include "util/binary_io.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hh::analysis {

namespace {

// Shard file layout (all little-endian; see DESIGN.md §4):
//   header:  magic u32 'HHRS', version u32
//   records: payload (kPayloadBytes) + checksum32(payload)
// Payload: fingerprint u64, seed u64, trial u32, converged u8, rounds f64,
// winner u32, winner_quality f64, recruitments f64.
constexpr std::uint32_t kShardMagic = 0x53524848;  // "HHRS"
constexpr std::uint32_t kShardVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kPayloadBytes = 8 + 8 + 4 + 1 + 8 + 4 + 8 + 8;
constexpr std::size_t kRecordBytes = kPayloadBytes + 4;
constexpr const char* kShardExtension = ".hhrs";

void encode_payload(std::vector<std::uint8_t>& out, const TrialKey& key,
                    const TrialStats& stats) {
  util::put_u64(out, key.fingerprint);
  util::put_u64(out, key.seed);
  util::put_u32(out, key.trial);
  util::put_u8(out, stats.converged ? 1 : 0);
  util::put_f64(out, stats.rounds);
  util::put_u32(out, stats.winner);
  util::put_f64(out, stats.winner_quality);
  util::put_f64(out, stats.recruitments);
}

}  // namespace

std::size_t TrialKeyHash::operator()(const TrialKey& key) const {
  // The fingerprint and seed are already well-mixed 64-bit values; one
  // extra mix folds the trial index in without a measurable cost.
  return static_cast<std::size_t>(
      util::mix_seed(key.fingerprint ^ key.seed, key.trial));
}

std::uint64_t scenario_fingerprint(const Scenario& scenario) {
  // v2: the hash input IS the canonical serialized identity (analysis/
  // spec.hpp) — the very bytes `--dump-spec` emits for the scenario's
  // outcome-determining fields. A spec-file-driven sweep therefore shares
  // every cached cell with the flag-driven run it was dumped from, and a
  // field added to AlgorithmParams (one algorithm_param_table() row)
  // reaches the fingerprint with no edit here.
  util::Fnv64 h;
  h.str("hh.scenario.v2");
  h.str(scenario_identity_json(scenario));
  return h.digest();
}

ResultStore::ResultStore(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
  // Nonce for this open: keeps shard names from two sequential (or even
  // concurrent) processes distinct. Result identity never depends on it.
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  session_ = util::mix_seed(static_cast<std::uint64_t>(now),
                            reinterpret_cast<std::uintptr_t>(this));
  std::vector<std::filesystem::path> shards;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == kShardExtension) {
      shards.push_back(entry.path());
    }
  }
  // Deterministic load order (directory iteration order is not); duplicate
  // keys hold identical payloads anyway — trials are pure functions of the
  // key — so order only matters for reproducible dropped-record counts.
  std::sort(shards.begin(), shards.end());
  for (const auto& path : shards) load_shard(path);
}

void ResultStore::load_shard(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  // One sized read, not a byte-iterator loop: a warm resume over a
  // million-trial store opens tens of MB of shards and this is its cost.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec) return;
  std::vector<std::uint8_t> bytes(file_size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(std::max<std::streamsize>(
      in.gcount(), 0)));
  ++shard_files_;
  util::ByteReader header(bytes);
  if (header.u32() != kShardMagic || header.u32() != kShardVersion ||
      !header.ok()) {
    // Foreign or future-format file: skip it whole (counted as dropped so
    // the condition is visible, but never fatal — resume just recomputes).
    ++dropped_;
    return;
  }
  std::size_t offset = kHeaderBytes;
  while (offset + kRecordBytes <= bytes.size()) {
    const std::span<const std::uint8_t> payload{bytes.data() + offset,
                                                kPayloadBytes};
    util::ByteReader tail(
        {bytes.data() + offset + kPayloadBytes, std::size_t{4}});
    if (tail.u32() != util::checksum32(payload)) {
      // Torn or corrupt record: everything after it in this shard is
      // suspect (appends are sequential), so stop reading the file.
      ++dropped_;
      return;
    }
    util::ByteReader r(payload);
    TrialKey key;
    key.fingerprint = r.u64();
    key.seed = r.u64();
    key.trial = r.u32();
    TrialStats stats;
    stats.converged = r.u8() != 0;
    stats.rounds = r.f64();
    stats.winner = r.u32();
    stats.winner_quality = r.f64();
    stats.recruitments = r.f64();
    index_.insert_or_assign(key, stats);
    offset += kRecordBytes;
  }
  if (offset != bytes.size()) ++dropped_;  // trailing partial record
}

const TrialStats* ResultStore::find(const TrialKey& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

std::unique_ptr<ResultStore::ShardWriter> ResultStore::open_shard() {
  const std::lock_guard<std::mutex> lock(shard_mutex_);
  std::filesystem::path path;
  do {
    char name[64];
    std::snprintf(name, sizeof(name), "shard-%016llx-%04u%s",
                  static_cast<unsigned long long>(session_), next_shard_++,
                  kShardExtension);
    path = dir_ / name;
  } while (std::filesystem::exists(path));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("result store: cannot create shard " +
                             path.string());
  }
  std::vector<std::uint8_t> header;
  util::put_u32(header, kShardMagic);
  util::put_u32(header, kShardVersion);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.flush();
  return std::unique_ptr<ShardWriter>(new ShardWriter(std::move(out)));
}

ResultStore::ShardWriter::ShardWriter(std::ofstream out)
    : out_(std::move(out)) {
  buffer_.reserve(kRecordBytes);
}

void ResultStore::ShardWriter::append(const TrialKey& key,
                                      const TrialStats& stats) {
  buffer_.clear();
  encode_payload(buffer_, key, stats);
  HH_ASSERT(buffer_.size() == kPayloadBytes);
  util::put_u32(buffer_, util::checksum32(buffer_));
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
}

void ResultStore::ShardWriter::flush() {
  out_.flush();
  // A write failure (disk full, quota) never corrupts results — the
  // in-memory batch is complete regardless — but it must not be silent:
  // the lost records mean the next resume recomputes them.
  if (!out_.good() && !write_failed_) {
    write_failed_ = true;
    std::fprintf(stderr,
                 "result store: shard write failed (disk full?); results "
                 "are intact but this run's records will not resume\n");
  }
}

ResultStore::ShardWriter::~ShardWriter() { flush(); }

}  // namespace hh::analysis
