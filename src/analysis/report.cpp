#include "analysis/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/csv.hpp"

namespace hh::analysis {

void print_banner(const std::string& experiment_id, const std::string& claim) {
  std::cout << '\n'
            << std::string(78, '=') << '\n'
            << experiment_id << '\n'
            << "paper claim: " << claim << '\n'
            << std::string(78, '=') << '\n';
}

std::vector<std::string> aggregate_headers() {
  return {"trials", "conv%", "rounds(med)", "rounds(mean)",
          "rounds(p95)", "rounds(max)"};
}

void append_aggregate_cells(util::Table& table, const Aggregate& agg) {
  table.num(static_cast<std::uint64_t>(agg.trials));
  table.num(100.0 * agg.convergence_rate, 1);
  if (agg.converged > 0) {
    table.num(agg.rounds.median, 1);
    table.num(agg.rounds.mean, 1);
    table.num(agg.rounds.p95, 1);
    table.num(agg.rounds.max, 0);
  } else {
    table.cell("-").cell("-").cell("-").cell("-");
  }
}

void print_fit(const util::Fit& fit, const std::string& feature,
               const std::string& paper_claim) {
  std::cout << "fit: " << util::describe(fit, feature) << "  [paper: "
            << paper_claim << "]\n";
}

std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out/: " << ec.message() << '\n';
    return {};
  }
  const std::string path = "bench_out/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return {};
  }
  util::CsvWriter csv(out);
  csv.header(header);
  for (const auto& row : rows) csv.row(row);
  return path;
}

}  // namespace hh::analysis
