#include "analysis/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>

#include "analysis/result_store.hpp"
#include "util/csv.hpp"

namespace hh::analysis {

void print_banner(const std::string& experiment_id, const std::string& claim) {
  std::cout << '\n'
            << std::string(78, '=') << '\n'
            << experiment_id << '\n'
            << "paper claim: " << claim << '\n'
            << std::string(78, '=') << '\n';
}

std::vector<std::string> aggregate_headers() {
  return {"trials", "conv%", "rounds(med)", "rounds(mean)",
          "rounds(p95)", "rounds(max)"};
}

void append_aggregate_cells(util::Table& table, const Aggregate& agg) {
  table.num(static_cast<std::uint64_t>(agg.trials));
  table.num(100.0 * agg.convergence_rate, 1);
  if (agg.converged > 0) {
    table.num(agg.rounds.median, 1);
    table.num(agg.rounds.mean, 1);
    table.num(agg.rounds.p95, 1);
    table.num(agg.rounds.max, 0);
  } else {
    table.cell("-").cell("-").cell("-").cell("-");
  }
}

void print_fit(const util::Fit& fit, const std::string& feature,
               const std::string& paper_claim) {
  std::cout << "fit: " << util::describe(fit, feature) << "  [paper: "
            << paper_claim << "]\n";
}

void print_engine_summary(const BatchResult& batch) {
  std::size_t packed = 0;
  std::size_t scalar = 0;
  std::size_t total = 0;
  // Reason -> trials, aggregated across scenarios, first-seen order.
  std::vector<std::pair<std::string, std::size_t>> reasons;
  for (const ScenarioResult& result : batch.results) {
    packed += result.aggregate.packed_trials;
    scalar += result.aggregate.scalar_trials;
    total += result.aggregate.trials;
    for (const auto& [reason, count] : result.aggregate.fallback_reasons) {
      count_fallback_reason(reasons, reason, count);
    }
  }
  if (reasons.empty()) return;  // cleanly packed / explicit-engine batch
  // Only trials with a recorded reason FELL BACK; an explicitly requested
  // kScalar run is scalar by choice, not degradation.
  std::size_t fell_back = 0;
  for (const auto& [reason, count] : reasons) fell_back += count;
  std::printf("[engine] %zu/%zu trials fell back to the scalar path "
              "(%zu packed, %zu scalar by request, %zu cache-served):\n",
              fell_back, total, packed, scalar - fell_back,
              total - packed - scalar);
  for (const auto& [reason, count] : reasons) {
    std::printf("[engine]   %zu trial%s: %s\n", count, count == 1 ? "" : "s",
                reason.c_str());
  }
}

std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out/: " << ec.message() << '\n';
    return {};
  }
  const std::string path = "bench_out/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return {};
  }
  util::CsvWriter csv(out);
  csv.header(header);
  for (const auto& row : rows) csv.row(row);
  return path;
}

ProgressFn stderr_progress(std::string label) {
  // The snapshot stream is already serialized by the runner, so plain
  // fprintf is safe; \r repaints in place, the final snapshot newlines.
  return [label = std::move(label)](const RunProgress& p) {
    std::fprintf(stderr, "\r[%s] %zu/%zu cells (%zu cached, %zu fresh)%s",
                 label.c_str(), p.cells_done(), p.cells_total, p.cells_cached,
                 p.cells_fresh_done, p.finished() ? "\n" : "");
    std::fflush(stderr);
  };
}

BatchResult run_sweep(const Runner& runner,
                      const std::vector<Scenario>& scenarios,
                      std::size_t trials, std::uint64_t base_seed,
                      const std::string& resume_dir,
                      const ProgressFn& progress) {
  if (resume_dir.empty()) {
    BatchResult batch = runner.run(scenarios, trials, base_seed, progress);
    print_engine_summary(batch);
    return batch;
  }
  ResultStore store(resume_dir);
  ResumeReport report;
  BatchResult batch = runner.run_resumable(scenarios, trials, base_seed,
                                           store, &report, progress);
  std::printf("[resume %s] cells: %zu total, %zu cached, %zu run\n",
              resume_dir.c_str(), report.cells_total, report.cells_cached,
              report.cells_run);
  print_engine_summary(batch);
  return batch;
}

BatchResult run_sweep(const Runner& runner, const SweepSpec& spec,
                      std::size_t trials, std::uint64_t base_seed,
                      const std::string& resume_dir,
                      const ProgressFn& progress) {
  return run_sweep(runner, spec.expand(), trials, base_seed, resume_dir,
                   progress);
}

}  // namespace hh::analysis
