#include "analysis/scenario.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace hh::analysis {

namespace {

/// Shortest decimal rendering of an axis value for scenario names.
std::string format_value(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::vector<double> binary_qualities_for(std::uint32_t k,
                                         double bad_fraction) {
  const auto bad = static_cast<std::uint32_t>(
      static_cast<double>(k) * bad_fraction);
  return core::SimulationConfig::binary_qualities(k, bad);
}

}  // namespace

std::unique_ptr<core::Simulation> Scenario::make_simulation(
    std::uint64_t seed) const {
  core::SimulationConfig cfg = config;
  cfg.seed = seed;
  return core::make_simulation(algorithm, cfg, params);
}

double Scenario::axis_value(std::string_view axis, double fallback) const {
  for (const AxisValue& v : axes) {
    if (v.axis == axis) return v.value;
  }
  return fallback;
}

bool Scenario::has_axis(std::string_view axis) const {
  for (const AxisValue& v : axes) {
    if (v.axis == axis) return true;
  }
  return false;
}

std::string_view Scenario::axis_label(std::string_view axis) const {
  for (const AxisValue& v : axes) {
    if (v.axis == axis) return v.label;
  }
  return {};
}

Scenario Scenario::of(std::string name, core::AlgorithmKind kind,
                      core::SimulationConfig config,
                      core::AlgorithmParams params) {
  Scenario sc;
  sc.name = std::move(name);
  sc.algorithm = std::string(core::algorithm_name(kind));
  sc.config = std::move(config);
  sc.params = params;
  return sc;
}

SweepSpec::SweepSpec(std::string name) : name_(std::move(name)) {}

SweepSpec& SweepSpec::base(core::SimulationConfig config) {
  seed_.config = std::move(config);
  return *this;
}

SweepSpec& SweepSpec::params(core::AlgorithmParams params) {
  seed_.params = params;
  return *this;
}

SweepSpec& SweepSpec::algorithm(core::AlgorithmKind kind) {
  seed_.algorithm = std::string(core::algorithm_name(kind));
  return *this;
}

SweepSpec& SweepSpec::algorithm(std::string name) {
  seed_.algorithm = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::algorithms(std::vector<std::string> names) {
  std::vector<Point> points;
  double index = 0.0;
  for (std::string& name : names) {
    points.push_back({name, index++, [name](Scenario& sc) {
                        sc.algorithm = name;
                      }});
  }
  AxisDesc desc;
  desc.kind = "algorithms";
  desc.labels = std::move(names);
  return add_axis("algorithm", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::algorithms(const std::vector<core::AlgorithmKind>& kinds) {
  std::vector<std::string> names;
  names.reserve(kinds.size());
  for (core::AlgorithmKind kind : kinds) {
    names.emplace_back(core::algorithm_name(kind));
  }
  return algorithms(std::move(names));
}

SweepSpec& SweepSpec::colony_sizes(std::vector<std::uint32_t> ns) {
  std::vector<Point> points;
  AxisDesc desc;
  desc.kind = "colony_sizes";
  for (std::uint32_t n : ns) {
    points.push_back({format_value(n), static_cast<double>(n),
                      [n](Scenario& sc) { sc.config.num_ants = n; }});
    desc.values.push_back(n);
  }
  return add_axis("n", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::nest_counts(std::vector<std::uint32_t> ks,
                                  double bad_fraction) {
  std::vector<Point> points;
  AxisDesc desc;
  desc.kind = "nest_counts";
  desc.fraction = bad_fraction;
  for (std::uint32_t k : ks) {
    points.push_back({format_value(k), static_cast<double>(k),
                      [k, bad_fraction](Scenario& sc) {
                        sc.config.qualities =
                            binary_qualities_for(k, bad_fraction);
                      }});
    desc.values.push_back(k);
  }
  return add_axis("k", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::colony_nest_pairs(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> nk,
    double bad_fraction) {
  std::vector<Point> points;
  for (const auto& [n, k] : nk) {
    points.push_back({format_value(n) + "x" + format_value(k),
                      static_cast<double>(n),
                      [n = n, k = k, bad_fraction](Scenario& sc) {
                        sc.config.num_ants = n;
                        sc.config.qualities =
                            binary_qualities_for(k, bad_fraction);
                        sc.axes.push_back(
                            {"k", static_cast<double>(k), format_value(k)});
                      }});
  }
  AxisDesc desc;
  desc.kind = "colony_nest_pairs";
  desc.fraction = bad_fraction;
  desc.pairs = std::move(nk);
  return add_axis("n", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::quality_sets(
    std::vector<std::pair<std::string, std::vector<double>>> sets) {
  std::vector<Point> points;
  AxisDesc desc;
  desc.kind = "quality_sets";
  double index = 0.0;
  for (auto& [label, qualities] : sets) {
    points.push_back({label, index++, [qualities](Scenario& sc) {
                        sc.config.qualities = qualities;
                      }});
    desc.labels.push_back(label);
    desc.vectors.push_back(qualities);
  }
  return add_axis("qualities", std::move(points), std::move(desc));
}

namespace {

/// Point list for a plain numeric knob (label = formatted value).
std::vector<SweepSpec::Point> numeric_points(
    const std::vector<double>& values,
    const std::function<void(Scenario&, double)>& apply) {
  std::vector<SweepSpec::Point> points;
  for (double v : values) {
    points.push_back(
        {format_value(v), v, [apply, v](Scenario& sc) { apply(sc, v); }});
  }
  return points;
}

}  // namespace

SweepSpec& SweepSpec::numeric_axis(
    std::string kind, std::string axis_name, std::vector<double> values,
    const std::function<void(Scenario&, double)>& apply) {
  std::vector<Point> points = numeric_points(values, apply);
  AxisDesc desc;
  desc.kind = std::move(kind);
  desc.values = std::move(values);
  return add_axis(std::move(axis_name), std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::count_noise(std::vector<double> sigmas) {
  return numeric_axis("count_noise", "count_sigma", std::move(sigmas),
                      [](Scenario& sc, double v) {
                        sc.config.noise.count_sigma = v;
                      });
}

SweepSpec& SweepSpec::quality_flip(std::vector<double> probs) {
  return numeric_axis("quality_flip", "quality_flip", std::move(probs),
                      [](Scenario& sc, double v) {
                        sc.config.noise.quality_flip_prob = v;
                      });
}

SweepSpec& SweepSpec::crash_fractions(std::vector<double> fractions) {
  return numeric_axis("crash_fractions", "crash_fraction",
                      std::move(fractions), [](Scenario& sc, double v) {
                        sc.config.faults.crash_fraction = v;
                      });
}

SweepSpec& SweepSpec::byzantine_fractions(std::vector<double> fractions) {
  return numeric_axis("byzantine_fractions", "byzantine_fraction",
                      std::move(fractions), [](Scenario& sc, double v) {
                        sc.config.faults.byzantine_fraction = v;
                      });
}

SweepSpec& SweepSpec::skip_probabilities(std::vector<double> probs) {
  return numeric_axis("skip_probabilities", "skip_probability",
                      std::move(probs), [](Scenario& sc, double v) {
                        sc.config.skip_probability = v;
                      });
}

SweepSpec& SweepSpec::pairings(std::vector<env::PairingKind> kinds) {
  std::vector<Point> points;
  AxisDesc desc;
  desc.kind = "pairings";
  for (env::PairingKind kind : kinds) {
    const std::string label(env::pairing_name(kind));
    points.push_back({label, static_cast<double>(static_cast<int>(kind)),
                      [kind](Scenario& sc) { sc.config.pairing = kind; }});
    desc.labels.push_back(label);
  }
  return add_axis("pairing", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::engines(std::vector<core::EngineKind> kinds) {
  std::vector<Point> points;
  AxisDesc desc;
  desc.kind = "engines";
  for (core::EngineKind kind : kinds) {
    points.push_back({std::string(core::engine_name(kind)),
                      static_cast<double>(static_cast<int>(kind)),
                      [kind](Scenario& sc) { sc.config.engine = kind; }});
    desc.labels.emplace_back(core::engine_name(kind));
  }
  return add_axis("engine", std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::n_estimate_errors(std::vector<double> errors) {
  return numeric_axis("n_estimate_errors", "n_estimate_error",
                      std::move(errors), [](Scenario& sc, double v) {
                        sc.params.n_estimate_error = v;
                      });
}

SweepSpec& SweepSpec::quorum_fractions(std::vector<double> fractions) {
  return numeric_axis("quorum_fractions", "quorum_fraction",
                      std::move(fractions), [](Scenario& sc, double v) {
                        sc.params.quorum_fraction = v;
                      });
}

SweepSpec& SweepSpec::param_values(const std::string& key,
                                   std::vector<double> values) {
  const core::ParamInfo* info = core::find_param(key);
  HH_EXPECTS(info != nullptr);  // algorithm_param_table() keys only
  for (const double v : values) {
    HH_EXPECTS(v >= info->min_value && v <= info->max_value);
  }
  std::vector<Point> points =
      numeric_points(values, [field = info->field](Scenario& sc, double v) {
        sc.params.*field = v;
      });
  AxisDesc desc;
  desc.kind = "param_values";
  desc.labels = {key};
  desc.values = std::move(values);
  return add_axis(key, std::move(points), std::move(desc));
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<Point> points) {
  // Custom mutators carry no declarative description (empty kind): the
  // sweep still runs and dumps, but serializes as expanded scenarios.
  return add_axis(std::move(name), std::move(points), AxisDesc{});
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<double> values,
                           const std::function<void(Scenario&, double)>& apply) {
  return add_axis(std::move(name), numeric_points(values, apply), AxisDesc{});
}

SweepSpec& SweepSpec::add_axis(std::string name, std::vector<Point> points,
                               AxisDesc desc) {
  HH_EXPECTS(!points.empty());
  axes_.push_back({std::move(name), std::move(points), std::move(desc)});
  return *this;
}

bool SweepSpec::serializable() const {
  for (const Axis& axis : axes_) {
    if (axis.desc.kind.empty()) return false;
  }
  return true;
}

std::size_t SweepSpec::size() const {
  std::size_t product = 1;
  for (const Axis& axis : axes_) product *= axis.points.size();
  return product;
}

std::vector<Scenario> SweepSpec::expand() const {
  std::vector<Scenario> out;
  out.reserve(size());
  // Odometer over the axes, first axis varying slowest.
  std::vector<std::size_t> index(axes_.size(), 0);
  for (std::size_t count = size(); count > 0; --count) {
    Scenario sc = seed_;
    sc.name = name_;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const Point& point = axes_[a].points[index[a]];
      sc.axes.push_back({axes_[a].name, point.value, point.label});
      point.apply(sc);
      sc.name += "/" + axes_[a].name + "=" + point.label;
    }
    out.push_back(std::move(sc));
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++index[a] < axes_[a].points.size()) break;
      index[a] = 0;
    }
  }
  return out;
}

}  // namespace hh::analysis
