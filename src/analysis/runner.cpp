#include "analysis/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace hh::analysis {

std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t scenario,
                         std::size_t trial) {
  // Two SplitMix rounds keep (scenario, trial) pairs from aliasing the
  // (base_seed, i) pairs of the legacy run_trials derivation.
  return util::mix_seed(util::mix_seed(base_seed, 0x5CE7A210),
                        scenario, trial);
}

void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(threads == 0 ? 1 : threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto work = [&] {
    // Fail fast: once any cell throws, remaining workers stop claiming
    // (a sweep-wide error like an unknown algorithm name would otherwise
    // pay the full trials x scenarios cost before reporting).
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  } catch (...) {
    // Thread spawn failed partway (resource limit): stop and join what
    // started, then surface the error instead of std::terminate.
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

TrialStats run_scenario_trial(const Scenario& scenario, std::uint64_t seed) {
  return to_trial_stats(scenario.make_simulation(seed)->run());
}

Runner::Runner(RunnerOptions options)
    : threads_(options.threads != 0 ? options.threads
                                    : std::max(1u,
                                               std::thread::
                                                   hardware_concurrency())) {}

BatchResult Runner::run(const std::vector<Scenario>& scenarios,
                        std::size_t trials, std::uint64_t base_seed) const {
  auto cells = map(scenarios, trials, base_seed, run_scenario_trial);
  BatchResult batch;
  batch.trials_per_scenario = trials;
  batch.base_seed = base_seed;
  batch.results.reserve(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    ScenarioResult result;
    result.scenario = scenarios[s];
    result.trials = std::move(cells[s]);
    result.aggregate = aggregate(result.trials);
    batch.results.push_back(std::move(result));
  }
  return batch;
}

BatchResult Runner::run(const SweepSpec& spec, std::size_t trials,
                        std::uint64_t base_seed) const {
  return run(spec.expand(), trials, base_seed);
}

const ScenarioResult& BatchResult::at(std::string_view name) const {
  for (const ScenarioResult& result : results) {
    if (result.scenario.name == name) return result;
  }
  throw std::out_of_range("no scenario named '" + std::string(name) + "'");
}

namespace {

/// Axis columns for tidy output: the first scenario's axes minus the
/// algorithm axis (already covered by the algorithm string column).
std::vector<std::string> tidy_axis_names(
    const std::vector<ScenarioResult>& results) {
  std::vector<std::string> names;
  if (results.empty()) return names;
  for (const AxisValue& axis : results.front().scenario.axes) {
    if (axis.axis != "algorithm") names.push_back(axis.axis);
  }
  return names;
}

}  // namespace

std::vector<std::string> BatchResult::tidy_header() const {
  std::vector<std::string> header = {"scenario", "algorithm"};
  for (std::string& name : tidy_axis_names(results)) {
    header.push_back(std::move(name));
  }
  header.insert(header.end(), {"trials", "conv%", "rounds(med)",
                               "rounds(mean)", "rounds(p95)", "E[winner q]"});
  return header;
}

std::vector<std::string> BatchResult::tidy_csv_header() const {
  std::vector<std::string> header = {"scenario_id"};
  for (std::string& name : tidy_axis_names(results)) {
    header.push_back(std::move(name));
  }
  header.insert(header.end(),
                {"trials", "conv_rate", "rounds_median", "rounds_mean",
                 "rounds_p95", "mean_winner_quality"});
  return header;
}

std::vector<std::vector<double>> BatchResult::tidy_rows() const {
  const auto axes = tidy_axis_names(results);
  std::vector<std::vector<double>> rows;
  rows.reserve(results.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    const ScenarioResult& result = results[s];
    const Aggregate& agg = result.aggregate;
    std::vector<double> row = {static_cast<double>(s)};
    // Align with tidy_csv_header: values of the first scenario's axes
    // (shared across one sweep; absent axes read as 0).
    for (const std::string& axis : axes) {
      row.push_back(result.scenario.axis_value(axis));
    }
    row.insert(row.end(),
               {static_cast<double>(agg.trials), agg.convergence_rate,
                agg.rounds.median, agg.rounds.mean, agg.rounds.p95,
                agg.mean_winner_quality});
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table BatchResult::tidy_table() const {
  const auto axes = tidy_axis_names(results);
  util::Table table(tidy_header());
  for (const ScenarioResult& result : results) {
    const Aggregate& agg = result.aggregate;
    table.begin_row()
        .cell(result.scenario.name)
        .cell(result.scenario.algorithm);
    for (const std::string& axis : axes) {
      table.num(result.scenario.axis_value(axis), 3);
    }
    table.num(static_cast<std::uint64_t>(agg.trials))
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.mean, 1)
        .num(agg.rounds.p95, 1)
        .num(agg.mean_winner_quality, 3);
  }
  return table;
}

}  // namespace hh::analysis
