#include "analysis/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "analysis/result_store.hpp"
#include "util/contracts.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace hh::analysis {

unsigned resolve_threads(unsigned threads) {
  return threads != 0 ? threads
                      : std::max(1u, std::thread::hardware_concurrency());
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t scenario,
                         std::size_t trial) {
  // Two SplitMix rounds keep (scenario, trial) pairs from aliasing the
  // (base_seed, i) pairs of the legacy run_trials derivation.
  return util::mix_seed(util::mix_seed(base_seed, 0x5CE7A210),
                        scenario, trial);
}

void parallel_for_chunks(
    std::size_t count, unsigned threads, std::size_t chunk,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& body) {
  if (count == 0) return;
  HH_EXPECTS(chunk >= 1);
  const std::size_t chunks = (count + chunk - 1) / chunk;
  const std::size_t workers =
      std::min<std::size_t>(resolve_threads(threads), chunks);
  const auto block = [&](std::size_t worker, std::size_t c) {
    body(worker, c * chunk, std::min(count, (c + 1) * chunk));
  };
  if (workers <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) block(0, c);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto work = [&](std::size_t worker) {
    // Fail fast: once any cell throws, remaining workers stop claiming
    // (a sweep-wide error like an unknown algorithm name would otherwise
    // pay the full trials x scenarios cost before reporting).
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        block(worker, c);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work, w);
  } catch (...) {
    // Thread spawn failed partway (resource limit): stop and join what
    // started, then surface the error instead of std::terminate.
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(count, threads, 1,
                      [&body](std::size_t /*worker*/, std::size_t begin,
                              std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

TrialStats run_scenario_trial(const Scenario& scenario, std::uint64_t seed) {
  return to_trial_stats(scenario.make_simulation(seed)->run());
}

TrialStats TrialArena::run(const Scenario& scenario, std::uint64_t seed) {
  // Reset-and-rerun when the held simulation is for this very scenario
  // object and its engine supports in-place reset; reconstruct otherwise.
  // Both paths are bit-identical (core::Simulation::reset's contract).
  if (simulation_ != nullptr && scenario_ == &scenario &&
      simulation_->reset(seed)) {
    ++resets_;
  } else {
    simulation_ = scenario.make_simulation(seed);
    scenario_ = &scenario;
    ++builds_;
  }
  return to_trial_stats(simulation_->run());
}

Runner::Runner(RunnerOptions options)
    : threads_(resolve_threads(options.threads)) {}

BatchResult Runner::run_cells(const std::vector<Scenario>& scenarios,
                              std::size_t trials, std::uint64_t base_seed,
                              ResultStore* store, ResumeReport* report,
                              const ProgressFn& progress) const {
  const std::size_t cell_count = scenarios.size() * trials;
  std::vector<TrialStats> cells(cell_count);
  // The cells still to execute, in deterministic (scenario-major) order —
  // consecutive entries usually share a scenario, which is what makes the
  // per-worker arena's reset-and-rerun path hit.
  std::vector<std::size_t> todo;
  std::vector<std::uint64_t> fingerprints;
  if (store != nullptr) {
    fingerprints.reserve(scenarios.size());
    for (const Scenario& scenario : scenarios) {
      fingerprints.push_back(scenario_fingerprint(scenario));
    }
    todo.reserve(cell_count);
    for (std::size_t i = 0; i < cell_count; ++i) {
      const std::size_t s = i / trials;
      const std::size_t t = i % trials;
      const TrialKey key{fingerprints[s], trial_seed(base_seed, s, t),
                         static_cast<std::uint32_t>(t)};
      if (const TrialStats* hit = store->find(key)) {
        cells[i] = *hit;
      } else {
        todo.push_back(i);
      }
    }
  } else {
    todo.resize(cell_count);
    std::iota(todo.begin(), todo.end(), std::size_t{0});
  }
  if (report != nullptr) {
    report->cells_total = cell_count;
    report->cells_run = todo.size();
    report->cells_cached = cell_count - todo.size();
    if (store != nullptr) report->shards_quarantined = store->quarantined_files();
  }

  // Progress streaming: one cumulative snapshot per finished block, built
  // under a mutex so the sink never runs concurrently with itself. When
  // every cell was cache-served no block ever runs, so emit one snapshot
  // up front — a fully warm sweep still reports its (all-cached) outcome.
  RunProgress snapshot;
  snapshot.scenarios_total = scenarios.size();
  snapshot.cells_total = cell_count;
  snapshot.cells_cached = cell_count - todo.size();
  snapshot.cells_fresh_total = todo.size();
  std::mutex progress_mutex;
  if (progress && todo.empty() && cell_count > 0) progress(snapshot);

  // Small-n trial batching: claim a block of cells per atomic increment so
  // short trials aren't dominated by claim traffic, but keep blocks small
  // enough that the tail stays balanced across workers. Each worker owns a
  // TrialArena (simulation reuse) and, when persisting, a private store
  // shard it flushes after every block — the post-kill recovery point.
  const std::size_t chunk = std::clamp<std::size_t>(
      todo.size() / (static_cast<std::size_t>(threads_) * 8), 1, 64);
  std::vector<TrialArena> arenas(threads_);
  std::vector<std::unique_ptr<ResultStore::ShardWriter>> writers(threads_);
  parallel_for_chunks(
      todo.size(), threads_, chunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        TrialArena& arena = arenas[worker];
        auto& writer = writers[worker];
        for (std::size_t j = begin; j < end; ++j) {
          const std::size_t cell = todo[j];
          const std::size_t s = cell / trials;
          const std::size_t t = cell % trials;
          const std::uint64_t seed = trial_seed(base_seed, s, t);
          cells[cell] = arena.run(scenarios[s], seed);
          if (store != nullptr) {
            if (writer == nullptr) writer = store->open_shard();
            writer->append(TrialKey{fingerprints[s], seed,
                                    static_cast<std::uint32_t>(t)},
                           cells[cell]);
          }
        }
        if (writer != nullptr) writer->flush();
        // Crash point for chaos tests: the block's records are flushed but
        // no progress/job-record update has happened yet — exactly the
        // window a resume must cover.
        (void)util::fault::inject("runner.block.flushed");
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          snapshot.cells_fresh_done += end - begin;
          snapshot.scenario = todo[end - 1] / trials;
          progress(snapshot);
        }
      });

  BatchResult batch;
  batch.trials_per_scenario = trials;
  batch.base_seed = base_seed;
  batch.results.reserve(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    ScenarioResult result;
    result.scenario = scenarios[s];
    result.trials.assign(cells.begin() + static_cast<std::ptrdiff_t>(s * trials),
                         cells.begin() +
                             static_cast<std::ptrdiff_t>((s + 1) * trials));
    result.aggregate = aggregate(result.trials);
    batch.results.push_back(std::move(result));
  }
  return batch;
}

BatchResult Runner::run(const std::vector<Scenario>& scenarios,
                        std::size_t trials, std::uint64_t base_seed,
                        const ProgressFn& progress) const {
  return run_cells(scenarios, trials, base_seed, nullptr, nullptr, progress);
}

BatchResult Runner::run(const SweepSpec& spec, std::size_t trials,
                        std::uint64_t base_seed,
                        const ProgressFn& progress) const {
  return run(spec.expand(), trials, base_seed, progress);
}

BatchResult Runner::run_resumable(const std::vector<Scenario>& scenarios,
                                  std::size_t trials, std::uint64_t base_seed,
                                  ResultStore& store, ResumeReport* report,
                                  const ProgressFn& progress) const {
  return run_cells(scenarios, trials, base_seed, &store, report, progress);
}

BatchResult Runner::run_resumable(const SweepSpec& spec, std::size_t trials,
                                  std::uint64_t base_seed, ResultStore& store,
                                  ResumeReport* report,
                                  const ProgressFn& progress) const {
  return run_resumable(spec.expand(), trials, base_seed, store, report,
                       progress);
}

const ScenarioResult& BatchResult::at(std::string_view name) const {
  for (const ScenarioResult& result : results) {
    if (result.scenario.name == name) return result;
  }
  throw std::out_of_range("no scenario named '" + std::string(name) + "'");
}

namespace {

/// Axis columns for tidy output: the UNION of every scenario's axes in
/// first-appearance order, minus the algorithm axis (already covered by
/// the algorithm string column). Taking only the first scenario's axes
/// used to silently report heterogeneous batches wrong — a scenario's
/// value for an axis it never swept would render as 0.
std::vector<std::string> tidy_axis_names(
    const std::vector<ScenarioResult>& results) {
  std::vector<std::string> names;
  for (const ScenarioResult& result : results) {
    for (const AxisValue& axis : result.scenario.axes) {
      if (axis.axis == "algorithm") continue;
      if (std::find(names.begin(), names.end(), axis.axis) == names.end()) {
        names.push_back(axis.axis);
      }
    }
  }
  return names;
}

/// The engine cell of the tidy table: which engine(s) actually executed
/// a scenario's trials. "cached" = every cell came from a ResultStore
/// (engine unknown by design); a '!' marks scalar fallbacks so a
/// degraded sweep stands out in a column of "packed".
std::string engine_cell(const Aggregate& agg) {
  const std::size_t known = agg.packed_trials + agg.scalar_trials;
  if (known == 0) return agg.trials == 0 ? "-" : "cached";
  std::string cell;
  if (agg.packed_trials > 0) {
    cell = "packed:" + std::to_string(agg.packed_trials);
  }
  if (agg.scalar_trials > 0) {
    if (!cell.empty()) cell += "+";
    cell += "scalar:" + std::to_string(agg.scalar_trials);
    if (!agg.fallback_reasons.empty()) cell += "!";
  }
  return cell;
}

}  // namespace

std::vector<std::string> BatchResult::tidy_header() const {
  std::vector<std::string> header = {"scenario", "algorithm"};
  for (std::string& name : tidy_axis_names(results)) {
    header.push_back(std::move(name));
  }
  header.insert(header.end(), {"trials", "conv%", "rounds(med)",
                               "rounds(mean)", "rounds(p95)", "E[winner q]",
                               "engines"});
  return header;
}

std::vector<std::string> BatchResult::tidy_csv_header() const {
  std::vector<std::string> header = {"scenario_id"};
  for (std::string& name : tidy_axis_names(results)) {
    header.push_back(std::move(name));
  }
  // NO engine columns here, deliberately: tidy CSV is identity-bearing
  // (test_resume pins warm-vs-cold byte equality, and cache-served cells
  // have unknown engines). Engine visibility lives in tidy_table()'s
  // "engines" column and print_engine_summary (report.hpp).
  header.insert(header.end(),
                {"trials", "conv_rate", "rounds_median", "rounds_mean",
                 "rounds_p95", "mean_winner_quality"});
  return header;
}

std::vector<std::vector<double>> BatchResult::tidy_rows() const {
  const auto axes = tidy_axis_names(results);
  std::vector<std::vector<double>> rows;
  rows.reserve(results.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    const ScenarioResult& result = results[s];
    const Aggregate& agg = result.aggregate;
    std::vector<double> row = {static_cast<double>(s)};
    // Align with tidy_csv_header: the union axes, NaN where this scenario
    // never swept the axis (0 would masquerade as a real coordinate).
    for (const std::string& axis : axes) {
      row.push_back(result.scenario.axis_value(
          axis, std::numeric_limits<double>::quiet_NaN()));
    }
    row.insert(row.end(),
               {static_cast<double>(agg.trials), agg.convergence_rate,
                agg.rounds.median, agg.rounds.mean, agg.rounds.p95,
                agg.mean_winner_quality});
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table BatchResult::tidy_table() const {
  const auto axes = tidy_axis_names(results);
  util::Table table(tidy_header());
  for (const ScenarioResult& result : results) {
    const Aggregate& agg = result.aggregate;
    table.begin_row()
        .cell(result.scenario.name)
        .cell(result.scenario.algorithm);
    for (const std::string& axis : axes) {
      // Blank cell for an axis this scenario never swept.
      if (result.scenario.has_axis(axis)) {
        table.num(result.scenario.axis_value(axis), 3);
      } else {
        table.cell("");
      }
    }
    table.num(static_cast<std::uint64_t>(agg.trials))
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.mean, 1)
        .num(agg.rounds.p95, 1)
        .num(agg.mean_winner_quality, 3)
        .cell(engine_cell(agg));
  }
  return table;
}

}  // namespace hh::analysis
