// The batch engine: executes trials x scenarios on a std::thread pool with
// deterministic per-trial seeds, so a sweep's results are bit-identical
// regardless of thread count. Every (scenario, trial) cell's seed is
// derived SplitMix-style from (base_seed, scenario index, trial index) and
// each cell writes its own result slot; aggregation happens serially
// afterwards — thread scheduling can reorder the work but never the data.
//
//   hh::analysis::Runner runner;                     // hardware threads
//   auto batch = runner.run(spec, /*trials=*/100, /*base_seed=*/42);
//   std::cout << batch.tidy_table().render();
#ifndef HH_ANALYSIS_RUNNER_HPP
#define HH_ANALYSIS_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "util/table.hpp"

namespace hh::analysis {

class ResultStore;

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// THE resolution of the threads=0 default, shared by Runner and the free
/// parallel loops: 0 means std::thread::hardware_concurrency() (at least
/// 1), anything else is taken literally. There is exactly one place this
/// policy lives — a caller passing RunnerOptions{.threads = 0} through any
/// path gets all cores, never a silent serial run.
[[nodiscard]] unsigned resolve_threads(unsigned threads);

/// Deterministic seed for trial `trial` of scenario `scenario` under
/// `base_seed` (stable across thread counts, platforms, and releases).
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       std::size_t scenario,
                                       std::size_t trial);

/// Run body(0..count-1) across resolve_threads(threads) workers (serially
/// when that is 1). Indices are claimed from an atomic counter; the body
/// must write only to its own index's state. The first exception thrown by
/// any body is rethrown on the caller after all workers join.
void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& body);

/// Chunked, worker-aware variant: workers claim `chunk`-sized index blocks
/// from an atomic counter and invoke body(worker, begin, end) per block.
/// `worker` is a dense id in [0, workers) — the hook for per-worker state
/// (arenas, shard writers) that must never be shared across threads.
/// Work-claiming order is nondeterministic; deterministic programs must
/// make body(w, i, j) write only to slots [i, j). Exceptions propagate as
/// in parallel_for_index.
void parallel_for_chunks(
    std::size_t count, unsigned threads, std::size_t chunk,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& body);

/// One worker's reusable trial state: holds the last trial's Simulation
/// and, when the engine supports it, reruns the next trial of the same
/// scenario by reset-and-rerun instead of reconstructing — amortizing the
/// per-trial construction cost (env buffers, pack lanes, ~10ns/ant) away
/// across a worker's trials. Falls back to construction transparently
/// (different scenario, or a non-resettable engine), so results are
/// bit-identical either way. Not thread-safe: one arena per worker.
class TrialArena {
 public:
  /// Run one trial of `scenario` under `seed`. The reference must stay
  /// valid and the scenario unmutated while the arena may reuse it
  /// (reuse is keyed on the scenario's address).
  [[nodiscard]] TrialStats run(const Scenario& scenario, std::uint64_t seed);

  /// Trials served by in-place reset vs fresh construction (for benches).
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  [[nodiscard]] std::uint64_t builds() const { return builds_; }

 private:
  const Scenario* scenario_ = nullptr;
  std::unique_ptr<core::Simulation> simulation_;
  std::uint64_t resets_ = 0;
  std::uint64_t builds_ = 0;
};

/// What run_resumable did: how many cells the sweep had, how many were
/// served from the store, and how many were actually executed.
struct ResumeReport {
  std::size_t cells_total = 0;
  std::size_t cells_cached = 0;
  std::size_t cells_run = 0;
  /// Shard files the store quarantined (renamed to *.hhrs.bad) — bad
  /// headers, not torn tails. Nonzero means cached coverage silently
  /// shrank; the cells recompute, but the operator should look.
  std::size_t shards_quarantined = 0;
};

/// A progress snapshot delivered after each completed work block (and once
/// up front when every cell was cache-served): overall cell accounting
/// plus the scenario the finishing block ended in. Counts are cumulative
/// and cells_done() is nondecreasing across calls; block completion order
/// is nondeterministic, so `scenario` may move backwards.
struct RunProgress {
  std::size_t scenario = 0;          ///< scenario index of the block's last cell
  std::size_t scenarios_total = 0;
  std::size_t cells_total = 0;       ///< scenarios x trials
  std::size_t cells_cached = 0;      ///< served from the store up front
  std::size_t cells_fresh_done = 0;  ///< executed so far, all workers
  std::size_t cells_fresh_total = 0; ///< cells_total - cells_cached

  [[nodiscard]] std::size_t cells_done() const {
    return cells_cached + cells_fresh_done;
  }
  [[nodiscard]] bool finished() const {
    return cells_fresh_done == cells_fresh_total;
  }
};

/// Progress sink for Runner::run/run_resumable. Called under an internal
/// mutex (never concurrently with itself) from worker threads — keep it
/// fast; it is on the batch's critical path.
using ProgressFn = std::function<void(const RunProgress&)>;

/// One scenario's outcome: the per-trial stats (trial order, not
/// completion order) and their aggregate.
struct ScenarioResult {
  Scenario scenario;
  std::vector<TrialStats> trials;
  Aggregate aggregate;
};

/// A full batch: one ScenarioResult per scenario, in scenario order, plus
/// tidy long-format views for tables/CSV.
struct BatchResult {
  std::vector<ScenarioResult> results;
  std::size_t trials_per_scenario = 0;
  std::uint64_t base_seed = 0;

  /// Result whose scenario name is `name`; throws std::out_of_range.
  [[nodiscard]] const ScenarioResult& at(std::string_view name) const;

  /// Long-format header for tidy_table(): scenario, algorithm, axes...,
  /// then the standard aggregate columns. Axis names are the UNION of all
  /// scenarios' axes in first-appearance order — a heterogeneous batch
  /// (scenarios from different sweeps) reports every axis; a scenario
  /// lacking one shows NaN (rows/CSV) or a blank cell (table).
  [[nodiscard]] std::vector<std::string> tidy_header() const;
  /// Header aligned with tidy_rows() (all-numeric columns) — pair THESE
  /// two for write_csv.
  [[nodiscard]] std::vector<std::string> tidy_csv_header() const;
  /// Numeric long-format rows for write_csv: one scenario-index column,
  /// the axis values, then the aggregate columns — aligned with
  /// tidy_csv_header(), NOT with tidy_header() (whose two leading
  /// columns are strings).
  [[nodiscard]] std::vector<std::vector<double>> tidy_rows() const;
  /// Console table of every scenario's aggregate.
  [[nodiscard]] util::Table tidy_table() const;
};

/// The scenario/sweep execution engine.
class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Worker threads this runner will use (resolved, >= 1).
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Standard path: run `trials` simulations of every scenario via the
  /// algorithm registry and aggregate. `progress`, when set, receives a
  /// RunProgress snapshot per completed work block.
  [[nodiscard]] BatchResult run(const std::vector<Scenario>& scenarios,
                                std::size_t trials, std::uint64_t base_seed,
                                const ProgressFn& progress = {}) const;
  [[nodiscard]] BatchResult run(const SweepSpec& spec, std::size_t trials,
                                std::uint64_t base_seed,
                                const ProgressFn& progress = {}) const;

  /// Checkpointed path for long sweeps: every (scenario, trial) cell
  /// already present in `store` — keyed by (scenario_fingerprint, trial,
  /// trial_seed) — is served from disk; only the missing cells run, each
  /// worker appending its fresh results to a private store shard as it
  /// goes (no lock on the hot path). The returned BatchResult is
  /// BIT-IDENTICAL to what run() would produce cold, for ANY mix of
  /// cached and fresh cells and any thread count — interrupt the process
  /// anywhere, rerun the same command, and the aggregate cannot change
  /// (tests/test_resume.cpp pins this at 1/2/8 threads against torn
  /// shards). `report`, when non-null, receives the cached/run split;
  /// `progress` streams per-block snapshots exactly as in run().
  [[nodiscard]] BatchResult run_resumable(
      const std::vector<Scenario>& scenarios, std::size_t trials,
      std::uint64_t base_seed, ResultStore& store,
      ResumeReport* report = nullptr, const ProgressFn& progress = {}) const;
  [[nodiscard]] BatchResult run_resumable(
      const SweepSpec& spec, std::size_t trials, std::uint64_t base_seed,
      ResultStore& store, ResumeReport* report = nullptr,
      const ProgressFn& progress = {}) const;

  /// Generic path: evaluate fn(scenario, seed) for every (scenario, trial)
  /// cell in parallel and return the results in deterministic
  /// [scenario][trial] order. T must be default-constructible and must
  /// not be bool (std::vector<bool> bit-packs, so concurrent per-cell
  /// writes would race — return a small struct or int instead). Use this
  /// for measurements richer than TrialStats (trajectory digests,
  /// environment-level probes, rumor-spread runs, ...).
  template <typename Fn>
  [[nodiscard]] auto map(const std::vector<Scenario>& scenarios,
                         std::size_t trials, std::uint64_t base_seed,
                         Fn&& fn) const {
    using T = std::decay_t<
        std::invoke_result_t<Fn&, const Scenario&, std::uint64_t>>;
    static_assert(!std::is_same_v<T, bool>,
                  "std::vector<bool> bit-packs: concurrent cell writes "
                  "would race; return int or a struct instead");
    std::vector<std::vector<T>> out(scenarios.size());
    for (auto& row : out) row.resize(trials);
    parallel_for_index(
        scenarios.size() * trials, threads_, [&](std::size_t index) {
          const std::size_t s = index / trials;
          const std::size_t t = index % trials;
          out[s][t] = fn(scenarios[s], trial_seed(base_seed, s, t));
        });
    return out;
  }

 private:
  /// Shared executor of run()/run_resumable(): fills the cell matrix from
  /// `store` (when given) and the workers, then aggregates.
  BatchResult run_cells(const std::vector<Scenario>& scenarios,
                        std::size_t trials, std::uint64_t base_seed,
                        ResultStore* store, ResumeReport* report,
                        const ProgressFn& progress) const;

  unsigned threads_;
};

/// The default per-trial measurement used by Runner::run.
[[nodiscard]] TrialStats run_scenario_trial(const Scenario& scenario,
                                            std::uint64_t seed);

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_RUNNER_HPP
