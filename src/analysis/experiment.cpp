#include "analysis/experiment.hpp"

#include <algorithm>

namespace hh::analysis {

void count_fallback_reason(
    std::vector<std::pair<std::string, std::size_t>>& reasons,
    const std::string& reason, std::size_t count) {
  const auto it =
      std::find_if(reasons.begin(), reasons.end(),
                   [&](const auto& r) { return r.first == reason; });
  if (it == reasons.end()) {
    reasons.emplace_back(reason, count);
  } else {
    it->second += count;
  }
}

Aggregate aggregate(const std::vector<TrialStats>& trials) {
  Aggregate agg;
  agg.trials = trials.size();
  double quality_sum = 0.0;
  double recruit_sum = 0.0;
  for (const TrialStats& t : trials) {
    if (t.engine == core::EngineKind::kPacked) ++agg.packed_trials;
    if (t.engine == core::EngineKind::kScalar) ++agg.scalar_trials;
    if (!t.engine_fallback.empty()) {
      count_fallback_reason(agg.fallback_reasons, t.engine_fallback);
    }
    if (!t.converged) continue;
    ++agg.converged;
    agg.round_samples.push_back(t.rounds);
    quality_sum += t.winner_quality;
    recruit_sum += t.recruitments;
  }
  std::sort(agg.fallback_reasons.begin(), agg.fallback_reasons.end());
  agg.convergence_rate =
      agg.trials == 0 ? 0.0
                      : static_cast<double>(agg.converged) /
                            static_cast<double>(agg.trials);
  if (agg.converged > 0) {
    agg.rounds = util::summarize(agg.round_samples);
    agg.mean_winner_quality =
        quality_sum / static_cast<double>(agg.converged);
    agg.mean_recruitments =
        recruit_sum / static_cast<double>(agg.converged);
  }
  return agg;
}

TrialStats to_trial_stats(const core::RunResult& result) {
  TrialStats t;
  t.converged = result.converged;
  t.rounds = static_cast<double>(result.rounds);
  t.winner = result.winner;
  t.winner_quality = result.winner_quality;
  t.recruitments = static_cast<double>(result.total_recruitments);
  t.engine = result.engine;
  t.engine_fallback = result.engine_fallback;
  return t;
}

}  // namespace hh::analysis
