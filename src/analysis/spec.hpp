// Serializable experiment descriptions — canonical JSON for Scenario,
// SweepSpec, and whole experiments, built on util/json.
//
// An ExperimentSpec is the complete, file-driven description of what a
// bench driver runs: named sweeps, each with trials and a base seed, each
// either DECLARATIVE (a base scenario + standard sweep axes — the form a
// human writes and edits) or CONCRETE (an explicit scenario list — the
// fallback for sweeps built with custom mutator axes). `driver
// --dump-spec` emits this form; `driver --spec FILE` (analysis/cli.hpp)
// runs from it, reproducing the flag-driven run bit-for-bit: the JSON
// number codec round-trips doubles exactly, and ResultStore fingerprints
// are themselves computed over scenario_identity_json(), so a spec-driven
// sweep shares every cached cell with its flag-driven twin.
//
// Canonical form: fixed key order, every field emitted (no
// defaults-omitted ambiguity), exact shortest-round-trip numbers, 64-bit
// seeds as decimal strings (JSON numbers are doubles; seeds use all 64
// bits). Canonicalization makes serialization a fixed point —
// dump(parse(dump(x))) == dump(x) — which tests/test_spec.cpp pins.
//
// Errors: every structural problem (unknown key, wrong type, bad enum
// name, out-of-range value) throws SpecError carrying the JSON path
// ("sweeps[2].base.config.noise.count_sigma"), so a typo in a 400-line
// spec file is a one-line fix, not a hunt.
#ifndef HH_ANALYSIS_SPEC_HPP
#define HH_ANALYSIS_SPEC_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/scenario.hpp"
#include "util/json.hpp"

namespace hh::analysis {

/// A structural error in a spec document, qualified with the JSON path of
/// the offending element.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::string path, const std::string& message);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// One named unit of work inside an experiment: a sweep (declarative or
/// concrete), how many trials per scenario, and the batch base seed.
struct SweepEntry {
  std::string name;
  std::size_t trials = 1;
  std::uint64_t base_seed = 0;
  /// Declarative form (preferred; present when the sweep was built from
  /// standard axes). When absent, `scenarios` is the concrete form.
  std::optional<SweepSpec> sweep;
  std::vector<Scenario> scenarios;

  /// The scenario list this entry runs (expands `sweep` when present).
  [[nodiscard]] std::vector<Scenario> expand() const;
  /// Number of scenarios expand() will produce.
  [[nodiscard]] std::size_t size() const;
};

/// A whole driver run: named sweeps in execution order.
struct ExperimentSpec {
  std::string name;
  std::vector<SweepEntry> sweeps;

  /// The entry named `sweep`, or nullptr.
  [[nodiscard]] const SweepEntry* find(std::string_view sweep) const;
};

// --- Scenario ---------------------------------------------------------------

/// Full canonical JSON of one scenario (name, algorithm, config, params,
/// axes — everything, so a concrete spec reproduces the scenario
/// bit-identically).
[[nodiscard]] util::Json scenario_to_json(const Scenario& scenario);

/// Parse a scenario; `path` prefixes error locations.
[[nodiscard]] Scenario scenario_from_json(const util::Json& json,
                                          const std::string& path = "scenario");

/// The canonical IDENTITY rendering of a scenario: compact JSON over
/// exactly the fields that determine a trial's outcome — algorithm,
/// config WITHOUT seed/engine/enforce_model/record_trajectories (see
/// scenario_fingerprint's contract in result_store.hpp), and params.
/// ResultStore fingerprints hash these bytes.
[[nodiscard]] std::string scenario_identity_json(const Scenario& scenario);

// --- SweepEntry / ExperimentSpec --------------------------------------------

/// Canonical JSON of one sweep entry. A serializable SweepSpec emits the
/// declarative base+axes form; anything else emits expanded scenarios.
[[nodiscard]] util::Json sweep_entry_to_json(const SweepEntry& entry);

[[nodiscard]] SweepEntry sweep_entry_from_json(const util::Json& json,
                                               const std::string& path);

[[nodiscard]] util::Json experiment_to_json(const ExperimentSpec& spec);
[[nodiscard]] ExperimentSpec experiment_from_json(const util::Json& json);

/// Parse/serialize a whole spec document. dump defaults to pretty (the
/// file is meant to be edited); parse accepts any whitespace.
[[nodiscard]] ExperimentSpec parse_experiment_spec(std::string_view text);
[[nodiscard]] std::string dump_experiment_spec(const ExperimentSpec& spec,
                                               int indent = 2);

/// Load a spec from `path` ("-" = stdin). Throws std::runtime_error on
/// I/O failure, JsonParseError / SpecError on malformed content (both
/// augmented with the file name).
[[nodiscard]] ExperimentSpec load_experiment_spec(const std::string& path);

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_SPEC_HPP
