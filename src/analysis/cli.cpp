#include "analysis/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "analysis/report.hpp"
#include "util/contracts.hpp"

namespace hh::analysis::cli {

namespace {

void print_usage(std::string_view driver, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %.*s [--spec FILE] [--dump-spec] [--resume-dir DIR]\n"
      "       %*s [--threads N] [--trials N] [--seed N] [--progress] "
      "[--help]\n"
      "\n"
      "  --spec FILE     run from a serialized experiment spec (\"-\" = "
      "stdin)\n"
      "  --dump-spec     print the canonical spec JSON of this run and "
      "exit\n"
      "  --resume-dir D  checkpoint/resume every trial cell in a result "
      "store at D\n"
      "  --threads N     worker threads (default 0 = all cores)\n"
      "  --trials N      override every sweep's trials-per-scenario\n"
      "  --seed N        override every sweep's base seed\n"
      "  --progress      repaint a progress line on stderr per sweep\n",
      static_cast<int>(driver.size()), driver.data(),
      static_cast<int>(driver.size()), "");
}

[[noreturn]] void usage_error(std::string_view driver,
                              const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  print_usage(driver, stderr);
  std::exit(2);
}

std::uint64_t parse_u64_flag(std::string_view driver, const char* flag,
                             const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  // strtoull silently wraps negative input ("-3" -> ~1.8e19), so demand a
  // leading digit outright.
  if (std::isdigit(static_cast<unsigned char>(*text)) == 0 || end == nullptr ||
      *end != '\0' || errno == ERANGE) {
    usage_error(driver, std::string(flag) + " needs an unsigned integer, got '" +
                            text + "'");
  }
  return v;
}

}  // namespace

Options parse_options(int argc, char** argv, std::string_view driver) {
  Options options;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      // A flag without its required argument is a usage error (exit 2),
      // reported on stderr.
      std::fprintf(stderr, "%s needs a%s argument\n", flag,
                   std::strcmp(flag, "--resume-dir") == 0 ? " directory" : "n");
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--spec") {
      options.spec_path = value_of(i, "--spec");
    } else if (arg == "--dump-spec") {
      options.dump_spec = true;
    } else if (arg == "--resume-dir") {
      options.resume_dir = value_of(i, "--resume-dir");
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(
          parse_u64_flag(driver, "--threads", value_of(i, "--threads")));
    } else if (arg == "--trials") {
      const std::uint64_t trials =
          parse_u64_flag(driver, "--trials", value_of(i, "--trials"));
      if (trials == 0) usage_error(driver, "--trials must be >= 1");
      options.trials = static_cast<std::size_t>(trials);
    } else if (arg == "--seed") {
      options.base_seed = parse_u64_flag(driver, "--seed", value_of(i, "--seed"));
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(driver, stdout);
      std::exit(0);
    } else {
      usage_error(driver, "unknown argument '" + std::string(arg) + "'");
    }
  }
  return options;
}

Experiment::Experiment(std::string name, int argc, char** argv)
    : Experiment(std::move(name), parse_options(argc, argv, argv != nullptr &&
                                                                argc > 0
                                                            ? argv[0]
                                                            : "driver")) {}

Experiment::Experiment(std::string name, Options options)
    : name_(std::move(name)), options_(std::move(options)) {
  effective_.name = name_;
  if (!options_.spec_path.empty()) {
    try {
      loaded_ = load_experiment_spec(options_.spec_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
    loaded_consumed_.assign(loaded_.sweeps.size(), false);
  }
}

Experiment::~Experiment() = default;

void Experiment::adopt(SweepEntry entry) {
  HH_EXPECTS(!entry.name.empty());
  for (const SweepEntry& existing : effective_.sweeps) {
    if (existing.name == entry.name) {
      std::fprintf(stderr, "driver bug: sweep '%s' declared twice\n",
                   entry.name.c_str());
      std::exit(2);
    }
  }
  // A --spec file entry of the same name replaces the in-code defaults.
  for (std::size_t i = 0; i < loaded_.sweeps.size(); ++i) {
    if (loaded_.sweeps[i].name == entry.name) {
      entry = loaded_.sweeps[i];
      loaded_consumed_[i] = true;
      break;
    }
  }
  if (options_.trials) entry.trials = *options_.trials;
  if (options_.base_seed) entry.base_seed = *options_.base_seed;
  effective_.sweeps.push_back(std::move(entry));
  expansions_.emplace_back();
}

void Experiment::declare(std::string sweep, SweepSpec spec, std::size_t trials,
                         std::uint64_t base_seed) {
  SweepEntry entry;
  entry.name = std::move(sweep);
  entry.trials = trials;
  entry.base_seed = base_seed;
  entry.sweep = std::move(spec);
  adopt(std::move(entry));
}

void Experiment::declare(std::string sweep, std::vector<Scenario> scenarios,
                         std::size_t trials, std::uint64_t base_seed) {
  SweepEntry entry;
  entry.name = std::move(sweep);
  entry.trials = trials;
  entry.base_seed = base_seed;
  entry.scenarios = std::move(scenarios);
  adopt(std::move(entry));
}

bool Experiment::dump_spec_requested() {
  // A file sweep the driver never declared would silently not run — that
  // is data loss, not a default to fall back on.
  for (std::size_t i = 0; i < loaded_.sweeps.size(); ++i) {
    if (!loaded_consumed_[i]) {
      std::fprintf(stderr,
                   "spec file '%s' contains sweep '%s', which driver '%s' "
                   "does not declare (declared:",
                   options_.spec_path.c_str(), loaded_.sweeps[i].name.c_str(),
                   name_.c_str());
      for (const SweepEntry& entry : effective_.sweeps) {
        std::fprintf(stderr, " %s", entry.name.c_str());
      }
      std::fprintf(stderr, ")\n");
      std::exit(2);
    }
  }
  if (!options_.dump_spec) return false;
  std::cout << dump_experiment_spec(effective_) << '\n';
  return true;
}

std::size_t Experiment::index_or_throw(std::string_view sweep) const {
  for (std::size_t i = 0; i < effective_.sweeps.size(); ++i) {
    if (effective_.sweeps[i].name == sweep) return i;
  }
  throw std::out_of_range("no declared sweep named '" + std::string(sweep) +
                          "'");
}

const std::vector<Scenario>& Experiment::scenarios(std::string_view sweep) {
  const std::size_t i = index_or_throw(sweep);
  Expansion& expansion = expansions_[i];
  if (!expansion.ready) {
    expansion.scenarios = effective_.sweeps[i].expand();
    expansion.ready = true;
  }
  return expansion.scenarios;
}

std::size_t Experiment::trials(std::string_view sweep) const {
  return effective_.sweeps[index_or_throw(sweep)].trials;
}

std::uint64_t Experiment::base_seed(std::string_view sweep) const {
  return effective_.sweeps[index_or_throw(sweep)].base_seed;
}

const Runner& Experiment::runner() {
  if (runner_ == nullptr) {
    runner_ = std::make_unique<Runner>(RunnerOptions{options_.threads});
  }
  return *runner_;
}

BatchResult Experiment::run(std::string_view sweep) {
  const std::size_t i = index_or_throw(sweep);
  const SweepEntry& entry = effective_.sweeps[i];
  return run_sweep(runner(), scenarios(sweep), entry.trials, entry.base_seed,
                   options_.resume_dir,
                   options_.progress ? stderr_progress(entry.name)
                                     : ProgressFn{});
}

}  // namespace hh::analysis::cli
