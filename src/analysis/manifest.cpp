#include "analysis/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/result_store.hpp"
#include "analysis/spec.hpp"

#ifndef ANTHILL_GIT_SHA
#define ANTHILL_GIT_SHA "unknown"
#endif

namespace hh::analysis {
namespace {

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

}  // namespace

const char* build_git_sha() { return ANTHILL_GIT_SHA; }

util::Json run_manifest_json(const BatchResult& batch,
                             const ManifestInfo& info) {
  std::size_t packed = 0;
  std::size_t scalar = 0;
  std::size_t trials_total = 0;
  std::vector<std::pair<std::string, std::size_t>> reasons;
  for (const ScenarioResult& result : batch.results) {
    packed += result.aggregate.packed_trials;
    scalar += result.aggregate.scalar_trials;
    trials_total += result.aggregate.trials;
    for (const auto& [reason, count] : result.aggregate.fallback_reasons) {
      count_fallback_reason(reasons, reason, count);
    }
  }

  util::Json cells;
  if (info.resume != nullptr) {
    cells.set("total", static_cast<double>(info.resume->cells_total));
    cells.set("cached", static_cast<double>(info.resume->cells_cached));
    cells.set("run", static_cast<double>(info.resume->cells_run));
  } else {
    // Cache-served cells are exactly the trials of unknown engine.
    const std::size_t cached = trials_total - packed - scalar;
    cells.set("total", static_cast<double>(trials_total));
    cells.set("cached", static_cast<double>(cached));
    cells.set("run", static_cast<double>(trials_total - cached));
  }

  util::Json fallback;
  for (const auto& [reason, count] : reasons) {
    fallback.set(reason, static_cast<double>(count));
  }
  util::Json engines;
  engines.set("packed", static_cast<double>(packed));
  engines.set("scalar", static_cast<double>(scalar));
  engines.set("fallback_reasons",
              fallback.is_null() ? util::Json(util::Json::Object{})
                                 : std::move(fallback));

  util::Json scenarios;
  for (const ScenarioResult& result : batch.results) {
    util::Json entry;
    entry.set("name", result.scenario.name);
    entry.set("algorithm", result.scenario.algorithm);
    entry.set("fingerprint",
              hex_fingerprint(scenario_fingerprint(result.scenario)));
    // The exact bytes the fingerprint hashes, parsed back into structure —
    // a manifest reader can re-derive and cross-check the fingerprint.
    entry.set("identity",
              util::parse_json(scenario_identity_json(result.scenario)));
    scenarios.push_back(std::move(entry));
  }
  if (scenarios.is_null()) scenarios = util::Json(util::Json::Array{});

  util::Json manifest;
  manifest.set("anthill_manifest", 1);
  manifest.set("git_sha", build_git_sha());
  manifest.set("threads", static_cast<double>(info.threads));
  manifest.set("trials_per_scenario",
               static_cast<double>(batch.trials_per_scenario));
  // All 64 seed bits survive only as a decimal string (JSON numbers are
  // doubles) — the same convention the spec codec uses.
  manifest.set("base_seed", std::to_string(batch.base_seed));
  manifest.set("cells", std::move(cells));
  manifest.set("engines", std::move(engines));
  manifest.set("store_dir",
               info.store_dir.empty() ? util::Json(nullptr)
                                      : util::Json(info.store_dir));
  manifest.set("scenarios", std::move(scenarios));
  return manifest;
}

std::string write_run_manifest(const std::string& csv_path,
                               const BatchResult& batch,
                               const ManifestInfo& info) {
  if (csv_path.empty()) return {};
  std::string path = csv_path;
  const std::string suffix = ".csv";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.resize(path.size() - suffix.size());
  }
  path += ".manifest.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return {};
  }
  out << util::dump_json(run_manifest_json(batch, info), 2) << '\n';
  if (!out) {
    std::cerr << "warning: short write to " << path << '\n';
    return {};
  }
  return path;
}

}  // namespace hh::analysis
