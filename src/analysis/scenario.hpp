// Declarative experiment specs: a Scenario names one simulation
// configuration (config + algorithm + params); a SweepSpec is a fluent
// builder whose axes expand to the cross-product of scenarios. Together
// with analysis::Runner this replaces the hand-rolled sweep loops the
// bench drivers used to carry: declare the axes, expand, run.
//
//   auto scenarios = hh::analysis::SweepSpec("crossover")
//                        .algorithms({AlgorithmKind::kSimple,
//                                     AlgorithmKind::kOptimal})
//                        .colony_sizes({1u << 10, 1u << 14})
//                        .nest_counts({2, 8, 32})
//                        .expand();
#ifndef HH_ANALYSIS_SCENARIO_HPP
#define HH_ANALYSIS_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/colony.hpp"
#include "core/registry.hpp"
#include "core/simulation.hpp"
#include "env/pairing.hpp"

namespace hh::analysis {

/// One swept coordinate of a scenario, kept for tidy long-format output:
/// axis name -> numeric value, plus the point's display label (so drivers
/// can print coordinates without mirroring the spec's label lists).
struct AxisValue {
  std::string axis;
  double value = 0.0;
  std::string label;
};

/// Everything needed to run trials of one experimental condition: a
/// human-readable name, an algorithm (registry key), the simulation
/// config (its seed field is overwritten per trial), and tunables.
struct Scenario {
  std::string name;
  std::string algorithm{"simple"};
  core::SimulationConfig config;
  core::AlgorithmParams params;
  /// The swept coordinates that produced this scenario, in sweep order.
  std::vector<AxisValue> axes;

  /// Build this scenario's simulation for one trial seed (via the
  /// algorithm registry).
  [[nodiscard]] std::unique_ptr<core::Simulation> make_simulation(
      std::uint64_t seed) const;

  /// Value of a swept axis, or `fallback` if this scenario has no such
  /// axis.
  [[nodiscard]] double axis_value(std::string_view axis,
                                  double fallback = 0.0) const;

  /// Whether this scenario swept `axis` at all (distinguishes a genuine
  /// coordinate from axis_value's fallback).
  [[nodiscard]] bool has_axis(std::string_view axis) const;

  /// Display label of a swept axis point ("" if absent or unlabeled).
  [[nodiscard]] std::string_view axis_label(std::string_view axis) const;

  /// Convenience constructor for a one-off (non-swept) scenario.
  [[nodiscard]] static Scenario of(std::string name, core::AlgorithmKind kind,
                                   core::SimulationConfig config,
                                   core::AlgorithmParams params = {});
};

/// Fluent cross-product builder. Each axis call appends one dimension;
/// expand() yields every combination, first-declared axis varying slowest.
/// Scalar convenience axes cover the library's standard knobs; axis()
/// accepts arbitrary mutators for anything else.
class SweepSpec {
 public:
  /// A scenario mutation applied when a point of an axis is selected.
  using Mutator = std::function<void(Scenario&)>;

  /// One point of an axis: display label, numeric value (for tidy
  /// output), and the mutation it applies.
  struct Point {
    std::string label;
    double value = 0.0;
    Mutator apply;
  };

  /// Declarative description of one axis, recorded by every STANDARD axis
  /// builder so a sweep built from the fluent API serializes to canonical
  /// JSON (analysis/spec.hpp) and parses back to an identical sweep. The
  /// payload fields used depend on `kind` (the builder method's name);
  /// an empty kind marks a custom axis() — a mutator the spec layer
  /// cannot serialize declaratively (it falls back to emitting the
  /// expanded scenarios instead).
  struct AxisDesc {
    std::string kind;  ///< builder name ("colony_sizes", ...); "" = custom
    std::vector<double> values;
    std::vector<std::string> labels;  ///< algorithms, pairings, engines, sets
    std::vector<std::vector<double>> vectors;  ///< quality_sets payloads
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;  ///< (n, k)
    double fraction = 0.0;  ///< bad_fraction where applicable
  };

  /// One declared axis: tidy-output name, expansion points, and the
  /// declarative description (for serialization).
  struct Axis {
    std::string name;
    std::vector<Point> points;
    AxisDesc desc;
  };

  explicit SweepSpec(std::string name = "sweep");

  // --- base scenario (applied before any axis) --------------------------
  SweepSpec& base(core::SimulationConfig config);
  SweepSpec& params(core::AlgorithmParams params);
  SweepSpec& algorithm(core::AlgorithmKind kind);
  SweepSpec& algorithm(std::string name);

  // --- standard axes ----------------------------------------------------
  /// Algorithm axis from registry names.
  SweepSpec& algorithms(std::vector<std::string> names);
  /// Algorithm axis from built-in kinds.
  SweepSpec& algorithms(const std::vector<core::AlgorithmKind>& kinds);
  /// Colony-size axis (axis "n").
  SweepSpec& colony_sizes(std::vector<std::uint32_t> ns);
  /// Nest-count axis (axis "k"): k nests, floor(k * bad_fraction) bad ones
  /// at the end (binary qualities, as in the paper's experiments).
  SweepSpec& nest_counts(std::vector<std::uint32_t> ks,
                         double bad_fraction = 0.5);
  /// Joint (n, k) axis for sweeps whose sizes move together (axis "n";
  /// scenarios also record axis "k").
  SweepSpec& colony_nest_pairs(
      std::vector<std::pair<std::uint32_t, std::uint32_t>> nk,
      double bad_fraction = 0.5);
  /// Named quality-vector axis (axis "qualities"; value = index).
  SweepSpec& quality_sets(
      std::vector<std::pair<std::string, std::vector<double>>> sets);
  /// Section 6 noise: multiplicative count-noise sigma.
  SweepSpec& count_noise(std::vector<double> sigmas);
  /// Section 6 noise: binary quality flip probability.
  SweepSpec& quality_flip(std::vector<double> probs);
  /// Section 6 faults: crash fraction.
  SweepSpec& crash_fractions(std::vector<double> fractions);
  /// Section 6 faults: Byzantine fraction (tolerance/stability are the
  /// caller's business — pair with axis() or base() when needed).
  SweepSpec& byzantine_fractions(std::vector<double> fractions);
  /// Section 6 partial synchrony: per-round skip probability.
  SweepSpec& skip_probabilities(std::vector<double> probs);
  /// Pairing-model axis (value = enum index).
  SweepSpec& pairings(std::vector<env::PairingKind> kinds);
  /// Colony-engine axis (value = enum index): scalar reference path vs
  /// packed SoA fast path — for equivalence sweeps and engine benchmarks.
  SweepSpec& engines(std::vector<core::EngineKind> kinds);
  /// AlgorithmParams axis: n-estimate error.
  SweepSpec& n_estimate_errors(std::vector<double> errors);
  /// AlgorithmParams axis: quorum threshold fraction.
  SweepSpec& quorum_fractions(std::vector<double> fractions);
  /// AlgorithmParams axis over ANY core::algorithm_param_table() key
  /// (axis name = key) — the generic form; registered variants' params
  /// are sweepable by name with no new builder. Values are range-checked
  /// against the table row.
  SweepSpec& param_values(const std::string& key, std::vector<double> values);

  /// Arbitrary axis.
  SweepSpec& axis(std::string name, std::vector<Point> points);
  /// Arbitrary numeric axis: label = formatted value.
  SweepSpec& axis(std::string name, std::vector<double> values,
                  const std::function<void(Scenario&, double)>& apply);

  /// Number of scenarios expand() will produce (product of axis sizes).
  [[nodiscard]] std::size_t size() const;

  /// The cross-product, named "<sweep>/<axis>=<label>/..." per scenario.
  [[nodiscard]] std::vector<Scenario> expand() const;

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- introspection (the JSON spec layer serializes through these) -----
  /// The declared axes, in declaration order.
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }
  /// The base scenario every expansion starts from (its name is unused;
  /// expand() stamps the sweep name).
  [[nodiscard]] const Scenario& base_scenario() const { return seed_; }
  /// True iff every axis was declared through a standard builder, so the
  /// whole sweep serializes declaratively.
  [[nodiscard]] bool serializable() const;

 private:
  SweepSpec& add_axis(std::string name, std::vector<Point> points,
                      AxisDesc desc);
  SweepSpec& numeric_axis(std::string kind, std::string axis_name,
                          std::vector<double> values,
                          const std::function<void(Scenario&, double)>& apply);

  std::string name_;
  Scenario seed_;
  std::vector<Axis> axes_;
};

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_SCENARIO_HPP
