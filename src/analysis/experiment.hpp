// Trial repetition and aggregation: every experiment in bench/ runs each
// configuration over many independent seeds and reports distributional
// statistics (the theorems are with-high-probability statements).
#ifndef HH_ANALYSIS_EXPERIMENT_HPP
#define HH_ANALYSIS_EXPERIMENT_HPP

#include <cstdint>
#include <vector>

#include "core/colony.hpp"
#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace hh::analysis {

/// The scalar outcome of one trial.
struct TrialStats {
  bool converged = false;
  double rounds = 0.0;  ///< decision round (valid when converged)
  env::NestId winner = env::kHomeNest;
  double winner_quality = 0.0;
  double recruitments = 0.0;  ///< total successful recruitments
  /// Diagnostic: the engine that executed the trial (kScalar/kPacked), or
  /// kAuto for "unknown" — cells served from a ResultStore cache keep
  /// kAuto, because scalar and packed runs share cache entries by the
  /// equivalence contract and the store records only model outcomes.
  /// Never part of result identity (excluded from store payloads).
  core::EngineKind engine = core::EngineKind::kAuto;
  /// Diagnostic: why a kAuto trial fell back to the scalar engine
  /// (RunResult::engine_fallback; "" when packed ran, when scalar was
  /// explicit, or for cache-served cells). Like `engine`, never part of
  /// result identity.
  std::string engine_fallback;
};

/// Aggregated view of a batch of trials.
struct Aggregate {
  std::size_t trials = 0;
  std::size_t converged = 0;
  /// Engine observability (never part of result identity): how many
  /// trials ran on the packed engine / fell back to scalar. Trials of
  /// unknown engine (cache-served cells) count in neither.
  std::size_t packed_trials = 0;
  std::size_t scalar_trials = 0;
  /// Distinct engine-fallback reasons seen across the trials, with their
  /// trial counts, sorted by reason. Empty when nothing fell back — so a
  /// silently-degraded sweep is visible from the aggregate alone (the
  /// tidy report prints these; see BatchResult/report.hpp).
  std::vector<std::pair<std::string, std::size_t>> fallback_reasons;
  double convergence_rate = 0.0;
  util::Summary rounds;               ///< over converged trials only
  double mean_winner_quality = 0.0;   ///< over converged trials only
  double mean_recruitments = 0.0;     ///< over converged trials only

  /// Raw per-trial round counts of converged trials (for fits/plots).
  std::vector<double> round_samples;
};

/// Collapse TrialStats into an Aggregate.
[[nodiscard]] Aggregate aggregate(const std::vector<TrialStats>& trials);

/// Merge `count` occurrences of one fallback reason into a distinct-reason
/// counter list (first-seen order preserved) — THE accumulation both
/// Aggregate::fallback_reasons and the batch-level engine summary
/// (report.hpp) use, so reason bookkeeping cannot drift between them.
void count_fallback_reason(
    std::vector<std::pair<std::string, std::size_t>>& reasons,
    const std::string& reason, std::size_t count = 1);

/// Convenience: TrialStats from a completed RunResult.
[[nodiscard]] TrialStats to_trial_stats(const core::RunResult& result);

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_EXPERIMENT_HPP
