// Report emission shared by the bench binaries: experiment banners,
// aggregate-row tables, scaling fits, and CSV artifacts under bench_out/.
#ifndef HH_ANALYSIS_REPORT_HPP
#define HH_ANALYSIS_REPORT_HPP

#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/runner.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"

namespace hh::analysis {

/// Print a titled banner for an experiment section to stdout.
void print_banner(const std::string& experiment_id, const std::string& claim);

/// Append the standard aggregate columns to a table row that the caller
/// has already begun and filled with its parameter cells.
void append_aggregate_cells(util::Table& table, const Aggregate& agg);

/// The standard aggregate column headers, to splice into table headers.
[[nodiscard]] std::vector<std::string> aggregate_headers();

/// Print a one-line verdict comparing a fitted scaling against the paper's
/// claim, e.g. "fit: y = 1.9*log2(n) + 3 (R^2=0.99)  [paper: O(log n)]".
void print_fit(const util::Fit& fit, const std::string& feature,
               const std::string& paper_claim);

/// Print the batch's engine split when anything fell back to the scalar
/// path: total packed/scalar/cache-served trial counts plus one line per
/// DISTINCT RunResult::engine_fallback reason with its trial count — so a
/// silently-degraded sweep (3x slower than its spec implies) is obvious
/// from the report alone. Prints nothing for a cleanly packed (or fully
/// cache-served) batch. Called by run_sweep after every sweep.
void print_engine_summary(const BatchResult& batch);

/// Write rows to bench_out/<name>.csv (directory created on demand);
/// returns the path written, or an empty string on I/O failure (reported
/// to stderr; benches keep running — the console table is the artifact of
/// record).
std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows);

/// A ProgressFn that repaints one stderr status line per snapshot
/// ("\r[label] 128/512 cells (64 cached, 64 fresh)"), finishing with a
/// newline once every fresh cell is done. stderr so CSV/stdout pipelines
/// stay clean; suitable for `--progress` on any driver.
[[nodiscard]] ProgressFn stderr_progress(std::string label);

/// Run one sweep: plain Runner::run when `resume_dir` is empty, else
/// resumably through an analysis::ResultStore rooted at `resume_dir`
/// (opened per call — every call indexes all previously persisted cells,
/// so one directory serves all of a driver's sweeps). Prints the
/// cached/run split when resuming. Results are bit-identical either way.
/// `progress` is forwarded to the runner (see stderr_progress).
[[nodiscard]] BatchResult run_sweep(const Runner& runner,
                                    const std::vector<Scenario>& scenarios,
                                    std::size_t trials,
                                    std::uint64_t base_seed,
                                    const std::string& resume_dir,
                                    const ProgressFn& progress = {});
[[nodiscard]] BatchResult run_sweep(const Runner& runner,
                                    const SweepSpec& spec, std::size_t trials,
                                    std::uint64_t base_seed,
                                    const std::string& resume_dir,
                                    const ProgressFn& progress = {});

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_REPORT_HPP
