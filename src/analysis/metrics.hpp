// Utilities for turning recorded trajectories into the quantities the
// paper's lemmas talk about: population proportions p(i, r), the
// population gap epsilon(i, j, r) (Definition 1), per-block population
// change Y_r, and the number of competing nests per round.
#ifndef HH_ANALYSIS_METRICS_HPP
#define HH_ANALYSIS_METRICS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/simulation.hpp"
#include "util/ascii_plot.hpp"

namespace hh::analysis {

/// Population counts of one nest over time, extracted from trajectories.
[[nodiscard]] std::vector<double> count_series(const core::Trajectories& t,
                                               env::NestId nest,
                                               bool committed = false);

/// p(i, r) = c(i, r)/n for one nest over time.
[[nodiscard]] std::vector<double> proportion_series(const core::Trajectories& t,
                                                    env::NestId nest,
                                                    std::uint32_t num_ants,
                                                    bool committed = false);

/// epsilon(i, j, r) = p_H/p_L - 1 (Definition 1) per round; rounds where
/// the smaller nest is empty yield +infinity and are reported as `cap`.
[[nodiscard]] std::vector<double> gap_series(const core::Trajectories& t,
                                             env::NestId i, env::NestId j,
                                             double cap = 1e9);

/// Number of nests with a positive committed population, per round — the
/// k_r of Theorem 4.3's proof.
[[nodiscard]] std::vector<double> competing_nests_series(
    const core::Trajectories& t);

/// First round (1-based) at which the committed population of `nest`
/// reaches zero and stays zero; 0 if it never dies.
[[nodiscard]] std::uint32_t extinction_round(const core::Trajectories& t,
                                             env::NestId nest);

/// Convert a per-round series into an ascii_plot Series against round
/// numbers 1..size.
[[nodiscard]] util::Series to_series(const std::vector<double>& values,
                                     std::string name, char marker = '*');

/// Fine-grained emigration duration (Section 6: "Distinguishing between
/// direct transport and tandem runs may also be interesting, paired with
/// a more fine-grained runtime analysis").
///
/// The model charges one round per action, but in nature a tandem run is
/// ~3x slower than a direct transport (Section 2, citing [21]). Under a
/// synchronous-barrier reading — a round lasts as long as its slowest
/// action — a round containing at least one tandem run costs
/// `tandem_cost` time units and any other round costs `transport_cost`.
/// Requires trajectories (record_trajectories = true); only the rounds up
/// to the decision round are charged.
[[nodiscard]] double weighted_duration(const core::RunResult& result,
                                       double tandem_cost = 3.0,
                                       double transport_cost = 1.0);

/// Distribution summary of per-ant first-passage times (lattice backend
/// workloads; RunResult::first_passage). Times are 1-based rounds; 0
/// means the ant never reached the target and is excluded from the
/// order statistics.
struct FirstPassageSummary {
  std::uint32_t reached = 0;    ///< ants with a recorded passage time
  std::uint32_t unreached = 0;  ///< ants still searching at the horizon
  std::uint32_t min = 0;        ///< fastest passage (0 if none reached)
  std::uint32_t max = 0;        ///< slowest recorded passage
  double mean = 0.0;            ///< mean over reached ants only
  double median = 0.0;          ///< median over reached ants (midpoint
                                ///< average for even counts)
};

/// Summarize RunResult::first_passage. An all-zero span (or an empty
/// one) yields reached = 0 and zeroed statistics.
[[nodiscard]] FirstPassageSummary first_passage_summary(
    std::span<const std::uint32_t> first_passage);

}  // namespace hh::analysis

#endif  // HH_ANALYSIS_METRICS_HPP
