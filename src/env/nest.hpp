// Basic identifiers and nest descriptions for the house-hunting model
// (paper Section 2): a home nest n0 and k candidate nests n1..nk, each
// with a quality q(i). The paper's primary setting is binary quality
// Q = {0,1}; the Section 6 extension allows real-valued qualities in [0,1].
#ifndef HH_ENV_NEST_HPP
#define HH_ENV_NEST_HPP

#include <cstdint>

namespace hh::env {

/// Index of an ant within the colony, 0..n-1.
using AntId = std::uint32_t;

/// Index of a nest: 0 is the home nest n0, 1..k are candidate nests.
using NestId = std::uint32_t;

/// The home nest n0 — where the colony starts and where recruitment happens.
inline constexpr NestId kHomeNest = 0;

/// A candidate nest with its (true) quality.
struct Nest {
  NestId id = 0;
  double quality = 0.0;  ///< in [0,1]; 1 = suitable, 0 = unsuitable

  /// Paper's binary notion of a suitable nest (quality exactly 1 when
  /// Q = {0,1}; for real-valued qualities any positive value is habitable).
  [[nodiscard]] bool good() const { return quality > 0.0; }
};

}  // namespace hh::env

#endif  // HH_ENV_NEST_HPP
