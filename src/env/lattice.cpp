#include "env/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace hh::env {

namespace {

/// width*height validated in 64 bits — a wrapped uint32 product would
/// silently shrink the world and let the nest/target range checks pass
/// against the wrong site count.
std::uint32_t checked_num_sites(const LatticeConfig& cfg) {
  const auto sites =
      static_cast<std::uint64_t>(cfg.width) * static_cast<std::uint64_t>(cfg.height);
  HH_EXPECTS(sites <= std::numeric_limits<std::uint32_t>::max());
  return static_cast<std::uint32_t>(sites);
}

}  // namespace

std::uint32_t lattice_target_site(const LatticeConfig& cfg) {
  if (cfg.target_site != kLatticeAutoTarget) return cfg.target_site;
  // Guard before the modulo: this runs in the backend's member
  // initializer list, ahead of the constructor-body validation.
  HH_EXPECTS(cfg.width >= 1 && cfg.height >= 1);
  const std::uint32_t x = cfg.nest_site % cfg.width;
  const std::uint32_t y = cfg.nest_site / cfg.width;
  const std::uint32_t tx = (x + cfg.width / 2) % cfg.width;
  const std::uint32_t ty = (y + cfg.height / 2) % cfg.height;
  return ty * cfg.width + tx;
}

LatticeBackend::LatticeBackend(std::uint32_t num_ants,
                               const LatticeConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      num_ants_(num_ants),
      width_(cfg.width),
      height_(cfg.height),
      num_sites_(checked_num_sites(cfg)),
      nest_(cfg.nest_site),
      target_(lattice_target_site(cfg)),
      rng_(seed) {
  HH_EXPECTS(num_ants >= 1);
  // Even extents keep the vertical edge an involution across the wrap
  // (moving V from (x, y) and V again returns to (x, y)); odd ones would
  // break the 3-regular honeycomb structure at the seam.
  HH_EXPECTS(width_ >= 2 && width_ % 2 == 0);
  HH_EXPECTS(height_ >= 2 && height_ % 2 == 0);
  HH_EXPECTS(nest_ < num_sites_);
  HH_EXPECTS(target_ < num_sites_);
  HH_EXPECTS(nest_ != target_);  // a zero-length walk is a config error
  HH_EXPECTS(cfg.persist_fast >= 0.0 && cfg.persist_fast <= 1.0);
  HH_EXPECTS(cfg.persist_slow >= 0.0 && cfg.persist_slow <= 1.0);
  HH_EXPECTS(cfg.fast_fraction >= 0.0 && cfg.fast_fraction <= 1.0);
  loc_.assign(num_ants_, nest_);
  back_dir_.assign(num_ants_, kNoDir);
  first_passage_.assign(num_ants_, 0);
  kind_.assign(num_ants_, static_cast<std::uint8_t>(ActionKind::kIdle));
  counts_.assign(num_sites_, 0);
  counts_[nest_] = num_ants_;
  outcomes_.resize(num_ants_);
  // Motility lanes by index — no draws, so the syndrome split never
  // shifts the walk RNG stream.
  const auto fast = std::min<std::uint32_t>(
      num_ants_, static_cast<std::uint32_t>(
                     std::lround(cfg.fast_fraction *
                                 static_cast<double>(num_ants_))));
  persist_.resize(num_ants_);
  for (AntId a = 0; a < num_ants_; ++a) {
    persist_[a] = a < fast ? cfg.persist_fast : cfg.persist_slow;
  }
}

void LatticeBackend::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  round_ = 0;
  reached_count_ = 0;
  stats_ = RoundStats{};
  std::fill(loc_.begin(), loc_.end(), nest_);
  std::fill(back_dir_.begin(), back_dir_.end(), kNoDir);
  std::fill(first_passage_.begin(), first_passage_.end(), 0u);
  std::fill(kind_.begin(), kind_.end(),
            static_cast<std::uint8_t>(ActionKind::kIdle));
  std::fill(counts_.begin(), counts_.end(), 0u);
  counts_[nest_] = num_ants_;
  // persist_ is a pure function of the config — identical after reset.
}

std::uint32_t LatticeBackend::neighbor(std::uint32_t site,
                                       std::uint8_t dir) const {
  const std::uint32_t x = site % width_;
  const std::uint32_t y = site / width_;
  switch (dir) {
    case kEast:
      return y * width_ + (x + 1 == width_ ? 0 : x + 1);
    case kWest:
      return y * width_ + (x == 0 ? width_ - 1 : x - 1);
    default: {
      HH_ASSERT(dir == kVertical);
      const bool up = ((x + y) & 1u) == 0;
      const std::uint32_t ny = up ? (y + 1 == height_ ? 0 : y + 1)
                                  : (y == 0 ? height_ - 1 : y - 1);
      return ny * width_ + x;
    }
  }
}

void LatticeBackend::walk(AntId a) {
  const std::uint8_t back = back_dir_[a];
  std::uint8_t dir;
  if (back != kNoDir && rng_.bernoulli(persist_[a])) {
    // Persist: uniform over the two non-backward edges.
    const auto d = static_cast<std::uint8_t>(rng_.uniform_u64(2));
    dir = d >= back ? static_cast<std::uint8_t>(d + 1) : d;
  } else {
    // First step, or the persistence coin came up tails: uniform over all
    // three edges (backtracking allowed).
    dir = static_cast<std::uint8_t>(rng_.uniform_u64(3));
  }
  loc_[a] = neighbor(loc_[a], dir);
  // The edge just walked, as seen from the new site: E and W reverse each
  // other; the vertical edge is its own reverse.
  back_dir_[a] = dir == kEast ? kWest : (dir == kWest ? kEast : kVertical);
}

template <bool kLoud, typename ActionAt>
void LatticeBackend::run_round(const ActionAt& action_at) {
  stats_ = RoundStats{};
  const std::uint32_t r = round_ + 1;
  for (AntId a = 0; a < num_ants_; ++a) {
    const Action action = action_at(a);
    kind_[a] = static_cast<std::uint8_t>(action.kind);
    switch (action.kind) {
      case ActionKind::kSearch:
        ++stats_.searches;
        walk(a);
        break;
      case ActionKind::kGo:
        // Directed relocation (a kernel that knows where it is going);
        // consumes no randomness and clears the walk heading.
        ++stats_.gos;
        HH_EXPECTS(action.target < num_sites_);
        loc_[a] = action.target;
        back_dir_[a] = kNoDir;
        break;
      case ActionKind::kIdle:
        ++stats_.idles;
        break;
      case ActionKind::kRecruit:
        throw ContractViolation(
            "recruit() on the lattice backend: this world has no "
            "recruitment process");
    }
    if (loc_[a] == target_ && first_passage_[a] == 0) {
      first_passage_[a] = r;
      ++reached_count_;
    }
  }
  std::fill(counts_.begin(), counts_.end(), 0u);
  for (AntId a = 0; a < num_ants_; ++a) ++counts_[loc_[a]];
  round_ = r;
  if constexpr (kLoud) {
    for (AntId a = 0; a < num_ants_; ++a) {
      Outcome& out = outcomes_[a];
      out.kind = static_cast<ActionKind>(kind_[a]);
      out.nest = loc_[a];
      out.quality = loc_[a] == target_ ? 1.0 : 0.0;
      out.count = counts_[loc_[a]];
      out.recruited = false;
      out.recruit_succeeded = false;
    }
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& LatticeBackend::step(
    std::span<const Action> actions) {
  HH_EXPECTS(actions.size() == num_ants_);
  run_round<true>([&](AntId a) { return actions[a]; });
  return outcomes_;
}

namespace {

/// Adapter translating masked op/target lanes into per-row Actions for
/// the shared round core (recruit rows surface as Action recruits, which
/// the core rejects with the same ContractViolation the generic path
/// throws).
struct MaskedLatticeRows {
  std::span<const MaskedOp> op;
  std::span<const NestId> targets;
  Action operator()(AntId a) const {
    switch (op[a]) {
      case MaskedOp::kIdle:
        return Action::idle();
      case MaskedOp::kGo:
        return Action::go(targets[a]);
      case MaskedOp::kSearch:
        return Action::search();
      case MaskedOp::kRecruit:
        break;
    }
    return Action::recruit(false, kHomeNest);
  }
};

}  // namespace

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& LatticeBackend::step_masked_go(
    std::span<const MaskedOp> op, std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == num_ants_ && targets.size() == num_ants_);
  run_round<true>(MaskedLatticeRows{op, targets});
  return outcomes_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void LatticeBackend::step_masked_go_quiet(std::span<const MaskedOp> op,
                                          std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == num_ants_ && targets.size() == num_ants_);
  run_round<false>(MaskedLatticeRows{op, targets});
}

}  // namespace hh::env
