#include "env/observation.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace hh::env {

NoisyObservation::NoisyObservation(double count_sigma, double quality_flip_prob,
                                   double quality_sigma)
    : count_sigma_(count_sigma),
      quality_flip_prob_(quality_flip_prob),
      quality_sigma_(quality_sigma) {
  HH_EXPECTS(count_sigma >= 0.0);
  HH_EXPECTS(quality_flip_prob >= 0.0 && quality_flip_prob <= 1.0);
  HH_EXPECTS(quality_sigma >= 0.0);
}

std::uint32_t NoisyObservation::perceive_count(std::uint32_t true_count,
                                               util::Rng& rng) const {
  if (count_sigma_ == 0.0 || true_count == 0) return true_count;
  const double factor = 1.0 + count_sigma_ * (2.0 * rng.uniform_double() - 1.0);
  const double noisy = std::max(0.0, std::round(true_count * factor));
  return static_cast<std::uint32_t>(noisy);
}

double NoisyObservation::perceive_quality(double true_quality,
                                          util::Rng& rng) const {
  double q = true_quality;
  // Binary misperception: applies to the paper's Q = {0,1} setting.
  if (quality_flip_prob_ > 0.0 && rng.bernoulli(quality_flip_prob_)) {
    q = (q > 0.5) ? 0.0 : 1.0;
  }
  if (quality_sigma_ > 0.0) {
    q += quality_sigma_ * (2.0 * rng.uniform_double() - 1.0);
  }
  return std::clamp(q, 0.0, 1.0);
}

std::unique_ptr<ObservationModel> make_observation_model(const NoiseConfig& cfg) {
  if (!cfg.any()) return std::make_unique<ExactObservation>();
  return std::make_unique<NoisyObservation>(cfg.count_sigma, cfg.quality_flip_prob,
                                            cfg.quality_sigma);
}

}  // namespace hh::env
