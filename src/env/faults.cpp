#include "env/faults.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hh::env {

FaultPlan FaultPlan::none(std::uint32_t num_ants) {
  FaultPlan plan;
  plan.type.assign(num_ants, FaultType::kNone);
  plan.crash_round.assign(num_ants, 0);
  return plan;
}

FaultPlan FaultPlan::sample(std::uint32_t num_ants, const FaultConfig& cfg,
                            std::uint64_t seed) {
  HH_EXPECTS(cfg.crash_fraction >= 0.0 && cfg.crash_fraction <= 1.0);
  HH_EXPECTS(cfg.byzantine_fraction >= 0.0 && cfg.byzantine_fraction <= 1.0);
  HH_EXPECTS(cfg.crash_fraction + cfg.byzantine_fraction <= 1.0);
  HH_EXPECTS(cfg.crash_horizon >= 1);

  FaultPlan plan = none(num_ants);
  util::Rng rng(seed);
  const auto crashes =
      static_cast<std::uint32_t>(cfg.crash_fraction * num_ants);
  const auto byzantines =
      static_cast<std::uint32_t>(cfg.byzantine_fraction * num_ants);

  // Choose disjoint victim sets via a random permutation prefix.
  std::vector<std::uint32_t> perm = util::random_permutation(num_ants, rng);
  for (std::uint32_t i = 0; i < crashes; ++i) {
    const AntId a = perm[i];
    plan.type[a] = FaultType::kCrash;
    plan.crash_round[a] =
        static_cast<std::uint32_t>(1 + rng.uniform_u64(cfg.crash_horizon));
  }
  for (std::uint32_t i = crashes; i < crashes + byzantines; ++i) {
    plan.type[perm[i]] = FaultType::kByzantine;
  }
  return plan;
}

std::uint32_t FaultPlan::correct_count() const {
  std::uint32_t n = 0;
  for (FaultType t : type) n += (t == FaultType::kNone) ? 1u : 0u;
  return n;
}

}  // namespace hh::env
