#include "env/environment.hpp"

#include <algorithm>
#include <string>

#include "util/contracts.hpp"

namespace hh::env {

namespace {
// Domain-separation tag for the pairing-stream key: keeps the counter
// streams independent of every draw the shared rng_ makes from the same
// config seed. Mirrors the engine-layer seed tags in core/simulation.cpp.
constexpr std::uint64_t kPairingSeedTag = 0x9A1217;
}

HomeNestBackend::HomeNestBackend(EnvironmentConfig cfg,
                         std::unique_ptr<PairingModel> pairing,
                         std::unique_ptr<ObservationModel> observation)
    : cfg_(std::move(cfg)),
      pairing_(pairing ? std::move(pairing)
                       : std::make_unique<PermutationPairing>()),
      observation_(observation ? std::move(observation)
                               : std::make_unique<ExactObservation>()),
      observe_exact_(observation_->exact()),
      counter_pairing_(pairing_->counter_keyed()),
      rng_(cfg_.seed),
      pairing_seed_(util::mix_seed(cfg_.seed, kPairingSeedTag)) {
  HH_EXPECTS(cfg_.num_ants >= 1);
  HH_EXPECTS(!cfg_.qualities.empty());
  for (double q : cfg_.qualities) HH_EXPECTS(q >= 0.0 && q <= 1.0);

  location_.assign(cfg_.num_ants, kHomeNest);  // all ants start at home
  count_.assign(num_nests() + 1, 0);
  count_[kHomeNest] = cfg_.num_ants;
  knowledge_.assign(static_cast<std::size_t>(cfg_.num_ants) * (num_nests() + 1),
                    0);
  outcomes_.resize(cfg_.num_ants);
  // Every per-round buffer is sized for the worst case up front so that
  // step() never allocates (see the invariant in the header).
  requests_.reserve(cfg_.num_ants);
  request_index_.assign(cfg_.num_ants, kNoRequest);
  pairing_scratch_.reserve(cfg_.num_ants);
  success_ants_.reserve(cfg_.num_ants);
  recruit_result_.assign(cfg_.num_ants, kHomeNest);
}

void HomeNestBackend::reset(std::uint64_t seed) {
  // Mirror of the constructor's initial state, minus the allocations: the
  // equivalence tests (tests/test_resume.cpp) pin reset-and-rerun to a
  // fresh construction bit for bit.
  cfg_.seed = seed;
  rng_.reseed(seed);
  pairing_seed_ = util::mix_seed(seed, kPairingSeedTag);
  round_ = 0;
  all_at_home_ = false;
  std::fill(location_.begin(), location_.end(), kHomeNest);
  std::fill(count_.begin(), count_.end(), 0u);
  count_[kHomeNest] = cfg_.num_ants;
  std::fill(knowledge_.begin(), knowledge_.end(), std::uint8_t{0});
  requests_.clear();
  std::fill(request_index_.begin(), request_index_.end(), kNoRequest);
  requests_ant_indexed_ = false;
  pairing_current_ = false;
  success_ants_.clear();
  std::fill(recruit_result_.begin(), recruit_result_.end(), kHomeNest);
  stats_ = RoundStats{};
}

NestId HomeNestBackend::location(AntId a) const {
  HH_EXPECTS(a < cfg_.num_ants);
  return all_at_home_ ? kHomeNest : location_[a];
}

std::uint32_t HomeNestBackend::count(NestId i) const {
  HH_EXPECTS(i <= num_nests());
  return count_[i];
}

double HomeNestBackend::quality(NestId i) const {
  HH_EXPECTS(i >= 1 && i <= num_nests());
  return cfg_.qualities[i - 1];
}

bool HomeNestBackend::knows(AntId a, NestId i) const {
  HH_EXPECTS(a < cfg_.num_ants);
  HH_EXPECTS(i <= num_nests());
  return knowledge_[static_cast<std::size_t>(a) * (num_nests() + 1) + i] != 0;
}

void HomeNestBackend::grant_knowledge(AntId a, NestId i) {
  knowledge_[static_cast<std::size_t>(a) * (num_nests() + 1) + i] = 1;
}

void HomeNestBackend::validate(AntId a, const Action& action) const {
  const auto fail = [&](const std::string& why) {
    throw ModelViolation("ant " + std::to_string(a) + ", round " +
                         std::to_string(round_ + 1) + ": " + why);
  };
  switch (action.kind) {
    case ActionKind::kSearch:
      break;  // always legal
    case ActionKind::kGo:
      if (action.target < 1 || action.target > num_nests()) {
        fail("go() target " + std::to_string(action.target) +
             " is not a candidate nest");
      }
      // Knowledge interpretation of the paper's precondition (DESIGN.md §2):
      // the ant must have visited the nest or been recruited to it.
      if (!knows(a, action.target)) {
        fail("go(" + std::to_string(action.target) + ") without knowledge");
      }
      break;
    case ActionKind::kRecruit:
      if (action.active) {
        // recruit(1, i): the advertised nest must be a known candidate.
        if (action.target < 1 || action.target > num_nests()) {
          fail("recruit(1, " + std::to_string(action.target) +
               ") must advertise a candidate nest");
        }
        if (!knows(a, action.target)) {
          fail("recruit(1, " + std::to_string(action.target) +
               ") without knowledge");
        }
      } else {
        // recruit(0, i): i may be the home nest (an ant that knows no
        // candidate waits to be recruited) or a known candidate.
        if (action.target > num_nests()) {
          fail("recruit(0, " + std::to_string(action.target) +
               ") target out of range");
        }
        if (action.target != kHomeNest && !knows(a, action.target)) {
          fail("recruit(0, " + std::to_string(action.target) +
               ") without knowledge");
        }
      }
      break;
    case ActionKind::kIdle:
      if (!cfg_.allow_idle) {
        fail("idle is not part of the model (enable allow_idle for the "
             "fault/asynchrony extensions)");
      }
      break;
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
template <bool kLoud, typename ActionAt>
void HomeNestBackend::round_phase1(const ActionAt& action_at) {
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  requests_.clear();
  requests_ant_indexed_ = false;
  pairing_current_ = true;  // every step_rows round runs the pairing
  if (all_at_home_) {
    // Materialize the lazy locations of a preceding step_all_recruit()
    // round: the kIdle branch below reads location_ in place.
    std::fill(location_.begin(), location_.end(), kHomeNest);
    all_at_home_ = false;
  }

  // Validate and apply all location updates simultaneously.
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    const Action action = action_at(a);
    if (cfg_.enforce_model) validate(a, action);
    request_index_[a] = kNoRequest;
    switch (action.kind) {
      case ActionKind::kSearch: {
        // search(): i chosen uniformly at random from {1..k}.
        const auto found = static_cast<NestId>(1 + rng_.uniform_u64(k));
        location_[a] = found;
        grant_knowledge(a, found);
        if constexpr (kLoud) {
          outcomes_[a] =
              Outcome{ActionKind::kSearch, found, 0.0, 0, false, false};
        }
        ++stats_.searches;
        break;
      }
      case ActionKind::kGo:
        location_[a] = action.target;
        if constexpr (kLoud) {
          outcomes_[a] =
              Outcome{ActionKind::kGo, action.target, 0.0, 0, false, false};
        }
        ++stats_.gos;
        break;
      case ActionKind::kRecruit:
        location_[a] = kHomeNest;  // recruitment happens at the home nest
        request_index_[a] = static_cast<std::uint32_t>(requests_.size());
        requests_.push_back(RecruitRequest{a, action.active, action.target});  // lint: capacity-reserved
        if constexpr (kLoud) {
          outcomes_[a] = Outcome{ActionKind::kRecruit, action.target, 0.0, 0,
                                 false, false};
        }
        if (action.active) {
          ++stats_.active_recruits;
        } else {
          ++stats_.passive_recruits;
        }
        break;
      case ActionKind::kIdle:
        if constexpr (kLoud) {
          outcomes_[a] =
              Outcome{ActionKind::kIdle, location_[a], 0.0, 0, false, false};
        }
        ++stats_.idles;
        break;
    }
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
template <typename ActionAt>
const std::vector<Outcome>& HomeNestBackend::step_rows(const ActionAt& action_at) {
  const std::uint32_t k = num_nests();
  // Phase 1 (shared with the quiet form).
  round_phase1<true>(action_at);

  // Phase 2: the centralized pairing process (Algorithm 1 by default),
  // writing into the environment-owned scratch buffers. The ctx keys
  // counter-based models on (pairing_seed_, executing round); sequential
  // models read only the rng.
  pairing_->pair_into(requests_, PairingCtx{rng_, pairing_seed_, round_ + 1},
                      pairing_scratch_);
  HH_ENSURES(pairing_scratch_.recruited_by.size() == requests_.size());
  HH_ENSURES(pairing_scratch_.recruit_succeeded.size() == requests_.size());

  // Phase 3: end-of-round counts c(i, r).
  count_.assign(k + 1, 0);
  for (AntId a = 0; a < cfg_.num_ants; ++a) ++count_[location_[a]];

  // Phase 4: deliver return values and update knowledge. The exact
  // observation model is the identity and draws no randomness, so the hot
  // path skips its virtual calls entirely (observe_exact_).
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    Outcome& out = outcomes_[a];
    switch (out.kind) {
      case ActionKind::kSearch: {
        // (Knowledge of the found nest was granted in phase 1.)
        const double q = quality(out.nest);
        out.quality =
            observe_exact_ ? q : observation_->perceive_quality(q, rng_);
        out.count = observe_exact_
                        ? count_[out.nest]
                        : observation_->perceive_count(count_[out.nest], rng_);
        break;
      }
      case ActionKind::kGo: {
        out.count = observe_exact_
                        ? count_[out.nest]
                        : observation_->perceive_count(count_[out.nest], rng_);
        // Extension beyond the paper's go() signature: a visiting ant can
        // re-assess the nest it is standing in. The paper's algorithms
        // ignore this field; the Section 6 quality-aware variant uses it.
        const double q = quality(out.nest);
        out.quality =
            observe_exact_ ? q : observation_->perceive_quality(q, rng_);
        break;
      }
      case ActionKind::kRecruit: {
        const std::uint32_t idx = request_index_[a];
        const std::int32_t recruiter = pairing_scratch_.recruited_by[idx];
        if (recruiter != kNotRecruited) {
          // Return value j is the recruiter's advertised nest (Algorithm 1
          // lines 8-10); the ant learns that nest's location (tandem run).
          out.nest = requests_[static_cast<std::size_t>(recruiter)].target;
          out.recruited = true;
          ++stats_.successful_recruitments;
          if (requests_[static_cast<std::size_t>(recruiter)].ant == a) {
            ++stats_.self_recruitments;
          }
          // requests_[idx].target is the ant's own advertised nest.
          if (out.nest != requests_[idx].target) {
            ++stats_.cross_nest_recruitments;
          }
          if (out.nest != kHomeNest) grant_knowledge(a, out.nest);
        }
        out.recruit_succeeded = pairing_scratch_.recruit_succeeded[idx] != 0;
        out.count = observe_exact_
                        ? count_[kHomeNest]
                        : observation_->perceive_count(count_[kHomeNest], rng_);
        break;
      }
      case ActionKind::kIdle:
        break;
    }
  }

  ++round_;
  return outcomes_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
template <typename ActionAt>
void HomeNestBackend::step_rows_quiet(const ActionAt& action_at) {
  // The Outcome-free core: the SAME phase-1/pairing/count bookkeeping and
  // RNG draws as step_rows (exact observation draws nothing in phase 4),
  // but the per-ant return values are never materialized — callers read
  // last_pairing()/recruited_by_ant()/counts()/location() directly.
  HH_EXPECTS(observe_exact_);
  const std::uint32_t k = num_nests();
  round_phase1<false>(action_at);

  pairing_->pair_into(requests_, PairingCtx{rng_, pairing_seed_, round_ + 1},
                      pairing_scratch_);
  HH_ENSURES(pairing_scratch_.recruited_by.size() == requests_.size());

  count_.assign(k + 1, 0);
  for (AntId a = 0; a < cfg_.num_ants; ++a) ++count_[location_[a]];

  // Matching bookkeeping (stats + tandem-run knowledge), indexed by
  // request position x (request x's caller is requests_[x].ant). The same
  // walk fills the ant-indexed recruit() return values and the successful-
  // recruiter list the quiet observers read back.
  success_ants_.clear();
  for (std::size_t x = 0; x < requests_.size(); ++x) {
    const std::int32_t recruiter = pairing_scratch_.recruited_by[x];
    if (recruiter == kNotRecruited) {
      recruit_result_[requests_[x].ant] = requests_[x].target;
      continue;
    }
    const RecruitRequest& from = requests_[static_cast<std::size_t>(recruiter)];
    recruit_result_[requests_[x].ant] = from.target;
    success_ants_.push_back(from.ant);  // lint: capacity-reserved
    ++stats_.successful_recruitments;
    if (from.ant == requests_[x].ant) ++stats_.self_recruitments;
    if (from.target != requests_[x].target) ++stats_.cross_nest_recruitments;
    if (from.target != kHomeNest) grant_knowledge(requests_[x].ant, from.target);
  }

  ++round_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step(std::span<const Action> actions) {
  HH_EXPECTS(actions.size() == cfg_.num_ants);
  return step_rows([&](AntId a) { return actions[a]; });
}

namespace {

/// Adapter: the masked SoA lanes as an Action-yielding row accessor.
struct MaskedRows {
  std::span<const MaskedOp> op;
  std::span<const std::uint8_t> active;
  std::span<const NestId> targets;

  Action operator()(AntId a) const {
    switch (op[a]) {
      case MaskedOp::kGo: return Action::go(targets[a]);
      case MaskedOp::kRecruit: return Action::recruit(active[a] != 0, targets[a]);
      case MaskedOp::kSearch: return Action::search();
      case MaskedOp::kIdle: break;
    }
    return Action::idle();
  }
};

}  // namespace

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step_masked_recruit(
    std::span<const MaskedOp> op, std::span<const std::uint8_t> active,
    std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == cfg_.num_ants);
  HH_EXPECTS(active.size() == cfg_.num_ants);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  return step_rows(MaskedRows{op, active, targets});
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void HomeNestBackend::step_masked_recruit_quiet(
    std::span<const MaskedOp> op, std::span<const std::uint8_t> active,
    std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == cfg_.num_ants);
  HH_EXPECTS(active.size() == cfg_.num_ants);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  if (counter_pairing_) {
    step_masked_recruit_fused(op, active, targets);
    return;
  }
  step_rows_quiet(MaskedRows{op, active, targets});
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void HomeNestBackend::step_masked_recruit_fused(
    std::span<const MaskedOp> op, std::span<const std::uint8_t> active,
    std::span<const NestId> targets) {
  // The counter-keyed fast round, observably identical to
  // step_rows_quiet(MaskedRows{...}) — same RNG consumption, locations,
  // counts, knowledge, stats, matching, and ant-indexed views — but in
  // two passes instead of four. Legality of the reordering:
  //   * the only shared-stream draws in a masked-recruit round are the
  //     search landings, made below in ant order exactly as
  //     round_phase1 makes them;
  //   * a counter_keyed() model's KEYED pair_active (round != 0, always
  //     the case here) draws nothing from the shared stream, so running
  //     the census before the pairing instead of after it is invisible;
  //   * the lottery is keyed on dense request ranks, and the
  //     classification pass below assigns ranks in ant order — the same
  //     ranks requests_.push_back() assigns on the generic path.
  HH_EXPECTS(observe_exact_);
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  requests_ant_indexed_ = false;
  pairing_current_ = true;
  if (all_at_home_) {
    // Materialize the lazy locations of a preceding step_all_recruit()
    // round: the kIdle branch below reads location_ in place.
    std::fill(location_.begin(), location_.end(), kHomeNest);
    all_at_home_ = false;
  }

  // Pass 1 — phase 1 + census fused: classification, location updates,
  // search draws, request packing (AoS row + the dense active-flag lane
  // the lottery reads), stats, AND the count scatter, one ant-order
  // sweep. The generic path's separate census reads location_ back after
  // phase 1; here each ant's end-of-round location is still in register.
  //
  // The go/recruit pair — the whole colony from round 2 on — is handled
  // branch-free: the op mix is irregular at steady state (each ant's
  // R1-R4 block position differs), so a per-ant switch mispredicts
  // roughly every other ant. Instead every go/recruit ant does the same
  // unconditional work with conditional-move selects, including a
  // request-row store whose cursor only advances for recruiters (a go
  // ant's row is overwritten by the next recruiter; the tail is cut off
  // by the resize below). Searches and idles — round-1 colonies, fault
  // lanes — take the cold branch, perfectly predicted when absent.
  count_.assign(k + 1, 0);
  const AntId n = cfg_.num_ants;
  auto& flags = pairing_scratch_.active;
  requests_.resize(n);  // lint: capacity-reserved
  flags.resize(n);  // lint: capacity-reserved
  RecruitRequest* const req_rows = requests_.data();
  std::uint8_t* const flag_rows = flags.data();
  std::uint32_t mreq = 0;
  std::uint32_t n_go = 0;
  std::uint32_t n_rec_active = 0;
  for (AntId a = 0; a < n; ++a) {
    const MaskedOp o = op[a];
    if (o == MaskedOp::kGo || o == MaskedOp::kRecruit) [[likely]] {
      const bool r = o == MaskedOp::kRecruit;
      if (cfg_.enforce_model) {
        validate(a, r ? Action::recruit(active[a] != 0, targets[a])
                      : Action::go(targets[a]));
      }
      const NestId tgt = targets[a];
      const std::uint8_t b = active[a] != 0 ? 1 : 0;
      const NestId loc = r ? kHomeNest : tgt;
      location_[a] = loc;
      ++count_[loc];
      request_index_[a] = r ? mreq : kNoRequest;
      req_rows[mreq] = RecruitRequest{a, b != 0, tgt};
      flag_rows[mreq] = b;
      mreq += r ? 1u : 0u;
      n_go += r ? 0u : 1u;
      n_rec_active += (r && b != 0) ? 1u : 0u;
    } else if (o == MaskedOp::kSearch) {
      // search(): i chosen uniformly at random from {1..k} — the same
      // draw, in the same ant order, as round_phase1.
      const auto found = static_cast<NestId>(1 + rng_.uniform_u64(k));
      request_index_[a] = kNoRequest;
      location_[a] = found;
      grant_knowledge(a, found);
      ++count_[found];
      ++stats_.searches;
    } else {  // MaskedOp::kIdle
      if (cfg_.enforce_model) validate(a, Action::idle());
      request_index_[a] = kNoRequest;
      ++count_[location_[a]];
      ++stats_.idles;
    }
  }
  requests_.resize(mreq);  // lint: capacity-reserved
  flags.resize(mreq);  // lint: capacity-reserved
  stats_.gos = n_go;
  stats_.active_recruits = n_rec_active;
  stats_.passive_recruits = mreq - n_rec_active;

  // Pass 2 — the keyed lottery over the dense ranks (flags aliases
  // scratch.active, the same buffer pair_into packs), then the matching
  // bookkeeping, identical to step_rows_quiet's.
  pairing_->pair_active(flags, PairingCtx{rng_, pairing_seed_, round_ + 1},
                        pairing_scratch_);
  HH_ENSURES(pairing_scratch_.recruited_by.size() == requests_.size());
  success_ants_.clear();
  for (std::size_t x = 0; x < requests_.size(); ++x) {
    const std::int32_t recruiter = pairing_scratch_.recruited_by[x];
    if (recruiter == kNotRecruited) {
      recruit_result_[requests_[x].ant] = requests_[x].target;
      continue;
    }
    const RecruitRequest& from = requests_[static_cast<std::size_t>(recruiter)];
    recruit_result_[requests_[x].ant] = from.target;
    success_ants_.push_back(from.ant);  // lint: capacity-reserved
    ++stats_.successful_recruitments;
    if (from.ant == requests_[x].ant) ++stats_.self_recruitments;
    if (from.target != requests_[x].target) ++stats_.cross_nest_recruitments;
    if (from.target != kHomeNest) grant_knowledge(requests_[x].ant, from.target);
  }

  ++round_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step_masked_go(
    std::span<const MaskedOp> op, std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == cfg_.num_ants);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  // No recruiters: the request list stays empty and pair_active() on an
  // empty span draws nothing, so sharing step_rows keeps this
  // RNG-equivalent to step() with the same (recruit-free) action vector.
  return step_rows([&](AntId a) {
    HH_ASSERT(op[a] != MaskedOp::kRecruit);
    return MaskedRows{op, {}, targets}(a);
  });
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void HomeNestBackend::step_masked_go_quiet(std::span<const MaskedOp> op,
                                       std::span<const NestId> targets) {
  HH_EXPECTS(op.size() == cfg_.num_ants);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  step_rows_quiet([&](AntId a) {
    HH_ASSERT(op[a] != MaskedOp::kRecruit);
    return MaskedRows{op, {}, targets}(a);
  });
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step_all_search() {
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  pairing_current_ = false;  // no pairing: this round's matching is empty
  stats_.searches = cfg_.num_ants;
  all_at_home_ = false;  // every location is written below
  // search() is always legal — nothing to validate.
  count_.assign(k + 1, 0);
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    // Identical draw to step()'s phase 1: i uniform from {1..k}, ant order.
    const auto found = static_cast<NestId>(1 + rng_.uniform_u64(k));
    location_[a] = found;
    ++count_[found];
    outcomes_[a] = Outcome{ActionKind::kSearch, found, 0.0, 0, false, false};
  }
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    Outcome& out = outcomes_[a];
    const double q = quality(out.nest);
    out.quality = observe_exact_ ? q : observation_->perceive_quality(q, rng_);
    out.count = observe_exact_
                    ? count_[out.nest]
                    : observation_->perceive_count(count_[out.nest], rng_);
    grant_knowledge(a, out.nest);
  }
  ++round_;
  return outcomes_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step_all_recruit(
    std::span<const RecruitRequest> requests) {
  HH_EXPECTS(requests.size() == cfg_.num_ants);
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  if (cfg_.enforce_model) {
    for (AntId a = 0; a < cfg_.num_ants; ++a) {
      HH_EXPECTS(requests[a].ant == a);
      validate(a, Action::recruit(requests[a].active, requests[a].target));
    }
  }
  // Phase 1 collapses: recruitment happens at the home nest, so every
  // location — and with it every count — is known without writing a thing
  // (locations materialize lazily through the all_at_home_ flag).
  all_at_home_ = true;
  requests_ant_indexed_ = true;
  pairing_current_ = true;
  pairing_->pair_into(requests, PairingCtx{rng_, pairing_seed_, round_ + 1},
                      pairing_scratch_);
  HH_ENSURES(pairing_scratch_.recruited_by.size() == requests.size());
  count_.assign(k + 1, 0);
  count_[kHomeNest] = cfg_.num_ants;
  // Phase 4, recruit-only: requests are indexed by ant (requests[a].ant ==
  // a), so the request_index_ indirection disappears too.
  const std::uint32_t home_count =
      observe_exact_ ? cfg_.num_ants : 0;  // noisy path perceives per ant
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    const RecruitRequest& req = requests[a];
    stats_.active_recruits += req.active ? 1u : 0u;
    Outcome& out = outcomes_[a];
    out = Outcome{ActionKind::kRecruit, req.target, 0.0, 0, false, false};
    const std::int32_t recruiter = pairing_scratch_.recruited_by[a];
    if (recruiter != kNotRecruited) {
      out.nest = requests[static_cast<std::size_t>(recruiter)].target;
      out.recruited = true;
      ++stats_.successful_recruitments;
      if (requests[static_cast<std::size_t>(recruiter)].ant == a) {
        ++stats_.self_recruitments;
      }
      if (out.nest != req.target) ++stats_.cross_nest_recruitments;
      if (out.nest != kHomeNest) grant_knowledge(a, out.nest);
    }
    out.recruit_succeeded = pairing_scratch_.recruit_succeeded[a] != 0;
    out.count = observe_exact_
                    ? home_count
                    : observation_->perceive_count(count_[kHomeNest], rng_);
  }
  stats_.passive_recruits = cfg_.num_ants - stats_.active_recruits;
  ++round_;
  return outcomes_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void HomeNestBackend::step_all_recruit_quiet(std::span<const std::uint8_t> active,
                                         std::span<const NestId> targets) {
  HH_EXPECTS(observe_exact_);
  HH_EXPECTS(active.size() == cfg_.num_ants);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  if (cfg_.enforce_model) {
    for (AntId a = 0; a < cfg_.num_ants; ++a) {
      validate(a, Action::recruit(active[a] != 0, targets[a]));
    }
  }
  all_at_home_ = true;
  requests_ant_indexed_ = true;
  pairing_current_ = true;
  for (const std::uint8_t b : active) stats_.active_recruits += b ? 1u : 0u;
  stats_.passive_recruits = cfg_.num_ants - stats_.active_recruits;
  pairing_->pair_active(active, PairingCtx{rng_, pairing_seed_, round_ + 1},
                        pairing_scratch_);
  HH_ENSURES(pairing_scratch_.recruited_by.size() == active.size());
  count_.assign(k + 1, 0);
  count_[kHomeNest] = cfg_.num_ants;
  // The phase-4 bookkeeping (stats, knowledge) without Outcome writes:
  // the exact model returns values the caller can read off last_pairing()
  // and counts() directly. Request x's caller is ant x, so the
  // self-recruitment test collapses to recruiter == a.
  success_ants_.clear();
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    const std::int32_t recruiter = pairing_scratch_.recruited_by[a];
    if (recruiter == kNotRecruited) {
      recruit_result_[a] = targets[a];
      continue;
    }
    const NestId j = targets[static_cast<std::size_t>(recruiter)];
    recruit_result_[a] = j;
    success_ants_.push_back(static_cast<AntId>(recruiter));  // lint: capacity-reserved
    ++stats_.successful_recruitments;
    if (static_cast<AntId>(recruiter) == a) ++stats_.self_recruitments;
    if (j != targets[a]) ++stats_.cross_nest_recruitments;
    if (j != kHomeNest) grant_knowledge(a, j);
  }
  ++round_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void HomeNestBackend::step_all_go_quiet(std::span<const NestId> targets) {
  HH_EXPECTS(observe_exact_);
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  pairing_current_ = false;  // no pairing: this round's matching is empty
  stats_.gos = cfg_.num_ants;
  all_at_home_ = false;  // every location is written below
  if (cfg_.enforce_model) {
    for (AntId a = 0; a < cfg_.num_ants; ++a) {
      validate(a, Action::go(targets[a]));
    }
  }
  count_.assign(k + 1, 0);
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    location_[a] = targets[a];
    ++count_[targets[a]];
  }
  // go() grants no knowledge and, exactly observed, returns only
  // counts()/qualities() — no per-ant work remains.
  ++round_;
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
const std::vector<Outcome>& HomeNestBackend::step_all_go(
    std::span<const NestId> targets) {
  HH_EXPECTS(targets.size() == cfg_.num_ants);
  const std::uint32_t k = num_nests();
  stats_ = RoundStats{};
  pairing_current_ = false;  // no pairing: this round's matching is empty
  stats_.gos = cfg_.num_ants;
  all_at_home_ = false;  // every location is written below
  if (cfg_.enforce_model) {
    for (AntId a = 0; a < cfg_.num_ants; ++a) {
      validate(a, Action::go(targets[a]));
    }
  }
  count_.assign(k + 1, 0);
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    location_[a] = targets[a];
    ++count_[targets[a]];
  }
  for (AntId a = 0; a < cfg_.num_ants; ++a) {
    const NestId nest = targets[a];
    // Same per-ant perception order as step()'s kGo branch: count first,
    // then the re-assessed quality (matters under noisy observation).
    const std::uint32_t count =
        observe_exact_ ? count_[nest]
                       : observation_->perceive_count(count_[nest], rng_);
    const double q = quality(nest);
    const double perceived_q =
        observe_exact_ ? q : observation_->perceive_quality(q, rng_);
    outcomes_[a] =
        Outcome{ActionKind::kGo, nest, perceived_q, count, false, false};
  }
  ++round_;
  return outcomes_;
}

}  // namespace hh::env
