// The environment-backend contract (DESIGN.md §9).
//
// A Backend is one simulated world: it owns the per-round state the paper
// calls the "environment" — ant locations, per-location population counts,
// whatever randomness the world's dynamics need — and resolves one
// synchronous round per step call. The decision-kernel layers above
// (core::Colony per-object ants, core::AntPack SoA kernels, the Simulation
// driver) speak only this contract, so the same kernels run against the
// paper's home-nest-plus-candidates world (HomeNestBackend) or a spatial
// world (LatticeBackend) without change.
//
// Contract obligations every backend must honor (the parametric
// conformance suite in tests/test_backend_contract.cpp pins each):
//
//   * zero-alloc rounds — no heap allocation in any step entry point
//     after construction; all round state is owned and reused;
//   * reset(seed) == fresh — a reset backend is indistinguishable from a
//     newly constructed one with that seed (the arena-reuse invariant,
//     DESIGN.md §4);
//   * masked/generic RNG equivalence — every masked SoA entry point the
//     backend supports makes identical draws in identical order to
//     step() with the corresponding Action vector.
//
// Identity rule: a backend is part of a scenario's identity. Scenarios on
// the default HomeNestBackend serialize exactly as before the seam was
// introduced (no fingerprint drift); any other backend adds an
// "env_backend" field (plus its own config block) to the identity JSON,
// so new worlds get new fingerprints instead of silently colliding with
// cached home-nest results.
#ifndef HH_ENV_BACKEND_HPP
#define HH_ENV_BACKEND_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "env/action.hpp"
#include "env/nest.hpp"

namespace hh::env {

/// The worlds a Simulation can run in. Values are stable identifiers —
/// they appear in spec files and scenario identity JSON by name.
enum class BackendKind : std::uint8_t {
  kHomeNest = 0,  ///< paper Section 2: home nest + k candidates + pairing
  kLattice,       ///< honeycomb lattice, persistent walkers (PAPERS.md)
};

/// Stable spec-file name of a backend kind ("home-nest", "lattice").
[[nodiscard]] const char* backend_name(BackendKind kind);

/// Inverse of backend_name; nullopt for unknown names.
[[nodiscard]] std::optional<BackendKind> backend_from_name(
    std::string_view name);

/// Aggregate statistics for the most recent round (for metrics collection;
/// none of this is observable by ants). Worlds without a recruitment
/// process leave the recruitment fields zero.
struct RoundStats {
  std::uint32_t searches = 0;
  std::uint32_t gos = 0;
  std::uint32_t active_recruits = 0;   ///< recruit(1, ·) calls
  std::uint32_t passive_recruits = 0;  ///< recruit(0, ·) calls
  std::uint32_t idles = 0;
  std::uint32_t successful_recruitments = 0;  ///< |M|
  std::uint32_t self_recruitments = 0;        ///< pairs (a, a)
  /// Recruited ants whose returned nest j differed from their input nest.
  std::uint32_t cross_nest_recruitments = 0;
};

/// Per-ant operation selector for the masked SoA entry points: one byte
/// per ant instead of an Action struct, chosen so mixed-phase rounds
/// (Algorithm 2's interleaved R1-R4 blocks, fault lanes, sleep lanes)
/// stay on the SoA hot path.
enum class MaskedOp : std::uint8_t {
  kIdle = 0,  ///< stay put (crashed or sleeping ant; allow_idle configs)
  kGo,        ///< go(targets[a])
  kRecruit,   ///< recruit(active[a] != 0, targets[a])
  kSearch,    ///< search() (round-1 ants, Byzantine scouts, walkers)
};

/// Abstract world. One instance = one execution (until reset).
class Backend {
 public:
  Backend() = default;
  // Backends are pinned in place: round state holds self-referential
  // scratch and strategy objects, so copies and moves are deleted for
  // every backend. Hold them in place (as Simulation does) or behind
  // unique_ptr when they must relocate.
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;
  Backend(Backend&&) = delete;
  Backend& operator=(Backend&&) = delete;
  virtual ~Backend();

  /// Which world this is.
  [[nodiscard]] virtual BackendKind kind() const = 0;
  /// Colony size n.
  [[nodiscard]] virtual std::uint32_t num_ants() const = 0;
  /// Number of distinct locations an ant can occupy: k+1 for the
  /// home-nest world (home plus candidates), width*height for a lattice.
  [[nodiscard]] virtual std::uint32_t num_locations() const = 0;
  /// Rounds completed so far (0 before the first step).
  [[nodiscard]] virtual std::uint32_t round() const = 0;
  /// Current location of ant a, as an index in [0, num_locations()).
  [[nodiscard]] virtual NestId location(AntId a) const = 0;
  /// Current population count per location (size num_locations()).
  [[nodiscard]] virtual std::span<const std::uint32_t> counts() const = 0;
  /// Aggregate statistics of the most recent round (metrics collection
  /// only; not observable by ants).
  [[nodiscard]] virtual const RoundStats& last_round_stats() const = 0;

  /// Execute one synchronous round from per-ant Actions — the generic
  /// reference path every masked entry point must be RNG-equivalent to.
  /// actions.size() must equal num_ants(); the returned span is valid
  /// until the next step. Zero-alloc after construction.
  virtual const std::vector<Outcome>& step(std::span<const Action> actions) = 0;

  /// One mixed round with NO recruiters (op values kGo/kSearch/kIdle
  /// only); targets is read only at kGo positions. Zero-alloc.
  virtual const std::vector<Outcome>& step_masked_go(
      std::span<const MaskedOp> op, std::span<const NestId> targets) = 0;

  /// step_masked_go without materialized Outcomes; callers read counts()
  /// (and backend-specific lanes) directly. Zero-alloc.
  virtual void step_masked_go_quiet(std::span<const MaskedOp> op,
                                    std::span<const NestId> targets) = 0;

  /// One mixed round that may contain recruiters. Worlds without a
  /// recruitment process (the lattice) inherit this default, which
  /// throws ContractViolation — a kernel routed to the wrong world is a
  /// programming error, not a model outcome.
  virtual const std::vector<Outcome>& step_masked_recruit(
      std::span<const MaskedOp> op, std::span<const std::uint8_t> active,
      std::span<const NestId> targets);

  /// step_masked_recruit without Outcomes. Same default as above.
  virtual void step_masked_recruit_quiet(std::span<const MaskedOp> op,
                                         std::span<const std::uint8_t> active,
                                         std::span<const NestId> targets);

  /// Rewind to the pre-round-1 state under a new seed, reusing every
  /// buffer. Allocation-free; result indistinguishable from fresh
  /// construction with `seed`.
  virtual void reset(std::uint64_t seed) = 0;
};

}  // namespace hh::env

#endif  // HH_ENV_BACKEND_HPP
