// Fault injection plans (paper Section 6, "Fault tolerance": "A small
// number of ants suffering from crash-faults or even malicious faults,
// should not affect the overall populations of recruiting ants and the
// algorithm's performance").
//
// This module only *describes* which ants are faulty and how; the core
// layer applies the behaviour (core::CrashProneAnt / core::ByzantineAnt
// wrappers) so that algorithms and fault semantics stay decoupled.
#ifndef HH_ENV_FAULTS_HPP
#define HH_ENV_FAULTS_HPP

#include <cstdint>
#include <vector>

#include "env/nest.hpp"

namespace hh::env {

/// How an individual ant misbehaves.
enum class FaultType : std::uint8_t {
  kNone,       ///< correct ant
  kCrash,      ///< stops acting (idles in place) from its crash round on
  kByzantine,  ///< adversarial: persistently recruits toward a bad nest
};

/// Copyable description of the faults to inject, used inside configs.
struct FaultConfig {
  double crash_fraction = 0.0;      ///< fraction of ants that crash
  double byzantine_fraction = 0.0;  ///< fraction of ants that are Byzantine
  /// Crashes are scheduled uniformly at random in [1, crash_horizon].
  std::uint32_t crash_horizon = 64;

  [[nodiscard]] bool any() const {
    return crash_fraction > 0.0 || byzantine_fraction > 0.0;
  }
};

/// A concrete per-ant fault assignment sampled from a FaultConfig.
struct FaultPlan {
  std::vector<FaultType> type;          ///< indexed by AntId; size n
  std::vector<std::uint32_t> crash_round;  ///< round >= which a crashed ant idles

  /// All ants correct.
  [[nodiscard]] static FaultPlan none(std::uint32_t num_ants);

  /// Sample a plan: floor(crash_fraction*n) crash victims with uniform
  /// crash rounds in [1, crash_horizon], floor(byzantine_fraction*n)
  /// Byzantine ants; assignments are disjoint and chosen uniformly.
  [[nodiscard]] static FaultPlan sample(std::uint32_t num_ants,
                                        const FaultConfig& cfg,
                                        std::uint64_t seed);

  /// True iff ant a behaves correctly for the entire execution.
  [[nodiscard]] bool correct(AntId a) const {
    return type[a] == FaultType::kNone;
  }

  /// Number of correct ants.
  [[nodiscard]] std::uint32_t correct_count() const;
};

}  // namespace hh::env

#endif  // HH_ENV_FAULTS_HPP
