// Observation models — exact (the paper's base model) and noisy (Section 6:
// "real ants can only assess nest quality and population approximately").
//
// The noisy model provides *unbiased* estimators, matching the paper's
// conjecture that Algorithm 3 stays correct "as long as ants have unbiased
// estimators of these values ... perhaps with some runtime cost dependent
// on estimator variance".
#ifndef HH_ENV_OBSERVATION_HPP
#define HH_ENV_OBSERVATION_HPP

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/rng.hpp"

namespace hh::env {

/// Strategy for distorting what ants perceive. The environment passes true
/// values through the observation model before returning them to ants.
class ObservationModel {
 public:
  virtual ~ObservationModel() = default;

  /// Perceived population count given the true count.
  [[nodiscard]] virtual std::uint32_t perceive_count(std::uint32_t true_count,
                                                     util::Rng& rng) const = 0;

  /// Perceived nest quality given the true quality (in [0,1]).
  [[nodiscard]] virtual double perceive_quality(double true_quality,
                                                util::Rng& rng) const = 0;

  /// True iff this model is the identity (perceives exactly, draws no
  /// randomness). The environment caches this to skip the two virtual
  /// perception calls per ant per round on the exact hot path.
  [[nodiscard]] virtual bool exact() const { return false; }

  /// Short stable identifier for reports.
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The paper's base model: ants observe counts and qualities exactly.
class ExactObservation final : public ObservationModel {
 public:
  [[nodiscard]] std::uint32_t perceive_count(std::uint32_t true_count,
                                             util::Rng&) const override {
    return true_count;
  }
  [[nodiscard]] double perceive_quality(double true_quality,
                                        util::Rng&) const override {
    return true_quality;
  }
  [[nodiscard]] bool exact() const override { return true; }
  [[nodiscard]] std::string_view name() const override { return "exact"; }
};

/// Section 6 noisy observation:
///   * counts: multiplicative uniform noise count * U(1-sigma, 1+sigma),
///     rounded to nearest — unbiased before rounding, bounded, and zero
///     counts stay zero (an empty nest cannot look populated);
///   * binary quality: flipped with probability quality_flip_prob
///     (models "assessments by an individual ant are not always precise");
///   * real-valued quality: additive uniform noise U(-q_sigma, +q_sigma),
///     clamped to [0,1].
class NoisyObservation final : public ObservationModel {
 public:
  /// count_sigma >= 0: relative half-width of count noise.
  /// quality_flip_prob in [0,1]: binary misperception probability.
  /// quality_sigma >= 0: additive half-width for real-valued qualities.
  NoisyObservation(double count_sigma, double quality_flip_prob,
                   double quality_sigma = 0.0);

  [[nodiscard]] std::uint32_t perceive_count(std::uint32_t true_count,
                                             util::Rng& rng) const override;
  [[nodiscard]] double perceive_quality(double true_quality,
                                        util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "noisy"; }

 private:
  double count_sigma_;
  double quality_flip_prob_;
  double quality_sigma_;
};

/// Copyable description of an observation model, used inside configs.
struct NoiseConfig {
  double count_sigma = 0.0;
  double quality_flip_prob = 0.0;
  double quality_sigma = 0.0;

  [[nodiscard]] bool any() const {
    return count_sigma > 0.0 || quality_flip_prob > 0.0 || quality_sigma > 0.0;
  }
};

/// Instantiate the observation model a NoiseConfig describes.
[[nodiscard]] std::unique_ptr<ObservationModel> make_observation_model(
    const NoiseConfig& cfg);

}  // namespace hh::env

#endif  // HH_ENV_OBSERVATION_HPP
