// The honeycomb-lattice world (env::Backend implementation #2).
//
// A periodic W x H brick-wall honeycomb: every site has degree 3 — an
// east and a west neighbor, plus one vertical neighbor whose direction
// alternates with the parity of (x + y) (even sites link up, odd sites
// link down). With W and H even the vertical edge is an involution, so
// the graph is a proper 3-regular cover of the torus.
//
// Ants are persistent random walkers with per-ant motility lanes: a
// "fast" behavioral syndrome walks with high directional persistence, a
// "slow" one with low (individual motility variation in ant colonies;
// see PAPERS.md). A search() step either repeats roughly the previous
// heading (with probability persist, uniform over the two non-backward
// edges) or picks uniformly among all three edges. go(i) is a directed
// relocation; there is no recruitment process — the step_masked_recruit
// entry points inherit the Backend base's ContractViolation defaults.
//
// The backend records each ant's FIRST-PASSAGE time to the target site
// (the round it first stood there; analysis/metrics.hpp summarizes the
// distribution). The decision-kernel layer treats the target as
// pseudo-nest 1: a walker that has reached it commits and idles.
//
// All walk randomness is environment randomness (walkers draw no RNG of
// their own), so scalar/packed engine equivalence reduces to the masked
// entry points being RNG-equivalent to step() — which they are by
// construction: both are adapters over one shared row core, exactly as
// in HomeNestBackend.
#ifndef HH_ENV_LATTICE_HPP
#define HH_ENV_LATTICE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "env/action.hpp"
#include "env/backend.hpp"
#include "env/nest.hpp"
#include "util/rng.hpp"

namespace hh::env {

/// Sentinel for LatticeConfig::target_site: place the target on the site
/// antipodal to the nest (half the torus away in both coordinates).
inline constexpr std::uint32_t kLatticeAutoTarget = 0xffffffffu;

/// Static description of a lattice world (geometry + motility lanes).
/// Part of scenario identity: every field serializes into the identity
/// JSON of lattice scenarios (analysis/spec.cpp).
struct LatticeConfig {
  std::uint32_t width = 16;   ///< columns; even, >= 2
  std::uint32_t height = 16;  ///< rows; even, >= 2
  /// Site every ant starts on (index y * width + x).
  std::uint32_t nest_site = 0;
  /// First-passage target site; kLatticeAutoTarget = antipodal to nest.
  std::uint32_t target_site = kLatticeAutoTarget;
  /// Directional persistence of the fast motility syndrome.
  double persist_fast = 0.9;
  /// Directional persistence of the slow motility syndrome.
  double persist_slow = 0.3;
  /// Fraction of the colony in the fast lane. Assignment is deterministic
  /// by ant index (ants [0, round(fast_fraction * n)) are fast) so the
  /// syndrome split costs no RNG draws.
  double fast_fraction = 0.5;
};

/// The resolved target site of `cfg` (the antipode of nest_site when
/// target_site is kLatticeAutoTarget).
[[nodiscard]] std::uint32_t lattice_target_site(const LatticeConfig& cfg);

/// The honeycomb world. One instance = one execution (until reset).
/// `final` for the same reason as HomeNestBackend: the engine hot paths
/// hold the concrete type, so calls devirtualize.
class LatticeBackend final : public Backend {
 public:
  /// Edge labels of the 3-regular brick-wall honeycomb.
  enum Dir : std::uint8_t { kEast = 0, kWest = 1, kVertical = 2 };

  LatticeBackend(std::uint32_t num_ants, const LatticeConfig& cfg,
                 std::uint64_t seed);
  ~LatticeBackend() override = default;

  // --- Backend contract ---------------------------------------------------
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kLattice;
  }
  [[nodiscard]] std::uint32_t num_ants() const override { return num_ants_; }
  [[nodiscard]] std::uint32_t num_locations() const override {
    return num_sites_;
  }
  [[nodiscard]] std::uint32_t round() const override { return round_; }
  [[nodiscard]] NestId location(AntId a) const override { return loc_[a]; }
  [[nodiscard]] std::span<const std::uint32_t> counts() const override {
    return counts_;
  }
  [[nodiscard]] const RoundStats& last_round_stats() const override {
    return stats_;
  }

  const std::vector<Outcome>& step(std::span<const Action> actions) override;
  const std::vector<Outcome>& step_masked_go(
      std::span<const MaskedOp> op, std::span<const NestId> targets) override;
  void step_masked_go_quiet(std::span<const MaskedOp> op,
                            std::span<const NestId> targets) override;
  void reset(std::uint64_t seed) override;

  // --- lattice-specific inspection ----------------------------------------
  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] std::uint32_t nest_site() const { return nest_; }
  [[nodiscard]] std::uint32_t target_site() const { return target_; }
  /// The site one step from `site` along edge `dir`.
  [[nodiscard]] std::uint32_t neighbor(std::uint32_t site,
                                       std::uint8_t dir) const;
  /// Whether ant a has stood on the target at least once.
  [[nodiscard]] bool reached(AntId a) const { return first_passage_[a] != 0; }
  /// Number of ants that have reached the target.
  [[nodiscard]] std::uint32_t reached_count() const { return reached_count_; }
  /// first_passage()[a] = round ant a first stood on the target (1-based;
  /// 0 = not yet), indexed by ant.
  [[nodiscard]] std::span<const std::uint32_t> first_passage() const {
    return first_passage_;
  }
  /// Directional persistence of ant a's motility lane.
  [[nodiscard]] double persistence(AntId a) const { return persist_[a]; }

 private:
  static constexpr std::uint8_t kNoDir = 3;  ///< no previous heading

  /// One persistent-walk move for ant a (draws off rng_ in ant order).
  void walk(AntId a);

  /// The row-level core every entry point goes through: `action_at(a)`
  /// yields ant a's Action. step() and the masked forms are thin adapters
  /// over this one template, which is what makes them RNG-equivalent by
  /// construction (same draws, same order). Loud instantiations also
  /// materialize per-ant Outcomes.
  template <bool kLoud, typename ActionAt>
  void run_round(const ActionAt& action_at);

  LatticeConfig cfg_;
  std::uint32_t num_ants_;
  std::uint32_t width_;
  std::uint32_t height_;
  std::uint32_t num_sites_;
  std::uint32_t nest_;
  std::uint32_t target_;
  util::Rng rng_;
  std::uint32_t round_ = 0;
  std::uint32_t reached_count_ = 0;
  RoundStats stats_;
  std::vector<NestId> loc_;                  ///< site per ant
  std::vector<std::uint8_t> back_dir_;       ///< edge just walked, reversed
  std::vector<double> persist_;              ///< motility lane per ant
  std::vector<std::uint32_t> first_passage_; ///< 0 = target not yet reached
  std::vector<std::uint8_t> kind_;           ///< this round's ActionKind per ant
  std::vector<std::uint32_t> counts_;        ///< population per site
  std::vector<Outcome> outcomes_;            ///< loud-round returns
};

}  // namespace hh::env

#endif  // HH_ENV_LATTICE_HPP
