// Round schedulers (paper Section 6, "Asynchrony"): the base model is
// fully synchronous; the partial-synchrony extension lets each ant
// independently miss a round with some probability, modeling jitter in
// when ants act. A sleeping ant idles in place and its own state machine
// does not advance that round.
#ifndef HH_ENV_SCHEDULER_HPP
#define HH_ENV_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <string_view>

#include "env/nest.hpp"
#include "util/rng.hpp"

namespace hh::env {

/// Decides, per ant and round, whether the ant gets to act.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// True iff ant a executes its state machine in this round.
  [[nodiscard]] virtual bool awake(AntId a, std::uint32_t round,
                                   util::Rng& rng) = 0;

  /// Short stable identifier for reports.
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The paper's base model: every ant acts every round.
class SynchronousScheduler final : public Scheduler {
 public:
  [[nodiscard]] bool awake(AntId, std::uint32_t, util::Rng&) override {
    return true;
  }
  [[nodiscard]] std::string_view name() const override { return "synchronous"; }
};

/// Partial synchrony: each ant independently sleeps through a round with
/// probability skip_probability. The first round (the global search) is
/// never skipped so every ant starts with one known nest.
class PartialSynchronyScheduler final : public Scheduler {
 public:
  explicit PartialSynchronyScheduler(double skip_probability);

  [[nodiscard]] bool awake(AntId a, std::uint32_t round, util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override {
    return "partial-synchrony";
  }

 private:
  double skip_probability_;
};

/// Instantiate a scheduler for the given skip probability (0 = synchronous).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(double skip_probability);

}  // namespace hh::env

#endif  // HH_ENV_SCHEDULER_HPP
