// The three model primitives an ant may invoke each round (paper Section 2):
// search(), go(i), recruit(b, i) — plus an Idle pseudo-action used only by
// the Section 6 extensions (crash faults, partial synchrony), which is
// rejected by the environment unless explicitly enabled.
#ifndef HH_ENV_ACTION_HPP
#define HH_ENV_ACTION_HPP

#include <cstdint>

#include "env/nest.hpp"

namespace hh::env {

/// Which model primitive an ant invokes this round.
enum class ActionKind : std::uint8_t {
  kSearch,   ///< search(): visit a uniformly random candidate nest
  kGo,       ///< go(i): revisit a known candidate nest
  kRecruit,  ///< recruit(b, i): return home and participate in recruitment
  kIdle,     ///< extension only: stay put (crashed / asleep ant)
};

/// One ant's single function call for a round.
///
/// Construct through the factory functions below; the raw aggregate is kept
/// public so tests can build malformed actions to exercise model validation.
struct Action {
  ActionKind kind = ActionKind::kIdle;
  NestId target = kHomeNest;  ///< Go: nest to visit; Recruit: nest advertised
  bool active = false;        ///< Recruit only: b (true = actively recruit)

  /// search(): relocate to a uniformly random candidate nest.
  [[nodiscard]] static Action search() { return {ActionKind::kSearch, kHomeNest, false}; }

  /// go(i): revisit candidate nest i (must be known to the ant).
  [[nodiscard]] static Action go(NestId i) { return {ActionKind::kGo, i, false}; }

  /// recruit(b, i): return to the home nest; if b, actively recruit to
  /// nest i (must be known); if !b, wait to be recruited (i may be the
  /// home nest for ants that know no candidate yet — see DESIGN.md §2).
  [[nodiscard]] static Action recruit(bool b, NestId i) {
    return {ActionKind::kRecruit, i, b};
  }

  /// Extension: do nothing this round (requires EnvironmentConfig::allow_idle).
  [[nodiscard]] static Action idle() { return {ActionKind::kIdle, kHomeNest, false}; }
};

/// The environment's reply to an ant's call, delivered at end of round.
/// All counts are end-of-round values c(i, r), possibly distorted by the
/// ObservationModel (Section 6 noisy-estimation extension).
struct Outcome {
  ActionKind kind = ActionKind::kIdle;
  /// Search: the nest found. Go: the nest visited. Recruit: the return
  /// value j — the recruiter's advertised nest if this ant was recruited,
  /// otherwise the ant's own input nest.
  NestId nest = kHomeNest;
  /// Search only: perceived quality q(i) of the found nest.
  double quality = 0.0;
  /// Search/Go: perceived c(nest, r). Recruit: perceived c(0, r).
  std::uint32_t count = 0;
  /// Recruit diagnostics (NOT observable through the paper's interface —
  /// provided for metrics/tests only; conforming ants must not read these).
  bool recruited = false;          ///< (a*, a) ∈ M for some recruiter a*
  bool recruit_succeeded = false;  ///< (a, a') ∈ M; this ant recruited a'
};

}  // namespace hh::env

#endif  // HH_ENV_ACTION_HPP
