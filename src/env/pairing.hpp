// The centralized random recruitment-matching process (paper Algorithm 1).
//
// All ants at the home nest in a round call recruit(b, i); the environment
// pairs active recruiters with uniformly chosen ants. The paper notes the
// process "is not a distributed algorithm executed by the ants, but just a
// modeling tool", and that the results are believed to hold under "other
// natural models for randomly pairing ants" — hence the strategy interface
// with the paper's process as the default and an alternative for ablation.
#ifndef HH_ENV_PAIRING_HPP
#define HH_ENV_PAIRING_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "env/nest.hpp"
#include "util/rng.hpp"

namespace hh::env {

/// One ant's recruit(b, i) call, as seen by the pairing process.
struct RecruitRequest {
  AntId ant = 0;              ///< caller
  bool active = false;        ///< b: true iff the ant recruits actively
  NestId target = kHomeNest;  ///< i: the nest the ant advertises
};

/// Index into the request span, or kNotRecruited.
inline constexpr std::int32_t kNotRecruited = -1;

/// Per-call context for the pairing process. The sequential models draw
/// from the shared `rng`; the counter-lottery model instead keys one
/// SplitMix64 stream per request slot on (seed, round, slot) and leaves
/// `rng` untouched — which is what makes its draws order-free and the
/// propose/lottery phases flat O(m) loops. `round` is 1-based; round == 0
/// marks an unkeyed ad-hoc call (tests, one-off pair() users), for which
/// the counter model derives an ephemeral key by drawing ONE word from
/// `rng` — so ad-hoc calls stay deterministic given the rng state.
struct PairingCtx {
  util::Rng& rng;            ///< the environment's sequential stream
  std::uint64_t seed = 0;    ///< pairing seed, stable across the execution
  std::uint32_t round = 0;   ///< 1-based round being executed; 0 = unkeyed
};

/// Caller-owned buffers for the pairing process: the matching itself plus
/// every model's workspace. Held by the Environment (one per execution) and
/// reused across rounds, so pairing performs zero heap allocations after
/// reserve() — the hot-path contract Environment::step() is built on.
/// All vectors are indexed by position in the request span (NOT by AntId).
struct PairingScratch {
  /// recruited_by[x] = index of the request whose ant recruited x
  /// (possibly x itself — self-recruitment is allowed, see DESIGN.md), or
  /// kNotRecruited.
  std::vector<std::int32_t> recruited_by;
  /// recruit_succeeded[x] != 0 iff request x's ant appears as the
  /// recruiter in a pair of M. uint8_t rather than bool: flat byte access,
  /// no bit-packing on the hot path.
  std::vector<std::uint8_t> recruit_succeeded;

  // Model workspace (contents meaningless between calls).
  std::vector<std::uint32_t> perm;            ///< permutation buffer
  std::vector<std::uint8_t> active;           ///< request active flags, packed
                                              ///< to 1B for the random-order
                                              ///< matching loop
  std::vector<std::int32_t> proposal;         ///< uniform-proposal only
  std::vector<std::int32_t> winner;           ///< uniform-proposal + counter
  std::vector<std::uint32_t> proposer_count;  ///< uniform-proposal only
  /// Counter-lottery tickets, doubling as the uniform-proposal batched
  /// proposal-draw buffer (both are per-slot u64 lanes, never live at
  /// the same time).
  std::vector<std::uint64_t> ticket;

  /// Pre-size every buffer for up to `max_requests` requests.
  void reserve(std::size_t max_requests);

  /// Number of pairs in M.
  [[nodiscard]] std::size_t pair_count() const {
    std::size_t pairs = 0;
    for (auto r : recruited_by) pairs += (r != kNotRecruited) ? 1u : 0u;
    return pairs;
  }
};

/// The matching M, as owning vectors — the convenience form returned by
/// PairingModel::pair() for tests and one-off callers. The engine path
/// uses pair_into() + PairingScratch instead and never materializes this.
struct PairingResult {
  /// See PairingScratch::recruited_by.
  std::vector<std::int32_t> recruited_by;
  /// See PairingScratch::recruit_succeeded.
  std::vector<bool> recruit_succeeded;

  /// Number of pairs in M.
  [[nodiscard]] std::size_t pair_count() const {
    std::size_t pairs = 0;
    for (auto r : recruited_by) pairs += (r != kNotRecruited) ? 1u : 0u;
    return pairs;
  }
};

/// Strategy interface for the home-nest pairing process.
///
/// The matching depends on nothing but each request's active flag, so the
/// virtual core is SoA: pair_active() over a packed byte span. pair_into()
/// (AoS requests) and pair() (owning vectors) are thin wrappers drawing
/// the identical RNG sequence.
class PairingModel {
 public:
  virtual ~PairingModel() = default;

  /// Compute the matching M for m recruit() calls given their active
  /// flags (active.size() == m), writing into `scratch` (resized to m;
  /// allocation-free when the scratch has capacity). Implementations must
  /// produce a valid matching: each ant appears at most once as recruited
  /// and at most once as recruiter, and only active ants recruit.
  virtual void pair_active(std::span<const std::uint8_t> active,
                           const PairingCtx& ctx,
                           PairingScratch& scratch) const = 0;

  /// Rng-only form: an unkeyed ad-hoc call (PairingCtx::round == 0).
  void pair_active(std::span<const std::uint8_t> active, util::Rng& rng,
                   PairingScratch& scratch) const {
    pair_active(active, PairingCtx{rng}, scratch);
  }

  /// AoS wrapper: packs the requests' active flags into scratch.active and
  /// delegates to pair_active().
  void pair_into(std::span<const RecruitRequest> requests,
                 const PairingCtx& ctx, PairingScratch& scratch) const;

  /// Rng-only AoS wrapper (unkeyed ad-hoc call).
  void pair_into(std::span<const RecruitRequest> requests, util::Rng& rng,
                 PairingScratch& scratch) const {
    pair_into(requests, PairingCtx{rng}, scratch);
  }

  /// Convenience wrapper over pair_into() returning owning vectors.
  [[nodiscard]] PairingResult pair(std::span<const RecruitRequest> requests,
                                   util::Rng& rng) const;

  /// Short stable identifier for reports.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when KEYED calls (PairingCtx::round != 0) draw nothing from the
  /// shared ctx.rng — every draw comes from per-slot counter streams. The
  /// environment's fused round path relies on this: it reorders the
  /// pairing relative to the census and the classification pass, which is
  /// RNG-invisible exactly when the pairing cannot consume shared-stream
  /// randomness. Sequential models must leave this false.
  [[nodiscard]] virtual bool counter_keyed() const { return false; }
};

/// The paper's Algorithm 1, implemented literally:
///   * P: a uniformly random permutation of all ants in R;
///   * in P-order, each active, not-yet-recruited ant draws a' uniformly
///     from all of R and the pair is added iff a' is in no pair yet;
///   * a' may equal the recruiter (self-recruitment; a no-op for the ant).
class PermutationPairing final : public PairingModel {
 public:
  using PairingModel::pair_active;
  void pair_active(std::span<const std::uint8_t> active, const PairingCtx& ctx,
                   PairingScratch& scratch) const override;
  [[nodiscard]] std::string_view name() const override { return "permutation"; }
};

/// An alternative "natural model" used for the pairing ablation (E15):
/// every active ant first commits to a uniformly random proposal target;
/// each target chooses one proposer uniformly at random (a lottery rather
/// than permutation precedence); tentative matches are then accepted in a
/// random order, skipping any match whose endpoint is already used.
class UniformProposalPairing final : public PairingModel {
 public:
  using PairingModel::pair_active;
  void pair_active(std::span<const std::uint8_t> active, const PairingCtx& ctx,
                   PairingScratch& scratch) const override;
  [[nodiscard]] std::string_view name() const override { return "uniform-proposal"; }
};

/// The data-parallel "natural model": every per-ant draw comes from a
/// counter-based stream — SplitMix64 keyed on (pairing seed, round, slot)
/// via util::mix_seed — instead of the shared sequential Rng, so the
/// propose and per-target-lottery phases are branch-light O(m) loops over
/// flat lanes with no cross-slot data dependence (trivially chunkable).
/// Process: each active slot draws a uniform target over ALL of R (self
/// included, like Algorithm 1) plus a 32-bit lottery ticket; each target
/// keeps the proposer with the highest ticket (ties, probability ~2^-32
/// per colliding pair, go to the lowest slot — deterministic under any
/// evaluation order); tentative matches are then accepted in target-index
/// order, skipping any match with a used endpoint. Keyed calls draw
/// NOTHING from the shared stream. See DESIGN.md §2 for the argument that
/// the lottery marginals match the sequential reservoir lottery.
class CounterLotteryPairing final : public PairingModel {
 public:
  using PairingModel::pair_active;
  void pair_active(std::span<const std::uint8_t> active, const PairingCtx& ctx,
                   PairingScratch& scratch) const override;
  [[nodiscard]] std::string_view name() const override { return "counter-lottery"; }
  [[nodiscard]] bool counter_keyed() const override { return true; }
};

/// Selector for configs that must stay copyable (strategy objects are not).
enum class PairingKind : std::uint8_t { kPermutation, kUniformProposal, kCounter };

/// Stable pairing-model name ("permutation" / "uniform-proposal" /
/// "counter-lottery"),
/// matching the model's name() — THE vocabulary reports, capability-gap
/// messages, and spec files share (analysis/spec.cpp parses it back).
[[nodiscard]] std::string_view pairing_name(PairingKind kind);

/// The PairingKind whose pairing_name() is `name`, if any.
[[nodiscard]] std::optional<PairingKind> pairing_from_name(
    std::string_view name);

/// Instantiate a pairing model by kind.
[[nodiscard]] std::unique_ptr<PairingModel> make_pairing_model(PairingKind kind);

}  // namespace hh::env

#endif  // HH_ENV_PAIRING_HPP
