#include "env/backend.hpp"

#include "util/contracts.hpp"

namespace hh::env {

Backend::~Backend() = default;

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kHomeNest:
      return "home-nest";
    case BackendKind::kLattice:
      return "lattice";
  }
  HH_ASSERT(false && "unhandled BackendKind");
  return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  if (name == "home-nest") return BackendKind::kHomeNest;
  if (name == "lattice") return BackendKind::kLattice;
  return std::nullopt;
}

const std::vector<Outcome>& Backend::step_masked_recruit(
    std::span<const MaskedOp>, std::span<const std::uint8_t>,
    std::span<const NestId>) {
  throw ContractViolation(
      "step_masked_recruit: this backend has no recruitment process");
}

void Backend::step_masked_recruit_quiet(std::span<const MaskedOp>,
                                        std::span<const std::uint8_t>,
                                        std::span<const NestId>) {
  throw ContractViolation(
      "step_masked_recruit_quiet: this backend has no recruitment process");
}

}  // namespace hh::env
