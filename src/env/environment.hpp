// The synchronous-round environment of paper Section 2.
//
// n probabilistic finite-state machines (ants) execute in numbered rounds.
// Each round every ant performs exactly one call to search(), go(i), or
// recruit(b, i); the environment resolves all calls simultaneously:
//
//   1. every ant's location l(a, r) is updated (searchers land on a
//      uniformly random candidate nest, go-ers move to their target,
//      recruit-ers return to the home nest),
//   2. the recruitment matching M is computed (Algorithm 1 by default),
//   3. end-of-round counts c(i, r) are taken, and
//   4. return values are delivered (counts possibly filtered through an
//      ObservationModel — the Section 6 noisy-perception extension).
//
// Model-rule enforcement: with EnvironmentConfig::enforce_model (default),
// illegal calls throw hh::ModelViolation — e.g. go(i) to a nest the ant has
// neither visited nor been recruited to (the knowledge interpretation of
// the paper's precondition; see DESIGN.md §2), or recruit(1, i) advertising
// an unknown nest.
#ifndef HH_ENV_ENVIRONMENT_HPP
#define HH_ENV_ENVIRONMENT_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "env/action.hpp"
#include "env/nest.hpp"
#include "env/observation.hpp"
#include "env/pairing.hpp"
#include "util/rng.hpp"

namespace hh::env {

/// Static description of an environment instance.
struct EnvironmentConfig {
  /// Colony size n. Must be >= 1.
  std::uint32_t num_ants = 0;
  /// qualities[i] is the quality of candidate nest i+1; size() is k >= 1.
  std::vector<double> qualities;
  /// Seed for all environment randomness (search landings, pairing).
  std::uint64_t seed = 1;
  /// Validate the model's call preconditions (throws ModelViolation).
  bool enforce_model = true;
  /// Permit Action::idle() (Section 6 fault/asynchrony extensions only).
  bool allow_idle = false;
};

/// Aggregate statistics for the most recent round (for metrics collection;
/// none of this is observable by ants).
struct RoundStats {
  std::uint32_t searches = 0;
  std::uint32_t gos = 0;
  std::uint32_t active_recruits = 0;   ///< recruit(1, ·) calls
  std::uint32_t passive_recruits = 0;  ///< recruit(0, ·) calls
  std::uint32_t idles = 0;
  std::uint32_t successful_recruitments = 0;  ///< |M|
  std::uint32_t self_recruitments = 0;        ///< pairs (a, a)
  /// Recruited ants whose returned nest j differed from their input nest.
  std::uint32_t cross_nest_recruitments = 0;
};

/// The home-nest-plus-k-candidate-nests world. One instance = one execution.
class Environment {
 public:
  /// Construct with explicit strategies; pass nullptr for the defaults
  /// (PermutationPairing / ExactObservation).
  Environment(EnvironmentConfig cfg,
              std::unique_ptr<PairingModel> pairing = nullptr,
              std::unique_ptr<ObservationModel> observation = nullptr);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
  Environment(Environment&&) = default;
  Environment& operator=(Environment&&) = default;
  ~Environment() = default;

  /// Execute one synchronous round. actions[a] is ant a's single call for
  /// this round; actions.size() must equal num_ants(). Returns one Outcome
  /// per ant (reference valid until the next step()). Throws ModelViolation
  /// for illegal calls when enforce_model is set.
  const std::vector<Outcome>& step(std::span<const Action> actions);

  // --- inspection (environment's-eye view; not visible to ants) ---

  /// Colony size n.
  [[nodiscard]] std::uint32_t num_ants() const { return cfg_.num_ants; }
  /// Number of candidate nests k.
  [[nodiscard]] std::uint32_t num_nests() const {
    return static_cast<std::uint32_t>(cfg_.qualities.size());
  }
  /// Rounds completed so far (0 before the first step()).
  [[nodiscard]] std::uint32_t round() const { return round_; }
  /// Current location l(a, r) of ant a.
  [[nodiscard]] NestId location(AntId a) const;
  /// Current true population count c(i, r); i in [0, k].
  [[nodiscard]] std::uint32_t count(NestId i) const;
  /// True quality q(i) of candidate nest i in [1, k].
  [[nodiscard]] double quality(NestId i) const;
  /// Whether ant a has knowledge of nest i (visited or been recruited to).
  [[nodiscard]] bool knows(AntId a, NestId i) const;
  /// Stats of the most recent round.
  [[nodiscard]] const RoundStats& last_round_stats() const { return stats_; }
  /// The active pairing model (for reports).
  [[nodiscard]] const PairingModel& pairing_model() const { return *pairing_; }

 private:
  void validate(AntId a, const Action& action) const;
  void grant_knowledge(AntId a, NestId i);

  EnvironmentConfig cfg_;
  std::unique_ptr<PairingModel> pairing_;
  std::unique_ptr<ObservationModel> observation_;
  util::Rng rng_;

  std::uint32_t round_ = 0;
  std::vector<NestId> location_;        // l(a, r), indexed by ant
  std::vector<std::uint32_t> count_;    // c(i, r), indexed by nest (0..k)
  std::vector<bool> knowledge_;         // (k+1) slots per ant, flattened
  std::vector<Outcome> outcomes_;       // reused each round
  std::vector<RecruitRequest> requests_;  // reused each round
  std::vector<std::uint32_t> request_index_;  // ant -> index into requests_
  RoundStats stats_;
};

}  // namespace hh::env

#endif  // HH_ENV_ENVIRONMENT_HPP
