// The synchronous-round environment of paper Section 2.
//
// n probabilistic finite-state machines (ants) execute in numbered rounds.
// Each round every ant performs exactly one call to search(), go(i), or
// recruit(b, i); the environment resolves all calls simultaneously:
//
//   1. every ant's location l(a, r) is updated (searchers land on a
//      uniformly random candidate nest, go-ers move to their target,
//      recruit-ers return to the home nest),
//   2. the recruitment matching M is computed (Algorithm 1 by default),
//   3. end-of-round counts c(i, r) are taken, and
//   4. return values are delivered (counts possibly filtered through an
//      ObservationModel — the Section 6 noisy-perception extension).
//
// Model-rule enforcement: with EnvironmentConfig::enforce_model (default),
// illegal calls throw hh::ModelViolation — e.g. go(i) to a nest the ant has
// neither visited nor been recruited to (the knowledge interpretation of
// the paper's precondition; see DESIGN.md §2), or recruit(1, i) advertising
// an unknown nest.
#ifndef HH_ENV_ENVIRONMENT_HPP
#define HH_ENV_ENVIRONMENT_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "env/action.hpp"
#include "env/backend.hpp"
#include "env/nest.hpp"
#include "env/observation.hpp"
#include "env/pairing.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hh::env {

/// Static description of an environment instance.
struct EnvironmentConfig {
  /// Colony size n. Must be >= 1.
  std::uint32_t num_ants = 0;
  /// qualities[i] is the quality of candidate nest i+1; size() is k >= 1.
  std::vector<double> qualities;
  /// Seed for all environment randomness (search landings, pairing).
  std::uint64_t seed = 1;
  /// Validate the model's call preconditions (throws ModelViolation).
  bool enforce_model = true;
  /// Permit Action::idle() (Section 6 fault/asynchrony extensions only).
  bool allow_idle = false;
};

// RoundStats and MaskedOp (the round-statistics record and the per-ant
// operation selector shared by every backend's masked SoA entry points)
// live in env/backend.hpp with the contract.

/// The home-nest-plus-k-candidate-nests world of paper Section 2. One
/// instance = one execution. `final` matters: the engine hot paths hold
/// this concrete type (Simulation's by-value member, AntPack's observe
/// parameters), so their calls through the Backend contract devirtualize.
class HomeNestBackend final : public Backend {
 public:
  /// Construct with explicit strategies; pass nullptr for the defaults
  /// (PermutationPairing / ExactObservation).
  explicit HomeNestBackend(
      EnvironmentConfig cfg, std::unique_ptr<PairingModel> pairing = nullptr,
      std::unique_ptr<ObservationModel> observation = nullptr);
  ~HomeNestBackend() override = default;

  /// Execute one synchronous round. actions[a] is ant a's single call for
  /// this round; actions.size() must equal num_ants(). Returns one Outcome
  /// per ant (reference valid until the next step()). Throws ModelViolation
  /// for illegal calls when enforce_model is set.
  ///
  /// Hot-path invariant: performs ZERO heap allocations after construction
  /// (all round state — outcomes, requests, pairing scratch — is owned by
  /// this object and reused; the only allocating path is the throw on a
  /// model violation). tests/test_hotpath.cpp asserts this with a
  /// counting operator new.
  const std::vector<Outcome>& step(std::span<const Action> actions) override;

  // --- SoA round-shape fast paths -----------------------------------------
  // The synchronous algorithms produce colony-uniform rounds (every ant
  // searches, every ant recruits, every ant goes), and the generic step()
  // pays a per-ant dispatch switch plus Action marshalling it doesn't
  // need. These entry points execute one round of a known shape over
  // contiguous inputs instead. Each is RNG-equivalent to step() with the
  // corresponding action vector: identical draws in identical order,
  // identical outcomes, counts, knowledge, and stats — the packed engine
  // (core::AntPack) relies on this, and tests/test_environment.cpp checks
  // it directly. Same zero-allocation guarantee as step().

  /// One round in which every ant calls search().
  const std::vector<Outcome>& step_all_search();

  /// One round in which every ant calls recruit(b, i): requests[a] must be
  /// ant a's call (requests[a].ant == a, requests.size() == num_ants()).
  const std::vector<Outcome>& step_all_recruit(
      std::span<const RecruitRequest> requests);

  /// One round in which every ant calls go(targets[a]).
  const std::vector<Outcome>& step_all_go(std::span<const NestId> targets);

  /// Rewind to the pre-round-1 state under a new seed, reusing every
  /// buffer: all ants home, counts/knowledge/stats cleared, round() == 0,
  /// RNG reseeded. A reset environment is indistinguishable from a freshly
  /// constructed one with `seed` in its config — the arena-reuse invariant
  /// (DESIGN.md §4) that lets Runner workers rerun trials without paying
  /// construction. Allocation-free.
  void reset(std::uint64_t seed) override;

  // Quiet forms: under the EXACT observation model (no perception draws),
  // a round's return values are fully determined by the pairing and the
  // end-of-round counts — so these skip materializing the per-ant Outcome
  // array altogether and the caller reads last_pairing()/counts()
  // directly. Model bookkeeping (locations, counts, knowledge, stats,
  // round number) is identical to the loud forms; requires exact
  // observation (throws ContractViolation otherwise).

  /// step_all_recruit without Outcomes, in SoA form: active[a] is ant a's
  /// b and targets[a] its advertised nest (both size n). The matching is
  /// in last_pairing().
  void step_all_recruit_quiet(std::span<const std::uint8_t> active,
                              std::span<const NestId> targets);

  /// step_all_go without Outcomes; per-nest results are in counts().
  void step_all_go_quiet(std::span<const NestId> targets);

  // --- masked SoA entry points --------------------------------------------
  // Mixed-phase rounds in SoA form: op[a] selects ant a's call (see
  // MaskedOp), targets[a] its go destination or advertised nest, active[a]
  // its b for recruits. RNG-equivalent to step() with the corresponding
  // action vector — both run the same row-level core — so packs whose
  // rounds are NOT colony-uniform (per-ant phase lanes, fault lanes) keep
  // the zero-allocation contract instead of falling back to per-object
  // dispatch. tests/test_environment.cpp pins the equivalence.

  /// One mixed round that may contain recruiters. After it,
  /// last_pairing() holds the matching (indexed by request position) and
  /// recruited_by_ant()/recruit_succeeded_ant() give the ant-indexed view.
  const std::vector<Outcome>& step_masked_recruit(
      std::span<const MaskedOp> op, std::span<const std::uint8_t> active,
      std::span<const NestId> targets) override;

  /// step_masked_recruit without Outcomes (exact observation only).
  void step_masked_recruit_quiet(std::span<const MaskedOp> op,
                                 std::span<const std::uint8_t> active,
                                 std::span<const NestId> targets) override;

  /// One mixed round with NO recruiters (op values kGo/kSearch/kIdle
  /// only): skips the pairing process, which draws nothing on an empty
  /// request set, so it stays RNG-equivalent to step(). `active` is not
  /// needed; `targets` is read only at kGo positions.
  const std::vector<Outcome>& step_masked_go(
      std::span<const MaskedOp> op,
      std::span<const NestId> targets) override;

  /// step_masked_go without Outcomes (exact observation only).
  void step_masked_go_quiet(std::span<const MaskedOp> op,
                            std::span<const NestId> targets) override;

  // --- inspection (environment's-eye view; not visible to ants) ---

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kHomeNest;
  }
  /// Colony size n.
  [[nodiscard]] std::uint32_t num_ants() const override {
    return cfg_.num_ants;
  }
  /// Number of candidate nests k.
  [[nodiscard]] std::uint32_t num_nests() const {
    return static_cast<std::uint32_t>(cfg_.qualities.size());
  }
  /// k+1: the home nest plus the candidates.
  [[nodiscard]] std::uint32_t num_locations() const override {
    return num_nests() + 1;
  }
  /// Rounds completed so far (0 before the first step()).
  [[nodiscard]] std::uint32_t round() const override { return round_; }
  /// Current location l(a, r) of ant a.
  [[nodiscard]] NestId location(AntId a) const override;
  /// Current true population count c(i, r); i in [0, k].
  [[nodiscard]] std::uint32_t count(NestId i) const;
  /// All current counts c(·, r), indexed by nest (size k+1).
  [[nodiscard]] std::span<const std::uint32_t> counts() const override {
    return count_;
  }
  /// True quality q(i) of candidate nest i in [1, k].
  [[nodiscard]] double quality(NestId i) const;
  /// All true qualities; nest i's quality is at index i-1 (size k).
  [[nodiscard]] std::span<const double> qualities() const {
    return cfg_.qualities;
  }
  /// The matching of the most recent recruit round (valid until the next
  /// round that performs pairing).
  [[nodiscard]] const PairingScratch& last_pairing() const {
    return pairing_scratch_;
  }
  /// Ant-indexed view of the LAST ROUND's matching: the AntId that
  /// recruited `a`, or kNotRecruited — including when `a` made no
  /// recruit() call, and for every ant after a round with no recruit
  /// calls at all (step_all_search/go), whose matching is empty by
  /// definition. Translates the pairing scratch's request-position
  /// indices, which packs must not do themselves. Defined inline below:
  /// the packed engines call these once per recruiting ant per round
  /// (tens of millions of calls per sweep), so the loads must not hide
  /// behind a call boundary.
  [[nodiscard]] std::int32_t recruited_by_ant(AntId a) const;
  /// Ant-indexed view: whether `a` successfully recruited someone in the
  /// last round.
  [[nodiscard]] bool recruit_succeeded_ant(AntId a) const;
  /// The ants that appear as the RECRUITER in a pair of the last quiet
  /// recruit round's matching, in request order (each at most once —
  /// matching validity). Valid after step_masked_recruit_quiet /
  /// step_all_recruit_quiet; lets the driver attribute tandem runs vs
  /// transports over the successes alone instead of scanning every ant.
  [[nodiscard]] std::span<const AntId> successful_recruiters() const {
    return success_ants_;
  }
  /// recruit_results()[a] = the recruit(b, i) return value j for every
  /// ant whose op was kRecruit in the last quiet recruit round: the
  /// recruiter's advertised nest when `a` was recruited, a's own target
  /// otherwise. Entries of ants that made no recruit() call are stale —
  /// callers must consult it only for their recruit lanes. One
  /// sequential lane load where recruited_by_ant() chases the
  /// request-index indirection plus two dependent random loads.
  [[nodiscard]] std::span<const NestId> recruit_results() const {
    return recruit_result_;
  }
  /// Whether ant a has knowledge of nest i (visited or been recruited to).
  [[nodiscard]] bool knows(AntId a, NestId i) const;
  /// Stats of the most recent round.
  [[nodiscard]] const RoundStats& last_round_stats() const override {
    return stats_;
  }
  /// The active pairing model (for reports).
  [[nodiscard]] const PairingModel& pairing_model() const { return *pairing_; }

 private:
  /// request_index_ sentinel: the ant made no recruit() call this round.
  static constexpr std::uint32_t kNoRequest = 0xffffffffu;

  void validate(AntId a, const Action& action) const;
  void grant_knowledge(AntId a, NestId i);

  /// The row-level core every generic/masked round goes through:
  /// `action_at(a)` yields ant a's Action. step() and the masked entry
  /// points are thin adapters over these two, which is what makes them
  /// RNG-equivalent by construction.
  template <typename ActionAt>
  const std::vector<Outcome>& step_rows(const ActionAt& action_at);
  /// The Outcome-free form (exact observation only): same bookkeeping,
  /// no per-ant return values materialized.
  template <typename ActionAt>
  void step_rows_quiet(const ActionAt& action_at);
  /// step_masked_recruit_quiet for counter-keyed pairing models: one
  /// fused pass does classification, the search draws, request packing,
  /// AND the count census, then runs the keyed lottery and the matching
  /// bookkeeping. Observably identical to the generic path — see the
  /// legality argument at the definition. Exact observation only.
  void step_masked_recruit_fused(std::span<const MaskedOp> op,
                                 std::span<const std::uint8_t> active,
                                 std::span<const NestId> targets);
  /// Phase 1 shared by both forms — validation, location updates, the
  /// search landing draws, request building, stats — ONE copy so the
  /// loud and quiet paths cannot drift apart. kLoud additionally seeds
  /// the per-ant Outcome rows phase 4 completes.
  template <bool kLoud, typename ActionAt>
  void round_phase1(const ActionAt& action_at);

  EnvironmentConfig cfg_;
  std::unique_ptr<PairingModel> pairing_;
  std::unique_ptr<ObservationModel> observation_;
  bool observe_exact_;  // cached observation_->exact(): branch, not virtual call
  // Cached pairing_->counter_keyed(): selects the fused masked-recruit
  // round (a branch per round, not a virtual call).
  bool counter_pairing_ = false;
  util::Rng rng_;
  // Stable key for counter-based pairing streams, derived from cfg_.seed
  // at construction AND reset (identically — the arena-reuse invariant).
  // Passed to every pairing call via PairingCtx together with the 1-based
  // round number; the sequential models ignore it.
  std::uint64_t pairing_seed_ = 0;

  std::uint32_t round_ = 0;
  std::vector<NestId> location_;        // l(a, r), indexed by ant
  // step_all_recruit() leaves location_ untouched: every ant is at the
  // home nest, represented by this flag instead of n writes. Cleared by
  // every round path that materializes real locations.
  bool all_at_home_ = false;
  std::vector<std::uint32_t> count_;    // c(i, r), indexed by nest (0..k)
  // (k+1) slots per ant, flattened. uint8_t rather than vector<bool>:
  // branch-free byte loads/stores on the validation and knowledge paths.
  std::vector<std::uint8_t> knowledge_;
  std::vector<Outcome> outcomes_;       // reused each round
  std::vector<RecruitRequest> requests_;  // reused each round
  std::vector<std::uint32_t> request_index_;  // ant -> index into requests_
  // True when the last recruit-bearing round used the all-recruit entry
  // points, whose pairing scratch is indexed directly by ant (the
  // request_index_ indirection is skipped there).
  bool requests_ant_indexed_ = false;
  // False after rounds that perform no pairing (all-search/all-go): the
  // scratch and request_index_ then describe an OLDER round, and the
  // ant-indexed views must report an empty matching, not stale pairs.
  bool pairing_current_ = false;
  PairingScratch pairing_scratch_;      // reused each round
  // Per-round results of the quiet recruit paths (see the accessors):
  // success_ants_ holds this round's successful recruiters;
  // recruit_result_[a] holds ant a's recruit() return value j. Both are
  // filled by the matching-bookkeeping walk, which already touches every
  // pair — capacity reserved at construction, zero allocations per round.
  std::vector<AntId> success_ants_;
  std::vector<NestId> recruit_result_;
  RoundStats stats_;
};

inline std::int32_t HomeNestBackend::recruited_by_ant(AntId a) const {
  HH_EXPECTS(a < cfg_.num_ants);
  if (!pairing_current_) return kNotRecruited;
  if (requests_ant_indexed_) {
    // All-recruit rounds: request position x IS ant x.
    return pairing_scratch_.recruited_by[a];
  }
  const std::uint32_t idx = request_index_[a];
  if (idx == kNoRequest) return kNotRecruited;
  const std::int32_t recruiter = pairing_scratch_.recruited_by[idx];
  if (recruiter == kNotRecruited) return kNotRecruited;
  return static_cast<std::int32_t>(
      requests_[static_cast<std::size_t>(recruiter)].ant);
}

inline bool HomeNestBackend::recruit_succeeded_ant(AntId a) const {
  HH_EXPECTS(a < cfg_.num_ants);
  if (!pairing_current_) return false;
  if (requests_ant_indexed_) {
    return pairing_scratch_.recruit_succeeded[a] != 0;
  }
  const std::uint32_t idx = request_index_[a];
  if (idx == kNoRequest) return false;
  return pairing_scratch_.recruit_succeeded[idx] != 0;
}

/// The pre-seam name for the default backend. Kept as a first-class alias:
/// "Environment" is this world's name throughout the paper commentary and
/// the per-object ant API (core::Ant::observe takes one), and the alias
/// keeps those call sites honest without a mass rename.
using Environment = HomeNestBackend;

}  // namespace hh::env

#endif  // HH_ENV_ENVIRONMENT_HPP
