#include "env/scheduler.hpp"

#include "util/contracts.hpp"

namespace hh::env {

PartialSynchronyScheduler::PartialSynchronyScheduler(double skip_probability)
    : skip_probability_(skip_probability) {
  HH_EXPECTS(skip_probability >= 0.0 && skip_probability < 1.0);
}

bool PartialSynchronyScheduler::awake(AntId, std::uint32_t round,
                                      util::Rng& rng) {
  if (round == 0) return true;  // never skip the initial search round
  return !rng.bernoulli(skip_probability_);
}

std::unique_ptr<Scheduler> make_scheduler(double skip_probability) {
  if (skip_probability <= 0.0) return std::make_unique<SynchronousScheduler>();
  return std::make_unique<PartialSynchronyScheduler>(skip_probability);
}

}  // namespace hh::env
