#include "env/pairing.hpp"

#include <memory>

#include "util/contracts.hpp"

namespace hh::env {

PairingResult PermutationPairing::pair(std::span<const RecruitRequest> requests,
                                       util::Rng& rng) const {
  const std::size_t m = requests.size();
  PairingResult result;
  result.recruited_by.assign(m, kNotRecruited);
  result.recruit_succeeded.assign(m, false);
  if (m == 0) return result;

  // P: uniform random permutation of all ants in R (Algorithm 1, tie-breaker).
  const std::vector<std::uint32_t> perm = util::random_permutation(m, rng);

  // First loop of Algorithm 1: build M in permutation order.
  for (std::uint32_t x : perm) {
    const RecruitRequest& req = requests[x];
    // Line 3: a_P(i) ∈ S (active) and not already recruited. An ant can
    // appear as recruiter at most once because each x is visited once.
    if (!req.active || result.recruited_by[x] != kNotRecruited) continue;
    // Line 4: a' drawn uniformly from ALL of R — self-recruitment possible.
    const auto chosen = static_cast<std::uint32_t>(rng.uniform_u64(m));
    // Line 5: a' must not already be a recruiter nor recruited.
    if (result.recruit_succeeded[chosen] ||
        result.recruited_by[chosen] != kNotRecruited) {
      continue;  // no retry: the recruiter simply fails this round
    }
    result.recruit_succeeded[x] = true;
    result.recruited_by[chosen] = static_cast<std::int32_t>(x);
  }
  return result;
}

PairingResult UniformProposalPairing::pair(std::span<const RecruitRequest> requests,
                                           util::Rng& rng) const {
  const std::size_t m = requests.size();
  PairingResult result;
  result.recruited_by.assign(m, kNotRecruited);
  result.recruit_succeeded.assign(m, false);
  if (m == 0) return result;

  // Phase 1: every active ant commits to a proposal target up front.
  std::vector<std::int32_t> proposal(m, kNotRecruited);
  for (std::size_t x = 0; x < m; ++x) {
    if (requests[x].active) {
      proposal[x] = static_cast<std::int32_t>(rng.uniform_u64(m));
    }
  }

  // Phase 2: per-target lottery — each proposed-to ant keeps one proposer
  // uniformly at random (reservoir sampling over its proposers).
  std::vector<std::int32_t> winner(m, kNotRecruited);
  std::vector<std::uint32_t> proposer_count(m, 0);
  for (std::size_t x = 0; x < m; ++x) {
    if (proposal[x] == kNotRecruited) continue;
    const auto t = static_cast<std::size_t>(proposal[x]);
    ++proposer_count[t];
    if (rng.uniform_u64(proposer_count[t]) == 0) {
      winner[t] = static_cast<std::int32_t>(x);
    }
  }

  // Phase 3: accept tentative matches in random order; endpoints exclusive.
  std::vector<std::uint32_t> order = util::random_permutation(m, rng);
  for (std::uint32_t t : order) {
    if (winner[t] == kNotRecruited) continue;
    const auto w = static_cast<std::size_t>(winner[t]);
    const bool target_free = result.recruited_by[t] == kNotRecruited &&
                             !result.recruit_succeeded[t];
    const bool recruiter_free = result.recruited_by[w] == kNotRecruited &&
                                !result.recruit_succeeded[w];
    // Self-proposal: the single endpoint only needs to be free once.
    if (w == t) {
      if (target_free) {
        result.recruit_succeeded[w] = true;
        result.recruited_by[t] = static_cast<std::int32_t>(w);
      }
      continue;
    }
    if (target_free && recruiter_free) {
      result.recruit_succeeded[w] = true;
      result.recruited_by[t] = static_cast<std::int32_t>(w);
    }
  }
  return result;
}

std::unique_ptr<PairingModel> make_pairing_model(PairingKind kind) {
  switch (kind) {
    case PairingKind::kPermutation:
      return std::make_unique<PermutationPairing>();
    case PairingKind::kUniformProposal:
      return std::make_unique<UniformProposalPairing>();
  }
  HH_ASSERT(false);
  return nullptr;
}

}  // namespace hh::env
