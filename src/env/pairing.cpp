#include "env/pairing.hpp"

#include <memory>

#include "util/contracts.hpp"

namespace hh::env {

void PairingScratch::reserve(std::size_t max_requests) {
  recruited_by.reserve(max_requests);
  recruit_succeeded.reserve(max_requests);
  perm.reserve(max_requests);
  active.reserve(max_requests);
  proposal.reserve(max_requests);
  winner.reserve(max_requests);
  proposer_count.reserve(max_requests);
}

PairingResult PairingModel::pair(std::span<const RecruitRequest> requests,
                                 util::Rng& rng) const {
  PairingScratch scratch;
  pair_into(requests, rng, scratch);
  PairingResult result;
  result.recruited_by = scratch.recruited_by;
  result.recruit_succeeded.assign(scratch.recruit_succeeded.begin(),
                                  scratch.recruit_succeeded.end());
  return result;
}

void PairingModel::pair_into(std::span<const RecruitRequest> requests,
                             util::Rng& rng, PairingScratch& scratch) const {
  // Pack the active flags to one sequential byte array: the matching
  // loops visit requests in random order, and a 1-byte load beats a
  // 12-byte RecruitRequest load for cache residency at large m.
  const std::size_t m = requests.size();
  scratch.active.resize(m);
  for (std::size_t x = 0; x < m; ++x) scratch.active[x] = requests[x].active;
  pair_active(scratch.active, rng, scratch);
}

void PermutationPairing::pair_active(std::span<const std::uint8_t> active,
                                     util::Rng& rng,
                                     PairingScratch& scratch) const {
  const std::size_t m = active.size();
  scratch.recruited_by.assign(m, kNotRecruited);
  scratch.recruit_succeeded.assign(m, 0);
  if (m == 0) return;

  // P: uniform random permutation of all ants in R (Algorithm 1, tie-breaker).
  util::random_permutation_into(scratch.perm, m, rng);

  // First loop of Algorithm 1: build M in permutation order.
  for (std::uint32_t x : scratch.perm) {
    // Line 3: a_P(i) ∈ S (active) and not already recruited. An ant can
    // appear as recruiter at most once because each x is visited once.
    if (!active[x] || scratch.recruited_by[x] != kNotRecruited) continue;
    // Line 4: a' drawn uniformly from ALL of R — self-recruitment possible.
    const auto chosen = static_cast<std::uint32_t>(rng.uniform_u64(m));
    // Line 5: a' must not already be a recruiter nor recruited.
    if (scratch.recruit_succeeded[chosen] != 0 ||
        scratch.recruited_by[chosen] != kNotRecruited) {
      continue;  // no retry: the recruiter simply fails this round
    }
    scratch.recruit_succeeded[x] = 1;
    scratch.recruited_by[chosen] = static_cast<std::int32_t>(x);
  }
}

void UniformProposalPairing::pair_active(std::span<const std::uint8_t> active,
                                         util::Rng& rng,
                                         PairingScratch& scratch) const {
  const std::size_t m = active.size();
  scratch.recruited_by.assign(m, kNotRecruited);
  scratch.recruit_succeeded.assign(m, 0);
  if (m == 0) return;

  // Phase 1: every active ant commits to a proposal target up front.
  scratch.proposal.assign(m, kNotRecruited);
  for (std::size_t x = 0; x < m; ++x) {
    if (active[x]) {
      scratch.proposal[x] = static_cast<std::int32_t>(rng.uniform_u64(m));
    }
  }

  // Phase 2: per-target lottery — each proposed-to ant keeps one proposer
  // uniformly at random (reservoir sampling over its proposers).
  scratch.winner.assign(m, kNotRecruited);
  scratch.proposer_count.assign(m, 0);
  for (std::size_t x = 0; x < m; ++x) {
    if (scratch.proposal[x] == kNotRecruited) continue;
    const auto t = static_cast<std::size_t>(scratch.proposal[x]);
    ++scratch.proposer_count[t];
    if (rng.uniform_u64(scratch.proposer_count[t]) == 0) {
      scratch.winner[t] = static_cast<std::int32_t>(x);
    }
  }

  // Phase 3: accept tentative matches in random order; endpoints exclusive.
  util::random_permutation_into(scratch.perm, m, rng);
  for (std::uint32_t t : scratch.perm) {
    if (scratch.winner[t] == kNotRecruited) continue;
    const auto w = static_cast<std::size_t>(scratch.winner[t]);
    const bool target_free = scratch.recruited_by[t] == kNotRecruited &&
                             scratch.recruit_succeeded[t] == 0;
    const bool recruiter_free = scratch.recruited_by[w] == kNotRecruited &&
                                scratch.recruit_succeeded[w] == 0;
    // Self-proposal: the single endpoint only needs to be free once.
    if (w == t) {
      if (target_free) {
        scratch.recruit_succeeded[w] = 1;
        scratch.recruited_by[t] = static_cast<std::int32_t>(w);
      }
      continue;
    }
    if (target_free && recruiter_free) {
      scratch.recruit_succeeded[w] = 1;
      scratch.recruited_by[t] = static_cast<std::int32_t>(w);
    }
  }
}

std::string_view pairing_name(PairingKind kind) {
  switch (kind) {
    case PairingKind::kPermutation: return "permutation";
    case PairingKind::kUniformProposal: return "uniform-proposal";
  }
  return "?";
}

std::optional<PairingKind> pairing_from_name(std::string_view name) {
  for (const PairingKind kind :
       {PairingKind::kPermutation, PairingKind::kUniformProposal}) {
    if (pairing_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<PairingModel> make_pairing_model(PairingKind kind) {
  switch (kind) {
    case PairingKind::kPermutation:
      return std::make_unique<PermutationPairing>();
    case PairingKind::kUniformProposal:
      return std::make_unique<UniformProposalPairing>();
  }
  HH_ASSERT(false);
  return nullptr;
}

}  // namespace hh::env
