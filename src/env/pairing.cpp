#include "env/pairing.hpp"

#include <memory>

#include "util/contracts.hpp"

namespace hh::env {

void PairingScratch::reserve(std::size_t max_requests) {
  recruited_by.reserve(max_requests);
  recruit_succeeded.reserve(max_requests);
  perm.reserve(max_requests);
  active.reserve(max_requests);
  proposal.reserve(max_requests);
  winner.reserve(max_requests);
  proposer_count.reserve(max_requests);
  ticket.reserve(max_requests);
}

PairingResult PairingModel::pair(std::span<const RecruitRequest> requests,
                                 util::Rng& rng) const {
  PairingScratch scratch;
  pair_into(requests, rng, scratch);
  PairingResult result;
  result.recruited_by = scratch.recruited_by;
  result.recruit_succeeded.assign(scratch.recruit_succeeded.begin(),
                                  scratch.recruit_succeeded.end());
  return result;
}

void PairingModel::pair_into(std::span<const RecruitRequest> requests,
                             const PairingCtx& ctx,
                             PairingScratch& scratch) const {
  // Pack the active flags to one sequential byte array: the matching
  // loops visit requests in random order, and a 1-byte load beats a
  // 12-byte RecruitRequest load for cache residency at large m.
  const std::size_t m = requests.size();
  scratch.active.resize(m);
  for (std::size_t x = 0; x < m; ++x) scratch.active[x] = requests[x].active;
  pair_active(scratch.active, ctx, scratch);
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void PermutationPairing::pair_active(std::span<const std::uint8_t> active,
                                     const PairingCtx& ctx,
                                     PairingScratch& scratch) const {
  util::Rng& rng = ctx.rng;
  const std::size_t m = active.size();
  scratch.recruited_by.assign(m, kNotRecruited);
  scratch.recruit_succeeded.assign(m, 0);
  if (m == 0) return;

  // P: uniform random permutation of all ants in R (Algorithm 1, tie-breaker).
  util::random_permutation_into(scratch.perm, m, rng);

  // The draw count of the loop below is data-dependent (an active ant
  // visited after being recruited draws nothing), so BatchedDraws needs a
  // running LOWER bound on the draws still to come. Track u = active ants
  // neither visited nor recruited yet: each future draw removes one such
  // ant by drawing and at most one more by recruiting it, and the current
  // draw can recruit one too, so u <= 2*future + 1, i.e. at least
  // 1 + floor((u - 1) / 2) draws (including the current one) remain.
  // Re-decrementing u for a chosen ant that already drew only tightens
  // the bound, so no visited bookkeeping is needed.
  std::size_t u = 0;
  for (const std::uint8_t b : active) u += b ? 1u : 0u;
  util::BatchedDraws draws(rng);

  // First loop of Algorithm 1: build M in permutation order.
  for (std::uint32_t x : scratch.perm) {
    // Line 3: a_P(i) ∈ S (active) and not already recruited. An ant can
    // appear as recruiter at most once because each x is visited once.
    if (!active[x] || scratch.recruited_by[x] != kNotRecruited) continue;
    // x leaves the pool by drawing now. u may already have been spent on
    // x's behalf (a recruitment decrement can land on an ant that had
    // drawn), so clamp at 0 — an undercount only tightens the bound.
    if (u > 0) --u;
    const std::size_t remaining = 1 + (u > 0 ? (u - 1) / 2 : 0);
    // Line 4: a' drawn uniformly from ALL of R — self-recruitment possible.
    const auto chosen = static_cast<std::uint32_t>(draws.uniform(m, remaining));
    // Line 5: a' must not already be a recruiter nor recruited.
    if (scratch.recruit_succeeded[chosen] != 0 ||
        scratch.recruited_by[chosen] != kNotRecruited) {
      continue;  // no retry: the recruiter simply fails this round
    }
    scratch.recruit_succeeded[x] = 1;
    scratch.recruited_by[chosen] = static_cast<std::int32_t>(x);
    if (active[chosen] && chosen != x && u > 0) --u;  // chosen will not draw
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void UniformProposalPairing::pair_active(std::span<const std::uint8_t> active,
                                         const PairingCtx& ctx,
                                         PairingScratch& scratch) const {
  util::Rng& rng = ctx.rng;
  const std::size_t m = active.size();
  scratch.recruited_by.assign(m, kNotRecruited);
  scratch.recruit_succeeded.assign(m, 0);
  if (m == 0) return;

  // Phase 1: every active ant commits to a proposal target up front.
  // The draw count is known (one per active ant), so the draws are bulk-
  // generated into the u64 lane and scattered — same values, same order,
  // same stream advance as drawing inside the loop.
  std::size_t n_active = 0;
  for (const std::uint8_t b : active) n_active += b ? 1u : 0u;
  scratch.ticket.resize(n_active);  // lint: capacity-reserved
  rng.uniform_u64_into(std::span<std::uint64_t>(scratch.ticket.data(), n_active),
                       m);
  scratch.proposal.assign(m, kNotRecruited);
  std::size_t next_draw = 0;
  for (std::size_t x = 0; x < m; ++x) {
    if (active[x]) {
      scratch.proposal[x] =
          static_cast<std::int32_t>(scratch.ticket[next_draw++]);
    }
  }

  // Phase 2: per-target lottery — each proposed-to ant keeps one proposer
  // uniformly at random (reservoir sampling over its proposers). Exactly
  // one draw per proposer, so the remaining-draw count is exact.
  scratch.winner.assign(m, kNotRecruited);
  scratch.proposer_count.assign(m, 0);
  util::BatchedDraws draws(rng);
  std::size_t lottery_left = n_active;
  for (std::size_t x = 0; x < m; ++x) {
    if (scratch.proposal[x] == kNotRecruited) continue;
    const auto t = static_cast<std::size_t>(scratch.proposal[x]);
    ++scratch.proposer_count[t];
    if (draws.uniform(scratch.proposer_count[t], lottery_left) == 0) {
      scratch.winner[t] = static_cast<std::int32_t>(x);
    }
    --lottery_left;
  }

  // Phase 3: accept tentative matches in random order; endpoints exclusive.
  util::random_permutation_into(scratch.perm, m, rng);
  for (std::uint32_t t : scratch.perm) {
    if (scratch.winner[t] == kNotRecruited) continue;
    const auto w = static_cast<std::size_t>(scratch.winner[t]);
    const bool target_free = scratch.recruited_by[t] == kNotRecruited &&
                             scratch.recruit_succeeded[t] == 0;
    const bool recruiter_free = scratch.recruited_by[w] == kNotRecruited &&
                                scratch.recruit_succeeded[w] == 0;
    // Self-proposal: the single endpoint only needs to be free once.
    if (w == t) {
      if (target_free) {
        scratch.recruit_succeeded[w] = 1;
        scratch.recruited_by[t] = static_cast<std::int32_t>(w);
      }
      continue;
    }
    if (target_free && recruiter_free) {
      scratch.recruit_succeeded[w] = 1;
      scratch.recruited_by[t] = static_cast<std::int32_t>(w);
    }
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void CounterLotteryPairing::pair_active(std::span<const std::uint8_t> active,
                                        const PairingCtx& ctx,
                                        PairingScratch& scratch) const {
  const std::size_t m = active.size();
  scratch.recruited_by.assign(m, kNotRecruited);
  scratch.recruit_succeeded.assign(m, 0);
  if (m == 0) return;

  // Keyed calls (the engine path) draw nothing from the shared stream;
  // unkeyed ad-hoc calls derive an ephemeral key with one draw so the
  // matching stays a deterministic function of the rng state.
  const bool keyed = ctx.round != 0;
  const std::uint64_t seed = keyed ? ctx.seed : ctx.rng();
  const std::uint64_t round = keyed ? ctx.round : 1u;

  // Fused propose + lottery pass: slot x's draws come from its own
  // counter stream, so no slot reads another slot's randomness and the
  // loop carries no data dependence beyond the per-target lottery cell.
  // That cell is ONE u64 in the ticket lane — (ticket high half << 32) |
  // (m - x), 0 = no proposer yet — rather than separate winner/ticket
  // lanes: the lottery's random scatter then touches half the cache
  // lines, which is what the propose loop's throughput is bound by at
  // large m. Max keeps the highest ticket; equal 32-bit tickets (~2^-32
  // per colliding pair) fall through to the slot code, where the EARLIER
  // slot carries the larger m - x — so ties keep the earlier slot and
  // the result is order-independent. m - x is never 0, so a real entry
  // never collides with the empty sentinel.
  // The (seed, round) half of the mix_seed() key is loop-invariant;
  // hoisting it (mix_seed_prefix) leaves one multiply + one SplitMix64
  // squeeze per slot and produces bit-identical keys.
  scratch.ticket.assign(m, 0);
  const std::uint64_t key_prefix = util::mix_seed_prefix(seed, round);

  // Compact the active slots into a dense index list first (branchless:
  // unconditional store, predicated advance). The flags are irregular at
  // steady state, so `if (!active[x]) continue` inside the propose loop
  // costs a mispredict every transition; a 3-op/slot compaction pass
  // followed by a branch-free sweep over the survivors is cheaper for
  // every density. Slot order is preserved, so draws and tie-breaks are
  // identical to the naive scan. The proposal lane is the counter
  // model's compaction arena (the sequential models own it otherwise).
  scratch.proposal.resize(m);  // lint: capacity-reserved
  std::size_t n_active = 0;
  for (std::size_t x = 0; x < m; ++x) {
    scratch.proposal[n_active] = static_cast<std::int32_t>(x);
    n_active += active[x] ? 1u : 0u;
  }
  for (std::size_t i = 0; i < n_active; ++i) {
    const auto x = static_cast<std::size_t>(
        static_cast<std::uint32_t>(scratch.proposal[i]));
    util::SplitMix64 stream(util::mix_seed(key_prefix, 0, x));
    const auto t = static_cast<std::size_t>(stream.bounded(m));
    const std::uint64_t entry = (stream.next() & 0xffffffff00000000ULL) |
                                static_cast<std::uint64_t>(m - x);
    if (entry > scratch.ticket[t]) scratch.ticket[t] = entry;
  }

  // Acceptance in target-index order, draw-free. Tentative matches are
  // exchangeable across slots (the draws above are iid per slot), so a
  // fixed order yields the same matching distribution as the uniform-
  // proposal model's random-permutation acceptance. Same compaction
  // trick: gather the proposed-to targets (winner lane as arena), then
  // resolve them scan-free in ascending-t order.
  scratch.winner.resize(m);  // lint: capacity-reserved
  std::size_t n_hit = 0;
  for (std::size_t t = 0; t < m; ++t) {
    scratch.winner[n_hit] = static_cast<std::int32_t>(t);
    n_hit += scratch.ticket[t] != 0 ? 1u : 0u;
  }
  for (std::size_t i = 0; i < n_hit; ++i) {
    const auto t = static_cast<std::size_t>(
        static_cast<std::uint32_t>(scratch.winner[i]));
    const std::uint64_t entry = scratch.ticket[t];
    const auto w = static_cast<std::size_t>(
        m - static_cast<std::size_t>(entry & 0xffffffffULL));
    const bool target_free = scratch.recruited_by[t] == kNotRecruited &&
                             scratch.recruit_succeeded[t] == 0;
    if (w == t) {
      // Self-proposal: the single endpoint only needs to be free once.
      if (target_free) {
        scratch.recruit_succeeded[w] = 1;
        scratch.recruited_by[t] = static_cast<std::int32_t>(w);
      }
      continue;
    }
    const bool recruiter_free = scratch.recruited_by[w] == kNotRecruited &&
                                scratch.recruit_succeeded[w] == 0;
    if (target_free && recruiter_free) {
      scratch.recruit_succeeded[w] = 1;
      scratch.recruited_by[t] = static_cast<std::int32_t>(w);
    }
  }
}

std::string_view pairing_name(PairingKind kind) {
  switch (kind) {
    case PairingKind::kPermutation: return "permutation";
    case PairingKind::kUniformProposal: return "uniform-proposal";
    case PairingKind::kCounter: return "counter-lottery";
  }
  return "?";
}

std::optional<PairingKind> pairing_from_name(std::string_view name) {
  for (const PairingKind kind :
       {PairingKind::kPermutation, PairingKind::kUniformProposal,
        PairingKind::kCounter}) {
    if (pairing_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<PairingModel> make_pairing_model(PairingKind kind) {
  switch (kind) {
    case PairingKind::kPermutation:
      return std::make_unique<PermutationPairing>();
    case PairingKind::kUniformProposal:
      return std::make_unique<UniformProposalPairing>();
    case PairingKind::kCounter:
      return std::make_unique<CounterLotteryPairing>();
  }
  HH_ASSERT(false);
  return nullptr;
}

}  // namespace hh::env
