// anthill — umbrella header for the public API.
//
// A C++20 library reproducing "Distributed House-Hunting in Ant Colonies"
// (Ghaffari, Musco, Radeva, Lynch; PODC 2015): the synchronous ant-colony
// model of Section 2, the optimal O(log n) algorithm of Section 4, the
// simple O(k log n) algorithm of Section 5, the Section 3 lower-bound
// experiment, and the Section 6 extensions (noise, faults, partial
// synchrony, boosted rates, non-binary qualities) plus baselines.
//
// Quick start — one simulation:
//
//   #include "anthill.hpp"
//
//   hh::core::SimulationConfig cfg;
//   cfg.num_ants = 256;
//   cfg.qualities = {1.0, 0.0, 1.0, 0.0};   // nests n1..n4
//   cfg.seed = 42;
//   hh::core::Simulation sim(cfg, hh::core::AlgorithmKind::kSimple);
//   hh::core::RunResult result = sim.run();
//   // result.winner is a quality-1 nest; result.rounds = O(k log n) whp.
//
// Quick start — an experiment sweep (the theorems are with-high-probability
// statements, so the real workload is thousands of trials per condition):
//
//   auto spec = hh::analysis::SweepSpec("crossover")
//                   .algorithms({hh::core::AlgorithmKind::kSimple,
//                                hh::core::AlgorithmKind::kOptimal})
//                   .colony_sizes({1u << 10, 1u << 14})
//                   .nest_counts({2, 8, 32});
//   hh::analysis::Runner runner;  // std::thread pool, all cores
//   auto batch = runner.run(spec, /*trials=*/200, /*base_seed=*/42);
//   std::cout << batch.tidy_table().render();
//   // bit-identical results at any thread count: per-trial seeds are
//   // derived from (base_seed, scenario index, trial index).
//
// Layering (lower layers never include higher ones):
//   util/      rng, stats, fits, tables, plots, contracts
//   env/       the Section 2 model: nests, actions, pairing, environment
//   core/      the algorithms, colonies, simulation driver, lower bound,
//              and the string-keyed algorithm registry (registry.hpp)
//   analysis/  scenarios + sweeps (scenario.hpp), the parallel batch
//              runner (runner.hpp), aggregation, and report emission
//   service/   the resident sweep daemon (anthill-serve), its NDJSON
//              protocol, and the streaming client
#ifndef HH_ANTHILL_HPP
#define HH_ANTHILL_HPP

#include "analysis/cli.hpp"
#include "analysis/experiment.hpp"
#include "analysis/manifest.hpp"
#include "analysis/metrics.hpp"
#include "analysis/report.hpp"
#include "analysis/result_store.hpp"
#include "analysis/runner.hpp"
#include "analysis/scenario.hpp"
#include "analysis/spec.hpp"
#include "core/ant.hpp"
#include "core/ant_pack.hpp"
#include "core/capabilities.hpp"
#include "core/colony.hpp"
#include "core/convergence.hpp"
#include "core/idle_search_ant.hpp"
#include "core/optimal_ant.hpp"
#include "core/quality_aware_ant.hpp"
#include "core/quorum_ant.hpp"
#include "core/rate_boosted_ant.hpp"
#include "core/registry.hpp"
#include "core/rumor_spread.hpp"
#include "core/simple_ant.hpp"
#include "core/simulation.hpp"
#include "core/uniform_recruit_ant.hpp"
#include "core/walker_ant.hpp"
#include "env/action.hpp"
#include "env/backend.hpp"
#include "env/environment.hpp"
#include "env/faults.hpp"
#include "env/lattice.hpp"
#include "env/nest.hpp"
#include "env/observation.hpp"
#include "env/pairing.hpp"
#include "env/scheduler.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/ascii_plot.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/fit.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#endif  // HH_ANTHILL_HPP
