// Thin client for anthill-serve: connects over localhost TCP, submits an
// ExperimentSpec, tails the job's NDJSON event stream, and hands back the
// streamed tidy tables so callers can write EXACTLY the CSVs the offline
// drivers write (same CsvWriter, same spec_<sweep>.csv naming — the
// byte-identity contract tests/test_service.cpp pins).
#ifndef HH_SERVICE_CLIENT_HPP
#define HH_SERVICE_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/spec.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hh::service {

/// One sweep's streamed result: the tidy CSV table plus the cache split.
struct SweepResult {
  std::string sweep;            ///< sweep entry name
  std::string csv_name;         ///< server-side spec_csv_name(sweep)
  std::vector<std::string> csv_header;
  std::vector<std::vector<double>> rows;
  std::size_t cells_total = 0;
  std::size_t cached = 0;
  std::size_t run = 0;
};

/// Outcome of one submitted job after its stream completed.
struct JobOutcome {
  bool ok = false;
  std::string error;            ///< set when !ok
  std::string job_id;           ///< "job-NNNNNN" once accepted
  std::size_t cells_total = 0;
  std::size_t cached = 0;
  std::size_t run = 0;
  std::size_t progress_events = 0;
  std::string record_path;      ///< server-side job record, "" if unwritten
  std::vector<SweepResult> sweeps;
};

/// Raw progress callback: the body of each "progress" event.
using ProgressEventFn = std::function<void(const util::Json& body)>;

class Client {
 public:
  /// Connect and consume the server's hello event. Check connected();
  /// error() explains a failure.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// From the hello event.
  [[nodiscard]] const std::string& server_store_dir() const {
    return store_dir_;
  }
  [[nodiscard]] std::size_t server_store_records() const {
    return store_records_;
  }

  /// Round-trip a ping; false on any transport/protocol failure.
  [[nodiscard]] bool ping();

  /// Fetch the server's status event body (null Json on failure, with
  /// error() set).
  [[nodiscard]] util::Json status();

  /// Ask the server to shut down (waits for its "bye").
  [[nodiscard]] bool shutdown_server();

  /// Submit `spec` and tail the stream until job_done/error. Progress
  /// events (if any) are forwarded to `on_progress`.
  [[nodiscard]] JobOutcome submit(const analysis::ExperimentSpec& spec,
                                  const ProgressEventFn& on_progress = {});

  /// Movable (connect returns by value): the reader is rebound to the
  /// moved socket, preserving any buffered bytes.
  Client(Client&& other) noexcept
      : socket_(std::move(other.socket_)),
        reader_(std::move(other.reader_)),
        error_(std::move(other.error_)),
        store_dir_(std::move(other.store_dir_)),
        store_records_(other.store_records_) {
    reader_.rebind(socket_);
  }
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() = default;

 private:
  Client() = default;

  /// Send one request line; false (and error_) on failure.
  bool send(const Request& request);
  /// Read the next event line; false (and error_) on EOF/parse failure.
  bool next_event(Event& event);

  util::net::Socket socket_;
  util::net::LineReader reader_{socket_};
  std::string error_;
  std::string store_dir_;
  std::size_t store_records_ = 0;
};

/// Write every sweep's CSV under `out_dir` (created on demand) with the
/// same bytes `bench_spec --spec` writes to bench_out/: CsvWriter, header
/// then rows. Returns the written paths; on any I/O failure stops and
/// returns what was written so far with `ok` false via the outcome param.
std::vector<std::string> write_outcome_csvs(const JobOutcome& outcome,
                                            const std::string& out_dir);

}  // namespace hh::service

#endif  // HH_SERVICE_CLIENT_HPP
