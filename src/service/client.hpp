// Thin client for anthill-serve: connects over localhost TCP, submits an
// ExperimentSpec, tails the job's NDJSON event stream, and hands back the
// streamed tidy tables so callers can write EXACTLY the CSVs the offline
// drivers write (same CsvWriter, same spec_<sweep>.csv naming — the
// byte-identity contract tests/test_service.cpp pins).
//
// Fault model (DESIGN.md §8): a dropped connection mid-stream surfaces as
// a failed outcome with transport_lost set; submit_with_retry /
// reattach_with_retry reconnect with decorrelated-jitter backoff and
// resume the job by id, so a daemon restart in the middle of a sweep is
// invisible to the caller beyond added latency.
#ifndef HH_SERVICE_CLIENT_HPP
#define HH_SERVICE_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/spec.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hh::service {

/// One sweep's streamed result: the tidy CSV table plus the cache split.
struct SweepResult {
  std::string sweep;            ///< sweep entry name
  std::string csv_name;         ///< server-side spec_csv_name(sweep)
  std::vector<std::string> csv_header;
  std::vector<std::vector<double>> rows;
  std::size_t cells_total = 0;
  std::size_t cached = 0;
  std::size_t run = 0;
};

/// Outcome of one submitted job after its stream completed.
struct JobOutcome {
  bool ok = false;
  std::string error;            ///< set when !ok
  /// The connection died (or the server dropped us) before a terminal
  /// event — the retry helpers reconnect and reattach on this; a server-
  /// reported failure (error / canceled event) leaves it false.
  bool transport_lost = false;
  std::string job_id;           ///< "job-NNNNNN" once accepted
  std::size_t cells_total = 0;
  std::size_t cached = 0;
  std::size_t run = 0;
  std::size_t progress_events = 0;
  std::size_t heartbeats = 0;   ///< "hb" events observed while tailing
  std::string record_path;      ///< server-side job record, "" if unwritten
  std::vector<SweepResult> sweeps;
};

/// Raw progress callback: the body of each "progress" event.
using ProgressEventFn = std::function<void(const util::Json& body)>;

class Client {
 public:
  /// Connect and consume the server's hello event. Check connected();
  /// error() explains a failure.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// From the hello event.
  [[nodiscard]] const std::string& server_store_dir() const {
    return store_dir_;
  }
  [[nodiscard]] std::size_t server_store_records() const {
    return store_records_;
  }

  /// Round-trip a ping; false on any transport/protocol failure.
  [[nodiscard]] bool ping();

  /// Fetch the server's status event body (null Json on failure, with
  /// error() set).
  [[nodiscard]] util::Json status();

  /// Ask the server to shut down (waits for its "bye").
  [[nodiscard]] bool shutdown_server();

  /// Submit `spec` and tail the stream until job_done/error. Progress
  /// events (if any) are forwarded to `on_progress`.
  [[nodiscard]] JobOutcome submit(const analysis::ExperimentSpec& spec,
                                  const ProgressEventFn& on_progress = {});

  /// Reattach to `job_id` ("job-NNNNNN" or bare digits): the server
  /// re-runs the job's recorded spec under its original id — every cell a
  /// previous life flushed is served from cache — and this client tails
  /// the stream exactly like submit().
  [[nodiscard]] JobOutcome reattach(const std::string& job_id,
                                    const ProgressEventFn& on_progress = {});

  /// Ask the server to stop `job_id`. True once the server acks with
  /// cancel_ok; false (with error()) for unknown/terminal jobs or
  /// transport failure.
  [[nodiscard]] bool cancel(const std::string& job_id);

  /// Movable (connect returns by value): the reader is rebound to the
  /// moved socket, preserving any buffered bytes.
  Client(Client&& other) noexcept
      : socket_(std::move(other.socket_)),
        reader_(std::move(other.reader_)),
        error_(std::move(other.error_)),
        store_dir_(std::move(other.store_dir_)),
        store_records_(other.store_records_) {
    reader_.rebind(socket_);
  }
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() = default;

 private:
  Client() = default;

  /// Send one request line; false (and error_) on failure.
  bool send(const Request& request);
  /// Read the next event line; false (and error_) on EOF/parse failure.
  bool next_event(Event& event);
  /// Shared submit/reattach tail loop.
  JobOutcome tail_job(const ProgressEventFn& on_progress);

  util::net::Socket socket_;
  util::net::LineReader reader_{socket_};
  std::string error_;
  std::string store_dir_;
  std::size_t store_records_ = 0;
};

/// Reconnect policy for the retry helpers. Backoff is decorrelated
/// jitter (AWS architecture-blog variant): each delay is drawn uniformly
/// from [base_ms, prev * 3] and capped, which spreads a thundering herd
/// of reattaching clients without a coordination channel.
struct RetryPolicy {
  unsigned max_attempts = 5;   ///< total connection attempts (>= 1)
  unsigned base_ms = 50;       ///< backoff floor
  unsigned cap_ms = 2000;      ///< backoff ceiling
  std::uint64_t seed = 1;      ///< jitter stream seed (deterministic tests)
};

/// One backoff step: the delay to sleep before attempt `attempt` (1-based;
/// attempt 1 never sleeps and returns 0). `prev_ms` is the last returned
/// delay (0 before the first). Exposed for tests — the retry helpers use
/// exactly this sequence.
[[nodiscard]] unsigned next_backoff_ms(const RetryPolicy& policy,
                                       unsigned attempt, unsigned prev_ms,
                                       std::uint64_t stream);

/// Submit with automatic reconnect: dial, submit, tail; when the
/// transport dies mid-stream, back off, reconnect, and — once a job id
/// was assigned — reattach to it instead of resubmitting (no duplicate
/// job records). Non-transport failures (server error events, cancel)
/// return immediately. The final outcome is the last attempt's.
[[nodiscard]] JobOutcome submit_with_retry(
    const std::string& host, std::uint16_t port,
    const analysis::ExperimentSpec& spec, const RetryPolicy& policy = {},
    const ProgressEventFn& on_progress = {});

/// Reattach with the same reconnect loop (for `--reattach` after a daemon
/// or client death).
[[nodiscard]] JobOutcome reattach_with_retry(
    const std::string& host, std::uint16_t port, const std::string& job_id,
    const RetryPolicy& policy = {}, const ProgressEventFn& on_progress = {});

/// Write every sweep's CSV under `out_dir` (created on demand) with the
/// same bytes `bench_spec --spec` writes to bench_out/: CsvWriter, header
/// then rows. Returns the written paths; on any I/O failure stops and
/// returns what was written so far with `ok` false via the outcome param.
std::vector<std::string> write_outcome_csvs(const JobOutcome& outcome,
                                            const std::string& out_dir);

}  // namespace hh::service

#endif  // HH_SERVICE_CLIENT_HPP
