// Job model of the sweep service: a submitted ExperimentSpec plus the
// event sink that streams its lifecycle back to the submitting session,
// and the thread-safe FIFO the scheduler thread drains.
//
// Lifecycle (DESIGN.md §7): queued -> running -> done | failed. Queued
// jobs that are still pending when the server shuts down are cancelled
// (their sinks get a final error event).
#ifndef HH_SERVICE_JOB_HPP
#define HH_SERVICE_JOB_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/spec.hpp"

namespace hh::service {

/// Delivers one encoded NDJSON event line (no trailing '\n') to whoever
/// is watching a job. May be invoked from the scheduler thread; must be
/// safe to call after the watching session died (sinks swallow dead
/// sockets — see Server::session_sink).
using EventSink = std::function<void(const std::string& line)>;

struct Job {
  std::uint64_t id = 0;
  analysis::ExperimentSpec spec;
  EventSink sink;  ///< may be empty (fire-and-forget submission)

  /// Display id, e.g. "job-000007" — what every event's "job" field holds.
  [[nodiscard]] std::string display_id() const;
};

/// Thread-safe submission queue: sessions push, the single scheduler
/// thread pops. close() wakes every popper and hands back the jobs that
/// never ran so the server can cancel them loudly.
class JobQueue {
 public:
  /// Enqueue and return the assigned job id (1-based, monotonic), or 0
  /// when the queue is already closed. `accepted`, when set, is invoked
  /// with the id BEFORE the job becomes poppable — the server's hook for
  /// sending the "accepted" event strictly ahead of any scheduler event
  /// for the job (it runs under the queue lock; keep it brief).
  std::uint64_t submit(analysis::ExperimentSpec spec, EventSink sink,
                       const std::function<void(std::uint64_t)>& accepted = {});

  /// Block until a job or close(); nullopt once closed (pending jobs are
  /// NOT drained after close — they come back from close() instead).
  [[nodiscard]] std::optional<Job> pop();

  /// Close the queue: pop() returns nullopt from now on. Returns every
  /// job that was still pending, in submission order.
  std::vector<Job> close();

  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  std::uint64_t next_id_ = 1;
  bool closed_ = false;
};

}  // namespace hh::service

#endif  // HH_SERVICE_JOB_HPP
