// Job model of the sweep service: a submitted ExperimentSpec plus a
// shared control block that carries the watching session's event sink and
// the cooperative stop flag, and the thread-safe FIFO the scheduler
// thread drains.
//
// Lifecycle (DESIGN.md §7/§8): queued -> running -> done | failed |
// canceled | interrupted. Queued jobs still pending at shutdown are
// canceled; a running job hit by cancel or drain stops at its next block
// boundary (flushed shards keep everything it finished). Every state is
// persisted in jobs/job-NNNNNN.json, which is what reattach replays.
#ifndef HH_SERVICE_JOB_HPP
#define HH_SERVICE_JOB_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/spec.hpp"

namespace hh::service {

/// Delivers one encoded NDJSON event line (no trailing '\n') to whoever
/// is watching a job. May be invoked from the scheduler thread; must be
/// safe to call after the watching session died (sinks swallow dead
/// sockets — see Server::session_sink).
using EventSink = std::function<void(const std::string& line)>;

/// Shared between the session that watches a job and the scheduler that
/// runs it; outlives both (held by shared_ptr). Carries the cooperative
/// stop flag — checked by the scheduler at every block boundary — and the
/// swappable event sink, so a reattaching session can take over the
/// stream of a job another connection submitted.
class JobControl {
 public:
  enum Stop : int {
    kNone = 0,    ///< run to completion
    kCancel = 1,  ///< client cancel: record -> canceled
    kDrain = 2,   ///< server drain (SIGTERM): record -> interrupted
  };

  std::atomic<int> stop{kNone};

  /// Deliver one event line to the current sink (dropped when no sink).
  void emit(const std::string& line);

  /// Replace the sink (empty = detach). Thread-safe against emit().
  void set_sink(EventSink sink);

 private:
  std::mutex mutex_;
  EventSink sink_;
};

struct Job {
  std::uint64_t id = 0;
  analysis::ExperimentSpec spec;
  std::shared_ptr<JobControl> control;  ///< never null once submitted
  bool reattached = false;  ///< announce with "reattached", not "accepted"

  /// Display id, e.g. "job-000007" — what every event's "job" field holds.
  [[nodiscard]] std::string display_id() const;
};

/// Parse "job-000007", "job-7", or "7" into a job id. nullopt on anything
/// else (including id 0, which is never assigned).
[[nodiscard]] std::optional<std::uint64_t> parse_job_id(std::string_view text);

/// Thread-safe submission queue: sessions push, the single scheduler
/// thread pops. close() wakes every popper and hands back the jobs that
/// never ran so the server can cancel them loudly.
class JobQueue {
 public:
  /// Enqueue and return the job's id (job.id when preset — the reattach
  /// path — else the next monotonic id, 1-based), or 0 when the queue is
  /// already closed. `accepted`, when set, is invoked with the id BEFORE
  /// the job becomes poppable — the server's hook for sending the
  /// "accepted"/"reattached" event strictly ahead of any scheduler event
  /// for the job (it runs under the queue lock; keep it brief).
  std::uint64_t submit(Job job,
                       const std::function<void(std::uint64_t)>& accepted = {});

  /// Block until a job or close(); nullopt once closed (pending jobs are
  /// NOT drained after close — they come back from close() instead).
  [[nodiscard]] std::optional<Job> pop();

  /// Remove a still-queued job (the cancel path). nullopt when `id` is
  /// not pending — already popped, never queued, or finished.
  [[nodiscard]] std::optional<Job> remove(std::uint64_t id);

  /// Close the queue: pop() returns nullopt from now on. Returns every
  /// job that was still pending, in submission order.
  std::vector<Job> close();

  /// Never assign ids <= `id` again — called at daemon startup with the
  /// highest id found in the jobs/ directory, so job ids stay monotonic
  /// across restarts and a reattached id can never collide with a new
  /// submission's.
  void reserve_ids_through(std::uint64_t id);

  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  std::uint64_t next_id_ = 1;
  bool closed_ = false;
};

}  // namespace hh::service

#endif  // HH_SERVICE_JOB_HPP
