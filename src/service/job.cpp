#include "service/job.hpp"

#include <cstdio>
#include <utility>

namespace hh::service {

std::string Job::display_id() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "job-%06llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t JobQueue::submit(
    analysis::ExperimentSpec spec, EventSink sink,
    const std::function<void(std::uint64_t)>& accepted) {
  Job job;
  job.spec = std::move(spec);
  job.sink = std::move(sink);
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;  // shutting down: refuse, caller reports it
    id = job.id = next_id_++;
    if (accepted) accepted(id);  // under the lock: precedes any pop()
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
  return id;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (closed_) return std::nullopt;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  return job;
}

std::vector<Job> JobQueue::close() {
  std::vector<Job> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    orphans.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  ready_.notify_all();
  return orphans;
}

std::size_t JobQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace hh::service
