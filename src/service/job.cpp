#include "service/job.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace hh::service {

void JobControl::emit(const std::string& line) {
  // Copy the sink out so a slow send never blocks set_sink(); the copy is
  // cheap (std::function over a shared session pointer).
  EventSink sink;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink = sink_;
  }
  if (sink) sink(line);
}

void JobControl::set_sink(EventSink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

std::string Job::display_id() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "job-%06llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::optional<std::uint64_t> parse_job_id(std::string_view text) {
  if (text.starts_with("job-")) text.remove_prefix(4);
  if (text.empty() || text.size() > 19) return std::nullopt;
  std::uint64_t id = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (id == 0) return std::nullopt;
  return id;
}

std::uint64_t JobQueue::submit(
    Job job, const std::function<void(std::uint64_t)>& accepted) {
  if (job.control == nullptr) job.control = std::make_shared<JobControl>();
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;  // shutting down: refuse, caller reports it
    if (job.id == 0) {
      job.id = next_id_++;
    } else {
      // Reattach re-enqueues under the original id; keep fresh ids ahead.
      next_id_ = std::max(next_id_, job.id + 1);
    }
    id = job.id;
    if (accepted) accepted(id);  // under the lock: precedes any pop()
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
  return id;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (closed_) return std::nullopt;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  return job;
}

std::optional<Job> JobQueue::remove(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Job& job) { return job.id == id; });
  if (it == queue_.end()) return std::nullopt;
  Job job = std::move(*it);
  queue_.erase(it);
  return job;
}

std::vector<Job> JobQueue::close() {
  std::vector<Job> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    orphans.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  ready_.notify_all();
  return orphans;
}

void JobQueue::reserve_ids_through(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = std::max(next_id_, id + 1);
}

std::size_t JobQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace hh::service
