// The resident sweep daemon: accepts NDJSON requests over localhost TCP,
// schedules submitted ExperimentSpecs on a persistent Runner, dedups
// every (scenario_fingerprint, trial, trial_seed) cell against a shared
// ResultStore, and streams progress/aggregate events back to the
// submitting session.
//
// Threading model (DESIGN.md §7):
//   * accept thread      — serve_forever(): hands sockets to sessions;
//   * session threads    — one per connection: parse requests, enqueue
//                          jobs, answer ping/status inline. All writes to
//                          a session socket go through its own mutex, so
//                          scheduler events and inline replies interleave
//                          whole-line, never mid-byte;
//   * scheduler thread   — exactly ONE: owns the Runner and the store.
//                          Jobs run serially; the store reload()s before
//                          each job, so every job sees all cells any
//                          earlier job (or prior daemon life) persisted.
//                          Serial execution is what makes reload() safe —
//                          find() never races a writer in this process.
//
// Results are bit-identical to a cold `bench_spec --spec` run of the same
// spec: same Runner seeding, same store fingerprints, same tidy rows.
#ifndef HH_SERVICE_SERVER_HPP
#define HH_SERVICE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/result_store.hpp"
#include "analysis/runner.hpp"
#include "service/job.hpp"
#include "util/socket.hpp"

namespace hh::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;   ///< 0 = kernel-assigned (read back via port())
  std::string store_dir;    ///< REQUIRED: the shared result-store directory
  unsigned threads = 0;     ///< runner workers (0 = all cores)
  /// Writer namespace for this daemon's shards. Run N daemons against one
  /// store dir by giving each its own namespace.
  std::string writer_namespace = "serve";
};

class Server {
 public:
  /// Binds and opens the store. Throws std::runtime_error when the
  /// address can't be bound or store_dir is empty.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const analysis::ResultStore& store() const { return store_; }

  /// Accept loop; returns once request_stop() is called. Call directly
  /// (daemon main) or via start() (tests, in-process benches).
  void serve_forever();

  /// serve_forever() on a background thread.
  void start();

  /// Async stop: close the listener, cancel queued jobs (their sinks get
  /// an error event), let the in-flight job finish, then drop sessions.
  void request_stop();

  /// Join everything started by start()/serve_forever(). Idempotent.
  void wait();

 private:
  /// One connected client: its socket plus the write lock that keeps
  /// event lines whole under concurrent writers.
  struct Session {
    util::net::Socket socket;
    std::mutex write_mutex;
    std::atomic<bool> alive{true};
  };

  void session_loop(const std::shared_ptr<Session>& session);
  void scheduler_loop();
  void execute_job(Job& job);
  /// Persist the job record (<store>/jobs/job-NNNNNN.json); "" on failure.
  std::string write_job_record(const Job& job,
                               const util::Json& sweep_records);
  /// Send one event line to a session; marks it dead on failure.
  static void send_line(const std::shared_ptr<Session>& session,
                        const std::string& line);
  /// An EventSink bound to `session` (drops silently once it died).
  [[nodiscard]] static EventSink session_sink(
      const std::shared_ptr<Session>& session);
  [[nodiscard]] util::Json status_json();

  ServerOptions options_;
  util::net::Listener listener_;
  analysis::ResultStore store_;
  analysis::Runner runner_;
  JobQueue queue_;

  std::thread scheduler_;
  std::thread accept_thread_;       ///< only under start()
  std::vector<std::thread> session_threads_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::mutex sessions_mutex_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> jobs_done_{0};
  std::atomic<std::size_t> jobs_failed_{0};
  std::atomic<bool> job_running_{false};
  std::atomic<std::size_t> store_records_{0};
};

}  // namespace hh::service

#endif  // HH_SERVICE_SERVER_HPP
