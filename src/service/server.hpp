// The resident sweep daemon: accepts NDJSON requests over localhost TCP,
// schedules submitted ExperimentSpecs on a persistent Runner, dedups
// every (scenario_fingerprint, trial, trial_seed) cell against a shared
// ResultStore, and streams progress/aggregate events back to the
// submitting session.
//
// Threading model (DESIGN.md §7):
//   * accept thread      — serve_forever(): hands sockets to sessions;
//   * session threads    — one per connection: parse requests, enqueue
//                          jobs, answer ping/status inline, tick
//                          heartbeats and the idle deadline. All writes
//                          to a session socket go through its own mutex,
//                          so scheduler events and inline replies
//                          interleave whole-line, never mid-byte;
//   * scheduler thread   — exactly ONE: owns the Runner and the store.
//                          Jobs run serially; the store reload()s before
//                          each job, so every job sees all cells any
//                          earlier job (or prior daemon life) persisted.
//                          Serial execution is what makes reload() safe —
//                          find() never races a writer in this process.
//
// Fault model (DESIGN.md §8): every job's lifecycle state is persisted in
// <store>/jobs/job-NNNNNN.json (atomic tmp+rename) from acceptance on, so
// a client can reattach by id after either side dies; cancel and drain
// stop a running job cooperatively at its next block boundary, keeping
// every flushed cell cached. Job ids stay monotonic across daemon
// restarts, and records left non-terminal by a crash are marked
// "interrupted" at startup.
//
// Results are bit-identical to a cold `bench_spec --spec` run of the same
// spec: same Runner seeding, same store fingerprints, same tidy rows.
#ifndef HH_SERVICE_SERVER_HPP
#define HH_SERVICE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/result_store.hpp"
#include "analysis/runner.hpp"
#include "service/job.hpp"
#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace hh::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;   ///< 0 = kernel-assigned (read back via port())
  std::string store_dir;    ///< REQUIRED: the shared result-store directory
  unsigned threads = 0;     ///< runner workers (0 = all cores)
  /// Writer namespace for this daemon's shards. Run N daemons against one
  /// store dir by giving each its own namespace.
  std::string writer_namespace = "serve";
  /// Heartbeat cadence: every session receives an "hb" event at least
  /// this often while idle (0 = no heartbeats). Lets clients distinguish
  /// a slow sweep from a dead daemon.
  unsigned heartbeat_ms = 5000;
  /// Idle deadline: a session is dropped after this long with no inbound
  /// request AND no successfully sent event (0 = never). Heartbeats count
  /// as sends, so with them enabled only peers that stopped ACKing — or
  /// connected and never spoke with heartbeats off — are reaped.
  unsigned read_deadline_ms = 300000;
  /// Longest accepted request line; longer lines are discarded whole and
  /// answered with an error event (bounds per-session memory).
  std::size_t max_line_bytes = 8u << 20;
};

class Server {
 public:
  /// Binds, opens the store, and scans jobs/ — stale non-terminal records
  /// from a crashed daemon life are marked "interrupted" and the id
  /// counter resumes past the highest record. Throws std::runtime_error
  /// when the address can't be bound or store_dir is empty.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const analysis::ResultStore& store() const { return store_; }

  /// Accept loop; returns once request_stop() is called. Call directly
  /// (daemon main) or via start() (tests, in-process benches).
  void serve_forever();

  /// serve_forever() on a background thread.
  void start();

  /// Graceful drain (SIGTERM/shutdown verb): close the listener, cancel
  /// queued jobs (records -> "canceled", their watchers get a canceled
  /// event), and flag the in-flight job to stop at its next block
  /// boundary (record -> "interrupted"; every flushed cell stays cached
  /// for the reattach that finishes the job). Async; pair with wait().
  void request_stop();

  /// Join everything started by start()/serve_forever(). Idempotent.
  void wait();

 private:
  /// One connected client: its socket plus the write lock that keeps
  /// event lines whole under concurrent writers.
  struct Session {
    util::net::Socket socket;
    std::mutex write_mutex;
    std::atomic<bool> alive{true};
    /// steady-clock ms of the last successful send — half of the idle
    /// deadline (the other half, last receive, lives in session_loop).
    std::atomic<long long> last_tx_ms{0};
  };

  /// Where a job is in its lifecycle, mirrored by its on-disk record.
  enum class JobPhase {
    kQueued, kRunning, kDone, kFailed, kCanceled, kInterrupted
  };
  struct JobEntry {
    JobPhase phase = JobPhase::kQueued;
    std::shared_ptr<JobControl> control;
  };

  void session_loop(const std::shared_ptr<Session>& session);
  void handle_request(const std::shared_ptr<Session>& session,
                      const std::string& line);
  void handle_submit(const std::shared_ptr<Session>& session,
                     Request& request);
  void handle_reattach(const std::shared_ptr<Session>& session,
                       const Request& request);
  void handle_cancel(const std::shared_ptr<Session>& session,
                     const Request& request);
  void scheduler_loop();
  void execute_job(Job& job);

  void set_phase(std::uint64_t id, JobPhase phase);
  [[nodiscard]] std::filesystem::path jobs_dir() const;
  [[nodiscard]] std::filesystem::path record_path(std::uint64_t id) const;
  /// Persist a job record (atomic tmp+rename); "" on failure. `sweeps`
  /// (the per-sweep run manifests) is attached when non-null.
  std::string write_job_record(std::uint64_t id,
                               const analysis::ExperimentSpec& spec,
                               const char* state, const util::Json* sweeps,
                               const std::string& message);
  bool write_record_json(const std::filesystem::path& path,
                         const util::Json& record);
  [[nodiscard]] std::optional<util::Json> load_job_record(
      std::uint64_t id) const;
  /// Startup pass over jobs/: resume the id counter and mark records a
  /// dead daemon left "queued"/"running" as "interrupted".
  void scan_job_records();

  /// Send one event line to a session; marks it dead on failure.
  static void send_line(const std::shared_ptr<Session>& session,
                        const std::string& line);
  /// An EventSink bound to `session` (drops silently once it died).
  [[nodiscard]] static EventSink session_sink(
      const std::shared_ptr<Session>& session);
  [[nodiscard]] util::Json status_json();

  ServerOptions options_;
  util::net::Listener listener_;
  analysis::ResultStore store_;
  analysis::Runner runner_;
  JobQueue queue_;

  /// Jobs this daemon life has seen, by id — the cancel/reattach lookup
  /// table. Guarded by jobs_mutex_; never hold it while taking the queue
  /// lock (the submit path acquires queue -> jobs).
  std::map<std::uint64_t, JobEntry> jobs_;
  std::mutex jobs_mutex_;

  std::thread scheduler_;
  std::thread accept_thread_;       ///< only under start()
  std::vector<std::thread> session_threads_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::mutex sessions_mutex_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> jobs_done_{0};
  std::atomic<std::size_t> jobs_failed_{0};
  std::atomic<std::size_t> jobs_canceled_{0};
  std::atomic<std::size_t> jobs_interrupted_{0};
  std::atomic<bool> job_running_{false};
  std::atomic<std::size_t> store_records_{0};
  std::atomic<std::size_t> store_quarantined_{0};
  std::atomic<unsigned> record_nonce_{0};
};

}  // namespace hh::service

#endif  // HH_SERVICE_SERVER_HPP
