// The anthill-serve wire protocol: newline-delimited JSON (NDJSON) over a
// localhost TCP stream. One JSON object per line; requests flow client →
// server, events flow back. See DESIGN.md §7 for the full grammar and the
// job lifecycle state machine.
//
// Requests ("op"):
//   {"op":"ping"}                      -> {"event":"pong"}
//   {"op":"status"}                    -> {"event":"status",...}
//   {"op":"submit","spec":{...}}       -> accepted, then progress* /
//                                         sweep_done* / job_done | error
//   {"op":"reattach","job":"job-N"}    -> reattached, then the same event
//                                         stream as submit (v2)
//   {"op":"cancel","job":"job-N"}      -> cancel_ok | error; the watcher's
//                                         stream ends with canceled (v2)
//   {"op":"shutdown"}                  -> {"event":"bye"}, server drains
//
// Protocol v2 (additive over v1): reattach/cancel verbs; hb (periodic
// heartbeat), reattached, canceled, interrupted (drain hit a running
// job), and cancel_ok events. v1 clients skip unknown event kinds, so a
// v1 client against a v2 server still works for the v1 surface.
//
// The spec payload is the canonical serializable ExperimentSpec
// (analysis/spec.hpp) — the same document `driver --dump-spec` emits —
// so anything that can write a spec file can talk to the service.
//
// Tidy rows may contain NaN (a scenario that never swept an axis), and
// JSON has no NaN: the row codec transports non-finite doubles as `null`
// and restores NaN on decode. Every finite double round-trips exactly
// (util::format_double), which is what makes client-side CSV output
// byte-identical to the server's own.
#ifndef HH_SERVICE_PROTOCOL_HPP
#define HH_SERVICE_PROTOCOL_HPP

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/spec.hpp"
#include "util/json.hpp"

namespace hh::service {

inline constexpr int kProtocolVersion = 2;

/// A malformed request or event line (bad JSON, unknown op, missing
/// field). Sessions answer these with an error event, never by dying.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Request {
  enum class Op { kPing, kStatus, kSubmit, kReattach, kCancel, kShutdown };

  Op op = Op::kPing;
  analysis::ExperimentSpec spec;  ///< kSubmit only
  std::string job;                ///< kReattach/kCancel: "job-NNNNNN" or "N"
};

/// One request per line, compact canonical JSON (no newline appended).
[[nodiscard]] std::string encode_request(const Request& request);

/// Parse a request line. Throws ProtocolError on anything malformed.
[[nodiscard]] Request parse_request(std::string_view line);

/// A server event, decoded just enough to dispatch on: its kind plus the
/// whole body for kind-specific fields.
struct Event {
  std::string kind;
  util::Json body;
};

/// Serialize an event body (must be an object; "event" is set to `kind`
/// and ordered first). No newline appended.
[[nodiscard]] std::string encode_event(const std::string& kind,
                                       util::Json body);

/// Parse an event line. Throws ProtocolError when the line is not a JSON
/// object with a string "event" field.
[[nodiscard]] Event parse_event(std::string_view line);

/// Tidy-row transport: doubles, with non-finite values encoded as null
/// (JSON has no NaN) and decoded back to quiet NaN.
[[nodiscard]] util::Json rows_to_json(
    const std::vector<std::vector<double>>& rows);
[[nodiscard]] std::vector<std::vector<double>> rows_from_json(
    const util::Json& json);

/// String-array transport for CSV headers.
[[nodiscard]] util::Json strings_to_json(const std::vector<std::string>& v);
[[nodiscard]] std::vector<std::string> strings_from_json(
    const util::Json& json);

/// The CSV artifact name for one sweep — "spec_<name>" with every
/// non-alphanumeric byte replaced by '_'. THE naming contract between
/// bench_spec and anthill-client: both write bench_out/<this>.csv, which
/// is what makes their artifacts byte-comparable.
[[nodiscard]] std::string spec_csv_name(const std::string& sweep);

}  // namespace hh::service

#endif  // HH_SERVICE_PROTOCOL_HPP
