#include "service/server.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "analysis/manifest.hpp"
#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace hh::service {
namespace {

/// Total (scenario, trial) cells a spec will schedule.
std::size_t spec_cells(const analysis::ExperimentSpec& spec) {
  std::size_t cells = 0;
  for (const analysis::SweepEntry& entry : spec.sweeps) {
    cells += entry.size() * entry.trials;
  }
  return cells;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      listener_(util::net::Listener::bind_tcp(options_.host, options_.port)),
      store_([&] {
        if (options_.store_dir.empty()) {
          throw std::runtime_error("anthill-serve needs a store directory");
        }
        return options_.store_dir;
      }(), options_.writer_namespace),
      runner_(analysis::RunnerOptions{options_.threads}) {
  if (!listener_.valid()) {
    throw std::runtime_error("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port));
  }
  store_records_.store(store_.size());
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::serve_forever() {
  while (true) {
    util::net::Socket socket = listener_.accept();
    if (!socket.valid()) break;  // listener closed: stopping
    auto session = std::make_shared<Session>();
    session->socket = std::move(socket);
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stopping_.load()) break;  // raced request_stop: drop the socket
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { session_loop(session); });
  }
}

void Server::start() {
  accept_thread_ = std::thread([this] { serve_forever(); });
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  // Cancel everything still queued; the in-flight job (if any) finishes
  // and streams normally before the scheduler sees the closed queue.
  for (Job& orphan : queue_.close()) {
    if (orphan.sink) {
      util::Json body;
      body.set("job", orphan.display_id());
      body.set("message", "server shutting down before this job started");
      orphan.sink(encode_event("error", body));
    }
    jobs_failed_.fetch_add(1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_.joinable()) scheduler_.join();
  // Only after the scheduler drained: unblock session readers and join.
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    threads.swap(session_threads_);
    sessions.swap(sessions_);
  }
  for (const auto& session : sessions) session->socket.shutdown_both();
  for (std::thread& thread : threads) thread.join();
}

void Server::send_line(const std::shared_ptr<Session>& session,
                       const std::string& line) {
  if (!session->alive.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(session->write_mutex);
  if (!session->socket.send_all(line) || !session->socket.send_all("\n")) {
    session->alive.store(false, std::memory_order_release);
  }
}

EventSink Server::session_sink(const std::shared_ptr<Session>& session) {
  return [session](const std::string& line) { send_line(session, line); };
}

util::Json Server::status_json() {
  util::Json body;
  body.set("proto", kProtocolVersion);
  body.set("jobs_pending", static_cast<double>(queue_.pending()));
  body.set("job_running", job_running_.load());
  body.set("jobs_done", static_cast<double>(jobs_done_.load()));
  body.set("jobs_failed", static_cast<double>(jobs_failed_.load()));
  body.set("store_records", static_cast<double>(store_records_.load()));
  body.set("store_dir", options_.store_dir);
  return body;
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  {
    util::Json hello;
    hello.set("proto", kProtocolVersion);
    hello.set("server", "anthill-serve");
    hello.set("store_dir", options_.store_dir);
    hello.set("store_records", static_cast<double>(store_records_.load()));
    send_line(session, encode_event("hello", hello));
  }
  util::net::LineReader reader(session->socket);
  std::string line;
  while (session->alive.load(std::memory_order_acquire) &&
         reader.next_line(line)) {
    if (line.empty()) continue;
    Request request;
    try {
      request = parse_request(line);
    } catch (const ProtocolError& e) {
      util::Json body;
      body.set("message", e.what());
      send_line(session, encode_event("error", body));
      continue;
    }
    switch (request.op) {
      case Request::Op::kPing:
        send_line(session, encode_event("pong", util::Json()));
        break;
      case Request::Op::kStatus:
        send_line(session, encode_event("status", status_json()));
        break;
      case Request::Op::kSubmit: {
        const std::size_t cells = spec_cells(request.spec);
        const std::size_t sweeps = request.spec.sweeps.size();
        const std::uint64_t id = queue_.submit(
            std::move(request.spec), session_sink(session),
            [&](std::uint64_t assigned) {
              // Still under the queue lock: "accepted" is on the wire
              // before the scheduler can emit anything for this job.
              Job preview;
              preview.id = assigned;
              util::Json body;
              body.set("job", preview.display_id());
              body.set("sweeps", static_cast<double>(sweeps));
              body.set("cells", static_cast<double>(cells));
              send_line(session, encode_event("accepted", body));
            });
        if (id == 0) {
          util::Json body;
          body.set("message", "server is shutting down; submission refused");
          send_line(session, encode_event("error", body));
        }
        break;
      }
      case Request::Op::kShutdown:
        send_line(session, encode_event("bye", util::Json()));
        request_stop();
        break;
    }
  }
  session->alive.store(false, std::memory_order_release);
}

void Server::scheduler_loop() {
  while (auto job = queue_.pop()) {
    job_running_.store(true);
    execute_job(*job);
    job_running_.store(false);
  }
}

void Server::execute_job(Job& job) {
  const std::string id = job.display_id();
  const auto emit = [&](const char* kind, util::Json body) {
    if (job.sink) {
      body.set("job", id);
      job.sink(encode_event(kind, std::move(body)));
    }
  };
  try {
    // Pick up every cell persisted by earlier jobs and by other writers
    // (prior daemon lives, offline bench_spec runs) since the last job.
    store_.reload();
    store_records_.store(store_.size());

    analysis::ResumeReport job_total;
    util::Json sweep_records{util::Json::Array{}};
    for (const analysis::SweepEntry& entry : job.spec.sweeps) {
      const std::vector<analysis::Scenario> scenarios = entry.expand();
      // Progress throttling: a block can be as small as one trial, and a
      // million-cell sweep must not produce a million events — cap the
      // stream at ~64 updates per sweep (plus the final one).
      std::size_t last_emitted = 0;
      const analysis::ProgressFn progress =
          [&](const analysis::RunProgress& p) {
            const std::size_t step =
                std::max<std::size_t>(1, p.cells_fresh_total / 64);
            if (p.cells_fresh_done != p.cells_fresh_total &&
                p.cells_fresh_done < last_emitted + step) {
              return;
            }
            last_emitted = p.cells_fresh_done;
            util::Json body;
            body.set("sweep", entry.name);
            body.set("scenario", static_cast<double>(p.scenario));
            body.set("scenarios", static_cast<double>(p.scenarios_total));
            body.set("cells_done", static_cast<double>(p.cells_done()));
            body.set("cells_total", static_cast<double>(p.cells_total));
            body.set("cached", static_cast<double>(p.cells_cached));
            body.set("fresh_done", static_cast<double>(p.cells_fresh_done));
            body.set("fresh_total", static_cast<double>(p.cells_fresh_total));
            emit("progress", std::move(body));
          };

      analysis::ResumeReport report;
      const analysis::BatchResult batch = runner_.run_resumable(
          scenarios, entry.trials, entry.base_seed, store_, &report,
          job.sink ? progress : analysis::ProgressFn{});
      job_total.cells_total += report.cells_total;
      job_total.cells_cached += report.cells_cached;
      job_total.cells_run += report.cells_run;

      // The sweep's run manifest, reused verbatim as the job record entry.
      analysis::ManifestInfo info;
      info.threads = runner_.threads();
      info.resume = &report;
      info.store_dir = options_.store_dir;
      util::Json record;
      record.set("sweep", entry.name);
      record.set("manifest", analysis::run_manifest_json(batch, info));
      sweep_records.push_back(std::move(record));

      util::Json done;
      done.set("sweep", entry.name);
      done.set("csv_name", spec_csv_name(entry.name));
      done.set("csv_header", strings_to_json(batch.tidy_csv_header()));
      done.set("rows", rows_to_json(batch.tidy_rows()));
      done.set("cells_total", static_cast<double>(report.cells_total));
      done.set("cached", static_cast<double>(report.cells_cached));
      done.set("run", static_cast<double>(report.cells_run));
      emit("sweep_done", std::move(done));
    }

    // Index this job's fresh shards so status/hello counts stay current
    // even if no further job runs.
    store_.reload();
    store_records_.store(store_.size());

    const std::string record_path = write_job_record(job, sweep_records);
    util::Json done;
    done.set("spec", job.spec.name);
    done.set("cells_total", static_cast<double>(job_total.cells_total));
    done.set("cached", static_cast<double>(job_total.cells_cached));
    done.set("run", static_cast<double>(job_total.cells_run));
    done.set("record", record_path.empty() ? util::Json(nullptr)
                                           : util::Json(record_path));
    emit("job_done", std::move(done));
    jobs_done_.fetch_add(1);
  } catch (const std::exception& e) {
    util::Json body;
    body.set("message", e.what());
    emit("error", std::move(body));
    jobs_failed_.fetch_add(1);
  }
}

std::string Server::write_job_record(const Job& job,
                                     const util::Json& sweep_records) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = fs::path(options_.store_dir) / "jobs";
  fs::create_directories(dir, ec);
  if (ec) return {};
  util::Json record;
  record.set("job", job.display_id());
  record.set("spec", job.spec.name);
  record.set("git_sha", analysis::build_git_sha());
  record.set("sweeps", sweep_records);
  const fs::path path = dir / (job.display_id() + ".json");
  std::ofstream out(path);
  if (!out) return {};
  out << util::dump_json(record, 2) << '\n';
  if (!out) return {};
  return path.string();
}

}  // namespace hh::service
