#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "analysis/manifest.hpp"
#include "util/fault_inject.hpp"
#include "util/socket.hpp"

namespace hh::service {
namespace {

/// Total (scenario, trial) cells a spec will schedule.
std::size_t spec_cells(const analysis::ExperimentSpec& spec) {
  std::size_t cells = 0;
  for (const analysis::SweepEntry& entry : spec.sweeps) {
    cells += entry.size() * entry.trials;
  }
  return cells;
}

/// Thrown from the scheduler's progress callback when a running job is
/// canceled or the server drains; unwinds run_resumable at the next block
/// boundary (per-worker shard writers flush in their destructors, so
/// everything finished stays cached).
struct JobStopped {
  bool drain = false;  ///< true: server drain; false: client cancel
};

long long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string display_id(std::uint64_t id) {
  Job job;
  job.id = id;
  return job.display_id();
}

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "failed";
    case 4: return "canceled";
    case 5: return "interrupted";
  }
  return "unknown";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      listener_(util::net::Listener::bind_tcp(options_.host, options_.port)),
      store_([&] {
        if (options_.store_dir.empty()) {
          throw std::runtime_error("anthill-serve needs a store directory");
        }
        return options_.store_dir;
      }(), options_.writer_namespace),
      runner_(analysis::RunnerOptions{options_.threads}) {
  if (!listener_.valid()) {
    throw std::runtime_error("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port));
  }
  store_records_.store(store_.size());
  store_quarantined_.store(store_.quarantined_files());
  scan_job_records();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::serve_forever() {
  while (true) {
    util::net::Socket socket = listener_.accept();
    if (!socket.valid()) break;  // listener closed: stopping
    auto session = std::make_shared<Session>();
    session->socket = std::move(socket);
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stopping_.load()) break;  // raced request_stop: drop the socket
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { session_loop(session); });
  }
}

void Server::start() {
  accept_thread_ = std::thread([this] { serve_forever(); });
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  // Cancel everything still queued (records -> "canceled"); the in-flight
  // job sees stopping_ at its next block boundary and lands "interrupted".
  for (Job& orphan : queue_.close()) {
    set_phase(orphan.id, JobPhase::kCanceled);
    jobs_canceled_.fetch_add(1);
    write_job_record(orphan.id, orphan.spec, "canceled", nullptr,
                     "server shutting down before this job started");
    util::Json body;
    body.set("job", orphan.display_id());
    body.set("message", "server shutting down before this job started");
    orphan.control->emit(encode_event("canceled", body));
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_.joinable()) scheduler_.join();
  // Only after the scheduler drained: unblock session readers and join.
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    threads.swap(session_threads_);
    sessions.swap(sessions_);
  }
  for (const auto& session : sessions) session->socket.shutdown_both();
  for (std::thread& thread : threads) thread.join();
}

void Server::send_line(const std::shared_ptr<Session>& session,
                       const std::string& line) {
  if (!session->alive.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(session->write_mutex);
  if (!session->socket.send_all(line) || !session->socket.send_all("\n")) {
    session->alive.store(false, std::memory_order_release);
  } else {
    session->last_tx_ms.store(now_ms(), std::memory_order_relaxed);
  }
}

EventSink Server::session_sink(const std::shared_ptr<Session>& session) {
  return [session](const std::string& line) { send_line(session, line); };
}

util::Json Server::status_json() {
  util::Json body;
  body.set("proto", kProtocolVersion);
  body.set("jobs_pending", static_cast<double>(queue_.pending()));
  body.set("job_running", job_running_.load());
  body.set("jobs_done", static_cast<double>(jobs_done_.load()));
  body.set("jobs_failed", static_cast<double>(jobs_failed_.load()));
  body.set("jobs_canceled", static_cast<double>(jobs_canceled_.load()));
  body.set("jobs_interrupted",
           static_cast<double>(jobs_interrupted_.load()));
  body.set("store_records", static_cast<double>(store_records_.load()));
  body.set("store_quarantined",
           static_cast<double>(store_quarantined_.load()));
  body.set("store_dir", options_.store_dir);
  return body;
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  {
    util::Json hello;
    hello.set("proto", kProtocolVersion);
    hello.set("server", "anthill-serve");
    hello.set("store_dir", options_.store_dir);
    hello.set("store_records", static_cast<double>(store_records_.load()));
    send_line(session, encode_event("hello", hello));
  }
  util::net::LineReader reader(session->socket);
  reader.set_max_line(options_.max_line_bytes);
  std::string line;
  long long last_rx = now_ms();
  long long last_hb = last_rx;
  // The session thread multiplexes three duties on one short poll tick:
  // read requests, tick heartbeats, and enforce the idle deadline.
  while (session->alive.load(std::memory_order_acquire)) {
    const auto status = reader.next_line_for(line, 250);
    const long long now = now_ms();
    if (status == util::net::LineReader::Status::kClosed) break;
    if (status == util::net::LineReader::Status::kOverflow) {
      last_rx = now;
      util::Json body;
      body.set("message",
               "request line exceeds " +
                   std::to_string(options_.max_line_bytes) +
                   " bytes; discarded");
      send_line(session, encode_event("error", body));
      continue;
    }
    if (status == util::net::LineReader::Status::kLine) {
      last_rx = now;
      if (!line.empty()) handle_request(session, line);
      continue;
    }
    // kTimeout: no request this tick.
    if (options_.heartbeat_ms > 0 &&
        now - last_hb >= static_cast<long long>(options_.heartbeat_ms)) {
      last_hb = now;
      util::Json body;
      body.set("t_ms", static_cast<double>(now));
      send_line(session, encode_event("hb", body));
    }
    if (options_.read_deadline_ms > 0) {
      const long long last_seen = std::max(
          last_rx, session->last_tx_ms.load(std::memory_order_relaxed));
      if (now - last_seen >=
          static_cast<long long>(options_.read_deadline_ms)) {
        util::Json body;
        body.set("message", "idle deadline exceeded; dropping session");
        send_line(session, encode_event("error", body));
        break;
      }
    }
  }
  session->alive.store(false, std::memory_order_release);
  // Actually hang up: the peer (blocked in a read) must see EOF now, not
  // when the whole server shuts down. shutdown, not close — a scheduler
  // sink may still hold this session and try one more doomed send.
  session->socket.shutdown_both();
}

void Server::handle_request(const std::shared_ptr<Session>& session,
                            const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    util::Json body;
    body.set("message", e.what());
    send_line(session, encode_event("error", body));
    return;
  }
  switch (request.op) {
    case Request::Op::kPing:
      send_line(session, encode_event("pong", util::Json()));
      break;
    case Request::Op::kStatus:
      send_line(session, encode_event("status", status_json()));
      break;
    case Request::Op::kSubmit:
      handle_submit(session, request);
      break;
    case Request::Op::kReattach:
      handle_reattach(session, request);
      break;
    case Request::Op::kCancel:
      handle_cancel(session, request);
      break;
    case Request::Op::kShutdown:
      send_line(session, encode_event("bye", util::Json()));
      request_stop();
      break;
  }
}

void Server::handle_submit(const std::shared_ptr<Session>& session,
                           Request& request) {
  const std::size_t cells = spec_cells(request.spec);
  const std::size_t sweeps = request.spec.sweeps.size();
  auto control = std::make_shared<JobControl>();
  control->set_sink(session_sink(session));
  Job job;
  job.spec = request.spec;  // keep the original for the queued record
  job.control = control;
  const std::uint64_t id = queue_.submit(
      std::move(job), [&](std::uint64_t assigned) {
        // Still under the queue lock: the jobs_ entry and the durable
        // record must exist BEFORE "accepted" hits the wire — the moment
        // the client reads it, a cancel or reattach by this id (possibly
        // from another session) must succeed.
        {
          const std::lock_guard<std::mutex> lock(jobs_mutex_);
          jobs_[assigned] = JobEntry{JobPhase::kQueued, control};
        }
        write_job_record(assigned, request.spec, "queued", nullptr, {});
        util::Json body;
        body.set("job", display_id(assigned));
        body.set("sweeps", static_cast<double>(sweeps));
        body.set("cells", static_cast<double>(cells));
        send_line(session, encode_event("accepted", body));
      });
  if (id == 0) {
    util::Json body;
    body.set("message", "server is shutting down; submission refused");
    send_line(session, encode_event("error", body));
  }
}

void Server::handle_reattach(const std::shared_ptr<Session>& session,
                             const Request& request) {
  const auto error = [&](const std::string& message) {
    util::Json body;
    body.set("message", message);
    send_line(session, encode_event("error", body));
  };
  const auto parsed = parse_job_id(request.job);
  if (!parsed) {
    error("bad job id '" + request.job + "'");
    return;
  }
  const std::uint64_t id = *parsed;
  const auto record = load_job_record(id);
  if (!record) {
    error("unknown job " + display_id(id));
    return;
  }
  std::string prior_state = "done";  // pre-v2 records: written at completion
  if (const util::Json* state = record->find("state");
      state != nullptr && state->is_string()) {
    prior_state = state->as_string();
  }
  const util::Json* spec_json = record->find("spec");
  if (spec_json == nullptr || !spec_json->is_object()) {
    error(display_id(id) + " record has no spec; cannot reattach");
    return;
  }
  analysis::ExperimentSpec spec;
  try {
    spec = analysis::experiment_from_json(*spec_json);
  } catch (const std::exception& e) {
    error(display_id(id) + " record spec unreadable: " + e.what());
    return;
  }
  // Reattach ALWAYS re-enqueues the job's spec under its original id —
  // uniform across terminal, interrupted, and still-active states. The
  // store dedup makes the rerun serve every already-flushed cell from
  // cache, so the replayed event stream (and the CSVs built from it) is
  // bit-identical to what an uninterrupted run would have produced.
  const std::size_t cells = spec_cells(spec);
  const std::size_t sweeps = spec.sweeps.size();
  auto control = std::make_shared<JobControl>();
  control->set_sink(session_sink(session));
  Job job;
  job.id = id;
  job.spec = spec;
  job.control = control;
  job.reattached = true;
  const std::uint64_t submitted = queue_.submit(
      std::move(job), [&](std::uint64_t assigned) {
        // Same ordering as handle_submit: publish the jobs_ entry and the
        // record before the client can learn the id is live again.
        {
          const std::lock_guard<std::mutex> lock(jobs_mutex_);
          jobs_[assigned] = JobEntry{JobPhase::kQueued, control};
        }
        write_job_record(assigned, spec, "queued", nullptr, "reattached");
        util::Json body;
        body.set("job", display_id(assigned));
        body.set("state", prior_state);
        body.set("sweeps", static_cast<double>(sweeps));
        body.set("cells", static_cast<double>(cells));
        send_line(session, encode_event("reattached", body));
      });
  if (submitted == 0) {
    error("server is shutting down; reattach refused");
  }
}

void Server::handle_cancel(const std::shared_ptr<Session>& session,
                           const Request& request) {
  const auto error = [&](const std::string& message) {
    util::Json body;
    body.set("message", message);
    send_line(session, encode_event("error", body));
  };
  const auto parsed = parse_job_id(request.job);
  if (!parsed) {
    error("bad job id '" + request.job + "'");
    return;
  }
  const std::uint64_t id = *parsed;
  JobEntry entry;
  bool known = false;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      entry = it->second;
      known = true;
    }
  }
  if (!known) {
    // Not in this daemon life; report what the record says, if any.
    if (const auto record = load_job_record(id)) {
      std::string state = "done";
      if (const util::Json* s = record->find("state");
          s != nullptr && s->is_string()) {
        state = s->as_string();
      }
      error(display_id(id) + " is not active (state: " + state + ")");
    } else {
      error("unknown job " + display_id(id));
    }
    return;
  }
  const auto ack = [&](const char* note) {
    util::Json body;
    body.set("job", display_id(id));
    body.set("note", note);
    send_line(session, encode_event("cancel_ok", body));
  };
  if (entry.phase == JobPhase::kQueued) {
    // jobs_mutex_ is NOT held here (lock ordering: queue before jobs).
    if (auto removed = queue_.remove(id)) {
      set_phase(id, JobPhase::kCanceled);
      jobs_canceled_.fetch_add(1);
      write_job_record(id, removed->spec, "canceled", nullptr,
                       "canceled before start");
      util::Json body;
      body.set("job", display_id(id));
      body.set("message", "canceled before start");
      removed->control->emit(encode_event("canceled", body));
      ack("removed from queue");
      return;
    }
    // Raced the scheduler — it popped the job first; treat as running.
    entry.phase = JobPhase::kRunning;
  }
  if (entry.phase == JobPhase::kRunning) {
    entry.control->stop.store(JobControl::kCancel, std::memory_order_relaxed);
    ack("stopping at next block boundary");
    return;
  }
  error(display_id(id) + " already " +
        phase_name(static_cast<int>(entry.phase)));
}

void Server::scheduler_loop() {
  while (auto job = queue_.pop()) {
    job_running_.store(true);
    execute_job(*job);
    job_running_.store(false);
  }
}

void Server::execute_job(Job& job) {
  const std::string id = job.display_id();
  set_phase(job.id, JobPhase::kRunning);
  write_job_record(job.id, job.spec, "running", nullptr, {});
  const auto emit = [&](const char* kind, util::Json body) {
    body.set("job", id);
    job.control->emit(encode_event(kind, std::move(body)));
  };
  try {
    // Pick up every cell persisted by earlier jobs and by other writers
    // (prior daemon lives, offline bench_spec runs) since the last job.
    store_.reload();
    store_records_.store(store_.size());
    store_quarantined_.store(store_.quarantined_files());

    analysis::ResumeReport job_total;
    util::Json sweep_records{util::Json::Array{}};
    for (const analysis::SweepEntry& entry : job.spec.sweeps) {
      const std::vector<analysis::Scenario> scenarios = entry.expand();
      // Progress throttling: a block can be as small as one trial, and a
      // million-cell sweep must not produce a million events — cap the
      // stream at ~64 updates per sweep (plus the final one).
      std::size_t last_emitted = 0;
      const analysis::ProgressFn progress =
          [&](const analysis::RunProgress& p) {
            // Cooperative stop: cancel/drain both land here, at a block
            // boundary, where every finished cell is already flushed.
            const int stop = job.control->stop.load(std::memory_order_relaxed);
            if (stop == JobControl::kCancel) throw JobStopped{false};
            if (stop == JobControl::kDrain || stopping_.load()) {
              throw JobStopped{true};
            }
            const std::size_t step =
                std::max<std::size_t>(1, p.cells_fresh_total / 64);
            if (p.cells_fresh_done != p.cells_fresh_total &&
                p.cells_fresh_done < last_emitted + step) {
              return;
            }
            last_emitted = p.cells_fresh_done;
            util::Json body;
            body.set("sweep", entry.name);
            body.set("scenario", static_cast<double>(p.scenario));
            body.set("scenarios", static_cast<double>(p.scenarios_total));
            body.set("cells_done", static_cast<double>(p.cells_done()));
            body.set("cells_total", static_cast<double>(p.cells_total));
            body.set("cached", static_cast<double>(p.cells_cached));
            body.set("fresh_done", static_cast<double>(p.cells_fresh_done));
            body.set("fresh_total", static_cast<double>(p.cells_fresh_total));
            emit("progress", std::move(body));
          };

      analysis::ResumeReport report;
      const analysis::BatchResult batch = runner_.run_resumable(
          scenarios, entry.trials, entry.base_seed, store_, &report,
          progress);
      job_total.cells_total += report.cells_total;
      job_total.cells_cached += report.cells_cached;
      job_total.cells_run += report.cells_run;
      job_total.shards_quarantined =
          std::max(job_total.shards_quarantined, report.shards_quarantined);

      // The sweep's run manifest, reused verbatim as the job record entry.
      analysis::ManifestInfo info;
      info.threads = runner_.threads();
      info.resume = &report;
      info.store_dir = options_.store_dir;
      util::Json record;
      record.set("sweep", entry.name);
      record.set("manifest", analysis::run_manifest_json(batch, info));
      sweep_records.push_back(std::move(record));

      util::Json done;
      done.set("sweep", entry.name);
      done.set("csv_name", spec_csv_name(entry.name));
      done.set("csv_header", strings_to_json(batch.tidy_csv_header()));
      done.set("rows", rows_to_json(batch.tidy_rows()));
      done.set("cells_total", static_cast<double>(report.cells_total));
      done.set("cached", static_cast<double>(report.cells_cached));
      done.set("run", static_cast<double>(report.cells_run));
      emit("sweep_done", std::move(done));
    }

    // Index this job's fresh shards so status/hello counts stay current
    // even if no further job runs.
    store_.reload();
    store_records_.store(store_.size());
    store_quarantined_.store(store_.quarantined_files());

    const std::string record_path =
        write_job_record(job.id, job.spec, "done", &sweep_records, {});
    util::Json done;
    done.set("spec", job.spec.name);
    done.set("cells_total", static_cast<double>(job_total.cells_total));
    done.set("cached", static_cast<double>(job_total.cells_cached));
    done.set("run", static_cast<double>(job_total.cells_run));
    done.set("record", record_path.empty() ? util::Json(nullptr)
                                           : util::Json(record_path));
    emit("job_done", std::move(done));
    jobs_done_.fetch_add(1);
    set_phase(job.id, JobPhase::kDone);
  } catch (const JobStopped& stop) {
    // Worker threads unwound at the block boundary; their shard writers
    // flushed in destructors, so everything finished is durably cached
    // and a reattach completes the job from where it stopped.
    const char* state = stop.drain ? "interrupted" : "canceled";
    const std::string message =
        stop.drain ? "server draining; finished cells are cached — "
                     "reattach to complete"
                   : "canceled by client; finished cells stay cached";
    write_job_record(job.id, job.spec, state, nullptr, message);
    util::Json body;
    body.set("message", message);
    emit(state, std::move(body));
    if (stop.drain) {
      jobs_interrupted_.fetch_add(1);
      set_phase(job.id, JobPhase::kInterrupted);
    } else {
      jobs_canceled_.fetch_add(1);
      set_phase(job.id, JobPhase::kCanceled);
    }
  } catch (const std::exception& e) {
    write_job_record(job.id, job.spec, "failed", nullptr, e.what());
    util::Json body;
    body.set("message", e.what());
    emit("error", std::move(body));
    jobs_failed_.fetch_add(1);
    set_phase(job.id, JobPhase::kFailed);
  }
}

void Server::set_phase(std::uint64_t id, JobPhase phase) {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  jobs_[id].phase = phase;
}

std::filesystem::path Server::jobs_dir() const {
  return std::filesystem::path(options_.store_dir) / "jobs";
}

std::filesystem::path Server::record_path(std::uint64_t id) const {
  return jobs_dir() / (display_id(id) + ".json");
}

std::string Server::write_job_record(std::uint64_t id,
                                     const analysis::ExperimentSpec& spec,
                                     const char* state,
                                     const util::Json* sweeps,
                                     const std::string& message) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(jobs_dir(), ec);
  if (ec) return {};
  util::Json record;
  record.set("job", display_id(id));
  record.set("state", state);
  record.set("spec_name", spec.name);
  record.set("git_sha", analysis::build_git_sha());
  if (!message.empty()) record.set("message", message);
  // The full spec document — what reattach replays after a daemon death.
  record.set("spec", analysis::experiment_to_json(spec));
  if (sweeps != nullptr) record.set("sweeps", *sweeps);
  const fs::path path = record_path(id);
  if (!write_record_json(path, record)) return {};
  return path.string();
}

bool Server::write_record_json(const std::filesystem::path& path,
                               const util::Json& record) {
  namespace fs = std::filesystem;
  // Unique tmp suffix: two writers on one id (the reattach-while-active
  // corner) may race, but each rename is atomic — the record is always a
  // complete document from one writer, never interleaved bytes.
  fs::path tmp = path;
  tmp += ".tmp" + std::to_string(record_nonce_.fetch_add(1));
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << util::dump_json(record, 2) << '\n';
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  if (util::fault::inject("serve.record.rename")) {
    // Crash window between writing the record and publishing it; the fail
    // verb models a full disk at rename time.
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<util::Json> Server::load_job_record(std::uint64_t id) const {
  std::ifstream in(record_path(id));
  if (!in) return std::nullopt;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    util::Json record = util::parse_json(text);
    if (!record.is_object()) return std::nullopt;
    return record;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void Server::scan_job_records() {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(jobs_dir(), ec)) return;
  std::uint64_t max_id = 0;
  for (const auto& entry : fs::directory_iterator(jobs_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json") continue;
    const auto id = parse_job_id(path.stem().string());
    if (!id) continue;
    max_id = std::max(max_id, *id);
    const auto record = load_job_record(*id);
    if (!record) continue;
    const util::Json* state = record->find("state");
    // Pre-v2 records carry no state; they were only written at completion.
    if (state == nullptr || !state->is_string()) continue;
    const std::string s = state->as_string();
    if (s != "queued" && s != "running") continue;
    // This job died with the previous daemon life: mark it terminal so
    // nothing ever leaks a non-terminal record, while keeping the spec
    // for reattach.
    util::Json updated = *record;
    updated.set("state", "interrupted");
    updated.set("message", "daemon restarted while this job was " + s);
    write_record_json(path, updated);
  }
  queue_.reserve_ids_through(max_id);
}

}  // namespace hh::service
