#include "service/protocol.hpp"

#include <cctype>
#include <cmath>
#include <limits>

namespace hh::service {
namespace {

Request::Op parse_op(const std::string& name) {
  if (name == "ping") return Request::Op::kPing;
  if (name == "status") return Request::Op::kStatus;
  if (name == "submit") return Request::Op::kSubmit;
  if (name == "reattach") return Request::Op::kReattach;
  if (name == "cancel") return Request::Op::kCancel;
  if (name == "shutdown") return Request::Op::kShutdown;
  throw ProtocolError("unknown op '" + name + "'");
}

const char* op_name(Request::Op op) {
  switch (op) {
    case Request::Op::kPing: return "ping";
    case Request::Op::kStatus: return "status";
    case Request::Op::kSubmit: return "submit";
    case Request::Op::kReattach: return "reattach";
    case Request::Op::kCancel: return "cancel";
    case Request::Op::kShutdown: return "shutdown";
  }
  return "ping";
}

}  // namespace

std::string encode_request(const Request& request) {
  util::Json json;
  json.set("op", op_name(request.op));
  if (request.op == Request::Op::kSubmit) {
    json.set("spec", analysis::experiment_to_json(request.spec));
  }
  if (request.op == Request::Op::kReattach ||
      request.op == Request::Op::kCancel) {
    json.set("job", request.job);
  }
  return util::dump_json(json);
}

Request parse_request(std::string_view line) {
  util::Json json;
  try {
    json = util::parse_json(line);
  } catch (const util::JsonParseError& e) {
    throw ProtocolError(std::string("bad request JSON: ") + e.what());
  }
  if (!json.is_object()) throw ProtocolError("request must be a JSON object");
  const util::Json* op = json.find("op");
  if (op == nullptr || !op->is_string()) {
    throw ProtocolError("request needs a string \"op\" field");
  }
  Request request;
  request.op = parse_op(op->as_string());
  if (request.op == Request::Op::kSubmit) {
    const util::Json* spec = json.find("spec");
    if (spec == nullptr) {
      throw ProtocolError("submit needs a \"spec\" field");
    }
    try {
      request.spec = analysis::experiment_from_json(*spec);
    } catch (const std::exception& e) {
      throw ProtocolError(std::string("bad spec: ") + e.what());
    }
  }
  if (request.op == Request::Op::kReattach ||
      request.op == Request::Op::kCancel) {
    const util::Json* job = json.find("job");
    if (job == nullptr || !job->is_string() || job->as_string().empty()) {
      throw ProtocolError(std::string(op_name(request.op)) +
                          " needs a string \"job\" field");
    }
    request.job = job->as_string();
  }
  return request;
}

std::string encode_event(const std::string& kind, util::Json body) {
  // "event" must render first so humans tailing the stream can read it;
  // rebuilding the object puts it there regardless of how body was built.
  util::Json out;
  out.set("event", kind);
  if (!body.is_null()) {
    for (auto& [key, value] : body.as_object()) {
      if (key != "event") out.set(key, std::move(value));
    }
  }
  return util::dump_json(out);
}

Event parse_event(std::string_view line) {
  Event event;
  try {
    event.body = util::parse_json(line);
  } catch (const util::JsonParseError& e) {
    throw ProtocolError(std::string("bad event JSON: ") + e.what());
  }
  if (!event.body.is_object()) {
    throw ProtocolError("event must be a JSON object");
  }
  const util::Json* kind = event.body.find("event");
  if (kind == nullptr || !kind->is_string()) {
    throw ProtocolError("event needs a string \"event\" field");
  }
  event.kind = kind->as_string();
  return event;
}

util::Json rows_to_json(const std::vector<std::vector<double>>& rows) {
  util::Json out{util::Json::Array{}};
  for (const auto& row : rows) {
    util::Json jrow{util::Json::Array{}};
    for (const double v : row) {
      jrow.push_back(std::isfinite(v) ? util::Json(v) : util::Json(nullptr));
    }
    out.push_back(std::move(jrow));
  }
  return out;
}

std::vector<std::vector<double>> rows_from_json(const util::Json& json) {
  std::vector<std::vector<double>> rows;
  for (const util::Json& jrow : json.as_array()) {
    std::vector<double> row;
    row.reserve(jrow.as_array().size());
    for (const util::Json& v : jrow.as_array()) {
      row.push_back(v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                                : v.as_number());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Json strings_to_json(const std::vector<std::string>& v) {
  util::Json out{util::Json::Array{}};
  for (const std::string& s : v) out.push_back(s);
  return out;
}

std::vector<std::string> strings_from_json(const util::Json& json) {
  std::vector<std::string> out;
  out.reserve(json.as_array().size());
  for (const util::Json& s : json.as_array()) out.push_back(s.as_string());
  return out;
}

std::string spec_csv_name(const std::string& sweep) {
  std::string out = "spec_";
  for (const char c : sweep) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

}  // namespace hh::service
