#include "service/client.hpp"

#include <filesystem>
#include <fstream>

#include "util/csv.hpp"

namespace hh::service {
namespace {

std::size_t size_field(const util::Json& body, const char* key) {
  const util::Json* v = body.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::size_t>(v->as_number())
             : 0;
}

std::string string_field(const util::Json& body, const char* key) {
  const util::Json* v = body.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port) {
  Client client;
  client.socket_ = util::net::Socket::connect_tcp(host, port);
  if (!client.socket_.valid()) {
    client.error_ = "cannot connect to " + host + ":" + std::to_string(port);
    return client;
  }
  Event hello;
  if (!client.next_event(hello) || hello.kind != "hello") {
    client.error_ = client.error_.empty() ? "server did not say hello"
                                          : client.error_;
    client.socket_.close();
    return client;
  }
  client.store_dir_ = string_field(hello.body, "store_dir");
  client.store_records_ = size_field(hello.body, "store_records");
  return client;
}

bool Client::send(const Request& request) {
  if (!socket_.send_all(encode_request(request)) ||
      !socket_.send_all("\n")) {
    error_ = "connection lost while sending";
    return false;
  }
  return true;
}

bool Client::next_event(Event& event) {
  std::string line;
  if (!reader_.next_line(line)) {
    error_ = "connection closed by server";
    return false;
  }
  try {
    event = parse_event(line);
  } catch (const ProtocolError& e) {
    error_ = e.what();
    return false;
  }
  return true;
}

bool Client::ping() {
  Request request;
  request.op = Request::Op::kPing;
  if (!send(request)) return false;
  Event event;
  return next_event(event) && event.kind == "pong";
}

util::Json Client::status() {
  Request request;
  request.op = Request::Op::kStatus;
  if (!send(request)) return {};
  Event event;
  if (!next_event(event)) return {};
  if (event.kind != "status") {
    error_ = "expected status event, got '" + event.kind + "'";
    return {};
  }
  return event.body;
}

bool Client::shutdown_server() {
  Request request;
  request.op = Request::Op::kShutdown;
  if (!send(request)) return false;
  Event event;
  return next_event(event) && event.kind == "bye";
}

JobOutcome Client::submit(const analysis::ExperimentSpec& spec,
                          const ProgressEventFn& on_progress) {
  JobOutcome outcome;
  Request request;
  request.op = Request::Op::kSubmit;
  request.spec = spec;
  if (!send(request)) {
    outcome.error = error_;
    return outcome;
  }
  // Tail the stream: accepted -> progress* -> sweep_done per sweep ->
  // job_done. Any error event for this job (or the transport dying)
  // terminates the tail.
  Event event;
  while (next_event(event)) {
    if (event.kind == "accepted") {
      outcome.job_id = string_field(event.body, "job");
    } else if (event.kind == "progress") {
      ++outcome.progress_events;
      if (on_progress) on_progress(event.body);
    } else if (event.kind == "sweep_done") {
      SweepResult sweep;
      sweep.sweep = string_field(event.body, "sweep");
      sweep.csv_name = string_field(event.body, "csv_name");
      if (const util::Json* h = event.body.find("csv_header")) {
        sweep.csv_header = strings_from_json(*h);
      }
      if (const util::Json* r = event.body.find("rows")) {
        sweep.rows = rows_from_json(*r);
      }
      sweep.cells_total = size_field(event.body, "cells_total");
      sweep.cached = size_field(event.body, "cached");
      sweep.run = size_field(event.body, "run");
      outcome.sweeps.push_back(std::move(sweep));
    } else if (event.kind == "job_done") {
      outcome.ok = true;
      outcome.cells_total = size_field(event.body, "cells_total");
      outcome.cached = size_field(event.body, "cached");
      outcome.run = size_field(event.body, "run");
      outcome.record_path = string_field(event.body, "record");
      return outcome;
    } else if (event.kind == "error") {
      outcome.error = string_field(event.body, "message");
      return outcome;
    }
    // Unknown kinds are skipped: a newer server may add event types.
  }
  outcome.error = error_;
  return outcome;
}

std::vector<std::string> write_outcome_csvs(const JobOutcome& outcome,
                                            const std::string& out_dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) return paths;
  for (const SweepResult& sweep : outcome.sweeps) {
    const fs::path path = fs::path(out_dir) / (sweep.csv_name + ".csv");
    std::ofstream out(path);
    if (!out) return paths;
    util::CsvWriter csv(out);
    csv.header(sweep.csv_header);
    for (const auto& row : sweep.rows) csv.row(row);
    out.flush();
    if (!out) return paths;
    paths.push_back(path.string());
  }
  return paths;
}

}  // namespace hh::service
