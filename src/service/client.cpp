#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace hh::service {
namespace {

std::size_t size_field(const util::Json& body, const char* key) {
  const util::Json* v = body.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::size_t>(v->as_number())
             : 0;
}

std::string string_field(const util::Json& body, const char* key) {
  const util::Json* v = body.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port) {
  Client client;
  client.socket_ = util::net::Socket::connect_tcp(host, port);
  if (!client.socket_.valid()) {
    client.error_ = "cannot connect to " + host + ":" + std::to_string(port);
    return client;
  }
  Event hello;
  if (!client.next_event(hello) || hello.kind != "hello") {
    client.error_ = client.error_.empty() ? "server did not say hello"
                                          : client.error_;
    client.socket_.close();
    return client;
  }
  client.store_dir_ = string_field(hello.body, "store_dir");
  client.store_records_ = size_field(hello.body, "store_records");
  return client;
}

bool Client::send(const Request& request) {
  if (!socket_.send_all(encode_request(request)) ||
      !socket_.send_all("\n")) {
    error_ = "connection lost while sending";
    return false;
  }
  return true;
}

bool Client::next_event(Event& event) {
  std::string line;
  if (!reader_.next_line(line)) {
    error_ = "connection closed by server";
    return false;
  }
  try {
    event = parse_event(line);
  } catch (const ProtocolError& e) {
    error_ = e.what();
    return false;
  }
  return true;
}

bool Client::ping() {
  Request request;
  request.op = Request::Op::kPing;
  if (!send(request)) return false;
  Event event;
  return next_event(event) && event.kind == "pong";
}

util::Json Client::status() {
  Request request;
  request.op = Request::Op::kStatus;
  if (!send(request)) return {};
  Event event;
  // Skip heartbeats: the reply may queue behind an hb tick.
  while (next_event(event)) {
    if (event.kind == "hb") continue;
    if (event.kind != "status") {
      error_ = "expected status event, got '" + event.kind + "'";
      return {};
    }
    return event.body;
  }
  return {};
}

bool Client::shutdown_server() {
  Request request;
  request.op = Request::Op::kShutdown;
  if (!send(request)) return false;
  Event event;
  while (next_event(event)) {
    if (event.kind == "hb") continue;
    return event.kind == "bye";
  }
  return false;
}

JobOutcome Client::submit(const analysis::ExperimentSpec& spec,
                          const ProgressEventFn& on_progress) {
  JobOutcome outcome;
  Request request;
  request.op = Request::Op::kSubmit;
  request.spec = spec;
  if (!send(request)) {
    outcome.error = error_;
    outcome.transport_lost = true;
    return outcome;
  }
  return tail_job(on_progress);
}

JobOutcome Client::reattach(const std::string& job_id,
                            const ProgressEventFn& on_progress) {
  JobOutcome outcome;
  Request request;
  request.op = Request::Op::kReattach;
  request.job = job_id;
  if (!send(request)) {
    outcome.error = error_;
    outcome.transport_lost = true;
    outcome.job_id = job_id;
    return outcome;
  }
  outcome = tail_job(on_progress);
  if (outcome.job_id.empty()) outcome.job_id = job_id;
  return outcome;
}

bool Client::cancel(const std::string& job_id) {
  Request request;
  request.op = Request::Op::kCancel;
  request.job = job_id;
  if (!send(request)) return false;
  Event event;
  while (next_event(event)) {
    if (event.kind == "cancel_ok") return true;
    if (event.kind == "error") {
      error_ = string_field(event.body, "message");
      return false;
    }
    // hb / progress / canceled from an earlier job on this session: skip.
  }
  return false;
}

JobOutcome Client::tail_job(const ProgressEventFn& on_progress) {
  JobOutcome outcome;
  // Tail the stream: accepted|reattached -> progress* -> sweep_done per
  // sweep -> job_done. Any error/canceled/interrupted event (or the
  // transport dying) terminates the tail.
  Event event;
  while (next_event(event)) {
    if (event.kind == "accepted" || event.kind == "reattached") {
      outcome.job_id = string_field(event.body, "job");
      // A replayed stream restarts the job from its first sweep; drop
      // anything buffered from a previous (dead) attempt so sweeps never
      // duplicate.
      outcome.sweeps.clear();
    } else if (event.kind == "progress") {
      ++outcome.progress_events;
      if (on_progress) on_progress(event.body);
    } else if (event.kind == "hb") {
      ++outcome.heartbeats;
    } else if (event.kind == "sweep_done") {
      SweepResult sweep;
      sweep.sweep = string_field(event.body, "sweep");
      sweep.csv_name = string_field(event.body, "csv_name");
      if (const util::Json* h = event.body.find("csv_header")) {
        sweep.csv_header = strings_from_json(*h);
      }
      if (const util::Json* r = event.body.find("rows")) {
        sweep.rows = rows_from_json(*r);
      }
      sweep.cells_total = size_field(event.body, "cells_total");
      sweep.cached = size_field(event.body, "cached");
      sweep.run = size_field(event.body, "run");
      outcome.sweeps.push_back(std::move(sweep));
    } else if (event.kind == "job_done") {
      outcome.ok = true;
      outcome.cells_total = size_field(event.body, "cells_total");
      outcome.cached = size_field(event.body, "cached");
      outcome.run = size_field(event.body, "run");
      outcome.record_path = string_field(event.body, "record");
      return outcome;
    } else if (event.kind == "canceled" || event.kind == "interrupted") {
      outcome.error = event.kind + ": " + string_field(event.body, "message");
      return outcome;
    } else if (event.kind == "error") {
      outcome.error = string_field(event.body, "message");
      return outcome;
    }
    // Unknown kinds are skipped: a newer server may add event types.
  }
  outcome.error = error_;
  outcome.transport_lost = true;
  return outcome;
}

unsigned next_backoff_ms(const RetryPolicy& policy, unsigned attempt,
                         unsigned prev_ms, std::uint64_t stream) {
  if (attempt <= 1) return 0;
  // Decorrelated jitter: uniform over [base, prev*3], capped. The draw is
  // a pure function of (seed, stream, attempt) so tests can replay it.
  const std::uint64_t lo = std::max(1u, policy.base_ms);
  const std::uint64_t hi =
      std::min<std::uint64_t>(policy.cap_ms,
                              std::max<std::uint64_t>(lo, prev_ms) * 3);
  if (hi <= lo) return static_cast<unsigned>(lo);
  util::SplitMix64 rng(util::mix_seed(policy.seed, stream, attempt));
  return static_cast<unsigned>(lo + rng.next() % (hi - lo + 1));
}

namespace {

/// Shared reconnect loop: `round` dials + runs one attempt; keeps going
/// while outcomes are transport failures and attempts remain. Once any
/// attempt learns the job id, later rounds reattach to it.
JobOutcome run_with_retry(
    const std::string& host, std::uint16_t port, const RetryPolicy& policy,
    std::string job_id,
    const std::function<JobOutcome(Client&, const std::string& job_id)>&
        round) {
  JobOutcome outcome;
  unsigned prev_ms = 0;
  const unsigned attempts = std::max(1u, policy.max_attempts);
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    const unsigned delay = next_backoff_ms(policy, attempt, prev_ms, 0);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      prev_ms = delay;
    }
    Client client = Client::connect(host, port);
    if (!client.connected()) {
      outcome = JobOutcome{};
      outcome.error = client.error();
      outcome.transport_lost = true;
      outcome.job_id = job_id;
      continue;
    }
    outcome = round(client, job_id);
    if (!outcome.job_id.empty()) job_id = outcome.job_id;
    if (outcome.ok || !outcome.transport_lost) return outcome;
  }
  return outcome;
}

}  // namespace

JobOutcome submit_with_retry(const std::string& host, std::uint16_t port,
                             const analysis::ExperimentSpec& spec,
                             const RetryPolicy& policy,
                             const ProgressEventFn& on_progress) {
  return run_with_retry(
      host, port, policy, {},
      [&](Client& client, const std::string& job_id) {
        // First round submits; once the server assigned an id, resumption
        // goes through reattach so the job is never double-recorded.
        return job_id.empty() ? client.submit(spec, on_progress)
                              : client.reattach(job_id, on_progress);
      });
}

JobOutcome reattach_with_retry(const std::string& host, std::uint16_t port,
                               const std::string& job_id,
                               const RetryPolicy& policy,
                               const ProgressEventFn& on_progress) {
  return run_with_retry(
      host, port, policy, job_id,
      [&](Client& client, const std::string& id) {
        return client.reattach(id, on_progress);
      });
}

std::vector<std::string> write_outcome_csvs(const JobOutcome& outcome,
                                            const std::string& out_dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) return paths;
  for (const SweepResult& sweep : outcome.sweeps) {
    const fs::path path = fs::path(out_dir) / (sweep.csv_name + ".csv");
    std::ofstream out(path);
    if (!out) return paths;
    util::CsvWriter csv(out);
    csv.header(sweep.csv_header);
    for (const auto& row : sweep.rows) csv.row(row);
    out.flush();
    if (!out) return paths;
    paths.push_back(path.string());
  }
  return paths;
}

}  // namespace hh::service
