// Packed (struct-of-arrays) engine for Algorithm 2 — the O(log n) optimal
// emigration protocol (paper Section 4), including the Section 4.2 settle
// termination fix.
//
// Unlike the Algorithm-3 family, Algorithm 2's rounds are never
// colony-uniform after round 1: active and passive ants run interleaved
// 4-round blocks (R1..R4) while final ants recruit every round and settled
// ants go every round, so within one round the colony mixes recruit() and
// go() calls. The pack therefore keeps PER-ANT phase lanes (state, block
// case, pending transitions) and drives every round >= 2 through the
// masked SoA entry points (Environment::step_masked_*). The block step
// itself is colony-global — all ants enter the block machine at round 2
// and advance one step per round — so it is derived from the round number
// rather than stored per ant.
//
// Bit-identical to the per-object OptimalAnt colony (which draws no
// per-ant randomness at all): same observation-driven transitions, same
// count comparisons, same settle streak. tests/test_ant_pack.cpp pins it
// across seeds x settle on/off x fault plans x 1/2/8 runner threads.
#ifndef HH_CORE_OPTIMAL_PACK_HPP
#define HH_CORE_OPTIMAL_PACK_HPP

#include <cstdint>
#include <memory>

#include "core/ant_pack.hpp"

namespace hh::core {

/// Build the packed Algorithm-2 colony (`settle` selects the Section 4.2
/// termination fix — the kOptimalSettle variant). Parameters as
/// make_ant_pack.
[[nodiscard]] std::unique_ptr<AntPack> make_optimal_pack(
    std::uint32_t num_ants, std::uint32_t num_nests, std::uint64_t colony_seed,
    bool settle, const env::FaultPlan* faults);

}  // namespace hh::core

#endif  // HH_CORE_OPTIMAL_PACK_HPP
