#include "core/ant.hpp"

namespace hh::core {

// Out-of-line virtual destructor anchors the vtable in this TU.
Ant::~Ant() = default;

}  // namespace hh::core
