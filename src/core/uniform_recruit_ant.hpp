// Negative-control baseline: Algorithm 3 with the positive feedback
// removed (experiment E16).
//
// An active ant recruits with a constant probability p regardless of its
// nest's population. Expected recruitment into each nest is then linear in
// the nest's population (every nest reinforces at the same relative rate),
// which is the neutral Pólya-urn regime: population proportions form a
// martingale and converge to a random mixture instead of concentrating on
// one nest. The contrast with Algorithm 3's quadratic reinforcement
// (p(i,r) fraction of ants each recruiting with probability p(i,r))
// demonstrates that population-proportional feedback is what drives
// consensus.
#ifndef HH_CORE_UNIFORM_RECRUIT_ANT_HPP
#define HH_CORE_UNIFORM_RECRUIT_ANT_HPP

#include "core/simple_ant.hpp"

namespace hh::core {

/// Constant-rate recruiting baseline (no positive feedback).
class UniformRecruitAnt final : public SimpleAnt {
 public:
  /// `recruit_prob` is the constant per-round recruiting probability.
  UniformRecruitAnt(std::uint32_t num_ants, util::Rng rng, double recruit_prob);

  [[nodiscard]] std::string_view name() const override { return "uniform-recruit"; }

 protected:
  [[nodiscard]] double recruit_probability() const override {
    return recruit_prob_;
  }

 private:
  double recruit_prob_;
};

}  // namespace hh::core

#endif  // HH_CORE_UNIFORM_RECRUIT_ANT_HPP
