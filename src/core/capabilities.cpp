#include "core/capabilities.hpp"

#include "core/simulation.hpp"

namespace hh::core {

Capabilities Capabilities::standard_pack() {
  Capabilities caps;
  caps.crash_faults = true;
  caps.byzantine_faults = true;
  caps.partial_synchrony = true;
  caps.count_noise = true;
  caps.quality_noise = true;
  caps.with(env::PairingKind::kPermutation)
      .with(env::PairingKind::kUniformProposal)
      .with(env::PairingKind::kCounter)
      .with(ConvergenceMode::kCommitment)
      .with(ConvergenceMode::kCommitmentFinalized)
      .with(ConvergenceMode::kPhysical);
  return caps;
}

namespace {

std::string_view mode_label(ConvergenceMode mode) {
  switch (mode) {
    case ConvergenceMode::kCommitment: return "commitment";
    case ConvergenceMode::kCommitmentFinalized: return "commitment+finalized";
    case ConvergenceMode::kPhysical: return "physical";
  }
  return "?";
}

}  // namespace

std::vector<std::string> capability_gaps(const SimulationConfig& config,
                                         ConvergenceMode mode,
                                         const Capabilities& declared) {
  std::vector<std::string> gaps;
  if (!declared.supports(config.env_backend)) {
    gaps.emplace_back("environment backend '" +
                      std::string(env::backend_name(config.env_backend)) +
                      "' is outside the algorithm's declared worlds");
  }
  if (config.skip_probability > 0.0 && !declared.partial_synchrony) {
    gaps.emplace_back(
        "partial synchrony (skip_probability > 0) requires the "
        "per-object round scheduler");
  }
  if (config.faults.crash_fraction > 0.0 && !declared.crash_faults) {
    gaps.emplace_back("crash faults are outside the pack's declared "
                      "capabilities");
  }
  if (config.faults.byzantine_fraction > 0.0 && !declared.byzantine_faults) {
    gaps.emplace_back("Byzantine faults are outside the pack's declared "
                      "capabilities");
  }
  if (config.noise.count_sigma > 0.0 && !declared.count_noise) {
    gaps.emplace_back("count noise (count_sigma > 0) is outside the pack's "
                      "declared capabilities");
  }
  if ((config.noise.quality_flip_prob > 0.0 ||
       config.noise.quality_sigma > 0.0) &&
      !declared.quality_noise) {
    gaps.emplace_back("quality noise is outside the pack's declared "
                      "capabilities");
  }
  if (!declared.supports(config.pairing)) {
    gaps.emplace_back("pairing model '" +
                      std::string(env::pairing_name(config.pairing)) +
                      "' is outside the pack's declared capabilities");
  }
  if (!declared.supports(mode)) {
    gaps.emplace_back("convergence mode '" + std::string(mode_label(mode)) +
                      "' is outside the pack's declared capabilities");
  }
  return gaps;
}

std::string join_gaps(const std::vector<std::string>& gaps) {
  std::string joined;
  for (const std::string& gap : gaps) {
    if (!joined.empty()) joined += "; ";
    joined += gap;
  }
  return joined;
}

}  // namespace hh::core
