// The declared capability matrix of an algorithm's packed engine, and the
// data-driven diff that replaces hand-coded kAuto eligibility checks.
//
// The per-object (scalar) reference path handles every model extension by
// construction — polymorphic ants compose with the fault wrappers, the
// round scheduler, and any observation model. A packed (SoA) engine only
// covers what its kernels were written for, so each algorithm DECLARES
// what its pack supports, and engine selection becomes a pure function:
//
//     gaps = capability_gaps(config, mode, declared)
//     gaps empty  -> the pack may run
//     kAuto       -> fall back to scalar, RunResult::engine_fallback =
//                    the joined gap list
//     kPacked     -> std::invalid_argument naming the exact gaps
//
// No conditional anywhere else decides eligibility; registering a new
// algorithm (core/registry.hpp) means declaring its matrix once and the
// selection, fallback messages, and kPacked errors follow from the data.
#ifndef HH_CORE_CAPABILITIES_HPP
#define HH_CORE_CAPABILITIES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/convergence.hpp"
#include "env/backend.hpp"
#include "env/pairing.hpp"

namespace hh::core {

struct SimulationConfig;

/// What a packed implementation covers. Default-constructed = nothing
/// (the safe declaration for a scalar-only algorithm).
struct Capabilities {
  bool crash_faults = false;       ///< env::FaultType::kCrash plans
  bool byzantine_faults = false;   ///< env::FaultType::kByzantine plans
  bool partial_synchrony = false;  ///< config.skip_probability > 0
  bool count_noise = false;        ///< NoiseConfig::count_sigma > 0
  bool quality_noise = false;      ///< quality_flip_prob / quality_sigma > 0
  std::uint8_t pairings = 0;           ///< bitmask over env::PairingKind
  std::uint8_t convergence_modes = 0;  ///< bitmask over ConvergenceMode
  /// Bitmask over env::BackendKind — which WORLDS the algorithm's
  /// decision kernels are written for. Unlike every other field (which
  /// describes the packed engine only), backends gates BOTH engines: a
  /// kernel routed into a world it was not written for is a programming
  /// error on the scalar path too, so Simulation::build_engine hard-throws
  /// on a mismatch instead of falling back. Defaults to home-nest (bit 0
  /// set): every pre-seam declaration keeps its meaning unchanged.
  std::uint8_t backends = 1;

  [[nodiscard]] bool supports(env::PairingKind kind) const {
    return (pairings & mask(static_cast<std::uint8_t>(kind))) != 0;
  }
  [[nodiscard]] bool supports(ConvergenceMode mode) const {
    return (convergence_modes & mask(static_cast<std::uint8_t>(mode))) != 0;
  }
  [[nodiscard]] bool supports(env::BackendKind kind) const {
    return (backends & mask(static_cast<std::uint8_t>(kind))) != 0;
  }

  // Fluent declaration helpers (registration code reads as a sentence).
  Capabilities& with(env::PairingKind kind) {
    pairings |= mask(static_cast<std::uint8_t>(kind));
    return *this;
  }
  Capabilities& with(ConvergenceMode mode) {
    convergence_modes |= mask(static_cast<std::uint8_t>(mode));
    return *this;
  }
  Capabilities& with(env::BackendKind kind) {
    backends |= mask(static_cast<std::uint8_t>(kind));
    return *this;
  }
  /// Replace the backend mask outright (e.g. a lattice-only algorithm
  /// must clear the default home-nest bit, not add to it).
  Capabilities& only(env::BackendKind kind) {
    backends = mask(static_cast<std::uint8_t>(kind));
    return *this;
  }

  /// Everything the PR-4 pack architecture guarantees for a pack built on
  /// the AntPack base: generic crash/Byzantine fault lanes, loud + quiet
  /// observation (so any noise model), both pairing models, all three
  /// agreement censuses, and partial synchrony (the driver pre-draws each
  /// round's awake mask; sleepers freeze through the base's sleep lanes).
  /// Backends keep the default home-nest-only mask: the built-in kernels
  /// are written for the paper's world.
  [[nodiscard]] static Capabilities standard_pack();

  [[nodiscard]] bool operator==(const Capabilities&) const = default;

 private:
  [[nodiscard]] static std::uint8_t mask(std::uint8_t bit) {
    return static_cast<std::uint8_t>(std::uint8_t{1} << bit);
  }
};

/// Every requirement of `config` (+ the detector's `mode`) that `declared`
/// does not cover, as human-readable reasons — empty means the pack may
/// run this configuration. THE source of truth for engine selection; the
/// strings land verbatim on RunResult::engine_fallback and in the
/// engine=kPacked std::invalid_argument.
[[nodiscard]] std::vector<std::string> capability_gaps(
    const SimulationConfig& config, ConvergenceMode mode,
    const Capabilities& declared);

/// The gaps joined for a fallback message ("; "-separated).
[[nodiscard]] std::string join_gaps(const std::vector<std::string>& gaps);

}  // namespace hh::core

#endif  // HH_CORE_CAPABILITIES_HPP
