#include "core/walker_ant.hpp"

#include <memory>

#include "core/colony.hpp"
#include "core/registry.hpp"
#include "env/lattice.hpp"

namespace hh::core {

void register_lattice_walker_algorithm(AlgorithmRegistry& registry) {
  AlgorithmSpec spec;
  spec.name = std::string(kLatticeWalkerAlgorithmName);
  spec.summary =
      "persistent random walkers on the honeycomb lattice backend "
      "(fast/slow motility syndromes; first-passage workload)";
  spec.mode = ConvergenceMode::kCommitment;
  // The motility knobs live in SimulationConfig::lattice (world identity,
  // not algorithm params), so the param schema is empty.
  Capabilities caps;
  caps.only(env::BackendKind::kLattice);
  caps.partial_synchrony = true;  // sleepers just pause their walk
  caps.with(env::PairingKind::kPermutation)
      .with(env::PairingKind::kUniformProposal)  // no pairing happens; a
      .with(env::PairingKind::kCounter)          // config default is no gap
      .with(ConvergenceMode::kCommitment);
  spec.capabilities = caps;
  spec.colony = [](const SimulationConfig& config, env::FaultPlan plan,
                   std::uint64_t colony_seed, const AlgorithmParams&) {
    const env::NestId target = env::lattice_target_site(config.lattice);
    const AntFactory factory = [target](env::AntId, util::Rng) {
      return std::make_unique<WalkerAnt>(target);
    };
    return make_colony(config.num_ants, factory, std::move(plan), colony_seed,
                       std::string(kLatticeWalkerAlgorithmName));
  };
  spec.pack = [](const SimulationConfig& config, std::uint64_t colony_seed,
                 const AlgorithmParams&, const env::FaultPlan* /*faults*/) {
    return std::make_unique<WalkerPack>(config.num_ants, colony_seed);
  };
  registry.add(std::move(spec));
}

}  // namespace hh::core
