#include "core/optimal_ant.hpp"

#include "util/contracts.hpp"

namespace hh::core {

OptimalAnt::OptimalAnt(std::uint32_t num_ants, bool settle)
    : num_ants_(num_ants), settle_enabled_(settle) {
  HH_EXPECTS(num_ants >= 1);
}

env::Action OptimalAnt::decide(std::uint32_t /*round*/) {
  switch (state_) {
    case State::kSearch:
      return env::Action::search();  // line 7 (R1 of round 1)
    case State::kActive:
      return decide_active();
    case State::kPassive:
      return decide_passive();
    case State::kFinal:
      return env::Action::recruit(true, nest_);  // line 21, every round
    case State::kSettled:
      return env::Action::go(nest_);  // termination extension: stay at nest
  }
  HH_ASSERT(false);
  return env::Action::idle();
}

env::Action OptimalAnt::decide_active() const {
  switch (step_) {
    case 0:  // R1, line 23: try to recruit to the committed nest
      return env::Action::recruit(true, nest_);
    case 1:  // R2, line 24: visit the resulting nest and count
      return env::Action::go(nest_t_);
    case 2:  // R3: case 1 go (line 28), case 2 recruit(0) (line 35),
             // case 3 go to the new nest (line 39)
      HH_ASSERT(case_ != ActiveCase::kUndecided);
      if (case_ == ActiveCase::kCase2) return env::Action::recruit(false, nest_);
      return env::Action::go(nest_);
    case 3:  // R4: case 1 recruit(0) (line 29), cases 2/3 go (lines 36, 42)
      if (case_ == ActiveCase::kCase1) return env::Action::recruit(false, nest_);
      return env::Action::go(nest_);
    default:
      HH_ASSERT(false);
      return env::Action::idle();
  }
}

env::Action OptimalAnt::decide_passive() const {
  switch (step_) {
    case 0:  // R1, line 13: a round at the (non-competing) nest
      return env::Action::go(nest_);
    case 1:  // R2, line 14: home, waiting to be recruited
      return env::Action::recruit(false, nest_);
    case 2:  // R3, line 18
    case 3:  // R4, line 19 — after a successful recruitment these visit the
             // NEW nest (lines 16-17 run before lines 18-19).
      return env::Action::go(nest_);
    default:
      HH_ASSERT(false);
      return env::Action::idle();
  }
}

void OptimalAnt::observe(const env::Outcome& outcome) {
  switch (state_) {
    case State::kSearch:
      // Lines 7-11: commit to the found nest; bad quality => passive.
      nest_ = outcome.nest;
      count_ = outcome.count;
      quality_ = outcome.quality;
      state_ = (quality_ > 0.0) ? State::kActive : State::kPassive;
      step_ = 0;
      case_ = ActiveCase::kUndecided;
      break;
    case State::kActive:
      observe_active(outcome);
      break;
    case State::kPassive:
      observe_passive(outcome);
      break;
    case State::kFinal:
      // Line 21: <nest, .> := recruit(1, nest) — the assignment means a
      // poached final ant switches its commitment to the recruiter's nest.
      nest_ = outcome.nest;
      if (settle_enabled_) {
        // Section 4.2 termination fix: two consecutive rounds with every
        // ant at the home nest are only possible once all ants are final
        // (a passive ant is home at most one round in four), so all finals
        // observe the same streak and settle simultaneously.
        if (outcome.count == num_ants_) {
          if (++full_house_streak_ >= 2) state_ = State::kSettled;
        } else {
          full_house_streak_ = 0;
        }
      }
      break;
    case State::kSettled:
      break;  // go(nest) forever; nothing to learn
  }
}

void OptimalAnt::observe_active(const env::Outcome& outcome) {
  switch (step_) {
    case 0:
      // Line 23: nest_t is the recruit() return value j.
      nest_t_ = outcome.nest;
      step_ = 1;
      break;
    case 1:
      // Line 24: count_t := go(nest_t); then select the case (lines 25-42).
      count_t_ = outcome.count;
      if (nest_t_ == nest_) {
        if (count_t_ >= count_) {
          case_ = ActiveCase::kCase1;  // nest keeps competing
          count_ = count_t_;           // line 27
        } else {
          case_ = ActiveCase::kCase2;  // population decreased: drop out
          pending_passive_ = true;     // line 34 (takes effect after block)
        }
      } else {
        case_ = ActiveCase::kCase3;  // recruited away to another nest
        nest_ = nest_t_;             // line 38
      }
      step_ = 2;
      break;
    case 2:
      if (case_ == ActiveCase::kCase3) {
        // Lines 39-41: count_n distinguishes competing (case-1 ants are at
        // the nest this round, so count_n == count_t) from dropping out
        // (case-2 ants are at home, so count_n < count_t).
        const std::uint32_t count_n = outcome.count;
        if (count_n < count_t_) {
          pending_passive_ = true;  // line 41
        } else {
          // Adopt the new nest's population as the reference for the next
          // block's comparison. The paper's pseudocode omits this
          // assignment, but Section 4.1's prose ("the ant updates that
          // count (count_n)") and the next block's countt >= count test
          // make the intent clear; see DESIGN.md §2.
          count_ = count_n;
        }
      }
      // Case 1: go(nest) — nothing to record. Case 2: recruit(0) return
      // discarded (pseudocode line 35 has no assignment).
      step_ = 3;
      break;
    case 3:
      if (case_ == ActiveCase::kCase1) {
        // Lines 29-31: count_h == count means every active ant in the
        // colony is committed to this nest — switch to final.
        const std::uint32_t count_h = outcome.count;
        if (count_h == count_) {
          state_ = State::kFinal;
        }
      }
      if (state_ != State::kFinal && pending_passive_) {
        state_ = State::kPassive;
      }
      pending_passive_ = false;
      step_ = 0;
      case_ = ActiveCase::kUndecided;
      break;
    default:
      HH_ASSERT(false);
  }
}

void OptimalAnt::observe_passive(const env::Outcome& outcome) {
  switch (step_) {
    case 0:
      step_ = 1;
      break;
    case 1:
      // Lines 14-17: recruited => adopt the new nest and become final
      // after finishing the block's two go(nest) rounds.
      if (outcome.nest != nest_) {
        nest_ = outcome.nest;
        pending_final_ = true;
      }
      step_ = 2;
      break;
    case 2:
      step_ = 3;
      break;
    case 3:
      if (pending_final_) {
        state_ = State::kFinal;
        pending_final_ = false;
      }
      step_ = 0;
      break;
    default:
      HH_ASSERT(false);
  }
}

}  // namespace hh::core
