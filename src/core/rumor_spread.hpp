// The Section 3 lower-bound experiment: rumor spreading in the
// house-hunting model.
//
// Setup (mirroring the proof of Theorem 3.2): a single good nest n_w is
// "the rumor". Every informed ant (one that knows n_w's id) actively
// recruits to it every round — the fastest possible positive feedback.
// Ignorant ants follow one of the strategies an algorithm could give them:
//   * kWaitAtHome — stay home as recruit(0, ·) targets every round
//     (informed at rate ~ X_r / c(0,r), Lemma 3.1 case 2);
//   * kSearch    — search() every round (informed w.p. 1/k, case 3);
//   * kMixed     — each ignorant ant flips a fair coin between the two.
// Measured: rounds until all n ants are informed. Any HouseHunting
// algorithm must inform every ant, so these curves lower-bound achievable
// running time and should scale as Theta(log n) (Theorem 3.2: Omega(log n);
// rumor spreading matches with O(log n)).
#ifndef HH_CORE_RUMOR_SPREAD_HPP
#define HH_CORE_RUMOR_SPREAD_HPP

#include <cstdint>
#include <vector>

#include "env/nest.hpp"

namespace hh::core {

/// What ignorant ants do while waiting to hear the rumor.
enum class IgnorantStrategy : std::uint8_t { kWaitAtHome, kSearch, kMixed };

/// Parameters of a rumor-spreading run.
struct RumorSpreadConfig {
  std::uint32_t num_ants = 0;  ///< n
  std::uint32_t num_nests = 2; ///< k >= 2 (Theorem 3.2 requires k >= 2)
  std::uint64_t seed = 1;
  IgnorantStrategy strategy = IgnorantStrategy::kWaitAtHome;
  std::uint32_t max_rounds = 0;  ///< 0 = automatic
  bool record_curve = false;     ///< keep informed-count per round
};

/// Result of a rumor-spreading run.
struct RumorSpreadResult {
  bool all_informed = false;
  std::uint32_t rounds = 0;  ///< rounds until the last ant was informed
  /// informed_per_round[r] = number of informed ants after round r+1
  /// (only when record_curve).
  std::vector<std::uint32_t> informed_per_round;
  /// Empirical estimate of P[ignorant ant stays ignorant in one round]
  /// aggregated over all (ant, round) exposures — Lemma 3.1 lower-bounds
  /// this by 1/4.
  double stay_ignorant_rate = 0.0;
  std::uint64_t ignorant_exposures = 0;  ///< sample size behind the rate
};

/// Run the best-case spreading process once. Round 1 is a global search()
/// (ants that land on n_w become informed); afterwards informed ants
/// recruit(1, n_w) every round and ignorant ants follow the strategy.
[[nodiscard]] RumorSpreadResult run_rumor_spread(const RumorSpreadConfig& config);

}  // namespace hh::core

#endif  // HH_CORE_RUMOR_SPREAD_HPP
