#include "core/simple_ant.hpp"

#include "util/contracts.hpp"

namespace hh::core {

SimpleAnt::SimpleAnt(std::uint32_t num_ants, util::Rng rng)
    : num_ants_(num_ants), rng_(rng) {
  HH_EXPECTS(num_ants >= 1);
}

double SimpleAnt::recruit_probability() const {
  // Line 6: b := 1 with probability count/n. The perceived count can
  // exceed n under the noisy-observation extension; bernoulli() clamps.
  return static_cast<double>(count_) / static_cast<double>(num_ants_);
}

env::Action SimpleAnt::decide(std::uint32_t round) {
  round_ = round;
  switch (phase_) {
    case Phase::kInit:
      return env::Action::search();  // line 2
    case Phase::kRecruit: {
      if (!active_) return env::Action::recruit(false, nest_);  // line 10
      const bool b = rng_.bernoulli(recruit_probability());     // line 6
      return env::Action::recruit(b, nest_);                    // line 7
    }
    case Phase::kAssess:
      return env::Action::go(nest_);  // lines 8 / 14
  }
  HH_ASSERT(false);
  return env::Action::idle();
}

void SimpleAnt::observe(const env::Outcome& outcome) {
  switch (phase_) {
    case Phase::kInit:
      // Lines 2-4: commit to the found nest; bad quality => passive.
      nest_ = outcome.nest;
      count_ = outcome.count;
      quality_ = outcome.quality;
      if (quality_ <= 0.0) active_ = false;
      phase_ = Phase::kRecruit;
      break;
    case Phase::kRecruit:
      // Active, line 7: nest := recruit(b, nest) — unconditional assignment,
      // so a poached active ant switches commitment. Passive, lines 10-13:
      // a recruited passive ant adopts the nest and becomes active.
      if (outcome.nest != nest_) {
        nest_ = outcome.nest;
        active_ = true;
      }
      phase_ = Phase::kAssess;
      break;
    case Phase::kAssess:
      // Lines 8 / 14: count := go(nest).
      count_ = outcome.count;
      quality_ = outcome.quality;
      // Nest rejection (paper Section 1.1: a recruited ant "can assess the
      // nest itself and begin performing tandem runs if the nest is
      // acceptable"): an ant that finds itself committed to an unsuitable
      // nest stops recruiting for it and waits to be led elsewhere. With
      // exact observation this never triggers for ants recruited by
      // correct peers (only good-nest ants recruit); it matters under
      // noisy quality perception and Byzantine recruiters (Section 6).
      if (quality_ <= 0.0) active_ = false;
      phase_ = Phase::kRecruit;
      break;
  }
}

}  // namespace hh::core
