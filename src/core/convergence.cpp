#include "core/convergence.hpp"

#include "util/contracts.hpp"

namespace hh::core {

ConvergenceMode default_mode(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOptimal:
      return ConvergenceMode::kCommitmentFinalized;
    case AlgorithmKind::kOptimalSettle:
      return ConvergenceMode::kPhysical;
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
      return ConvergenceMode::kCommitment;
    case AlgorithmKind::kQuorum:
      return ConvergenceMode::kCommitment;
  }
  HH_ASSERT(false);
  return ConvergenceMode::kCommitment;
}

std::optional<env::NestId> agreement_from_census(
    std::span<const std::uint32_t> census, std::uint32_t correct_total,
    const env::Environment& environment, double tolerance) {
  HH_EXPECTS(tolerance >= 0.0 && tolerance < 1.0);
  HH_EXPECTS(census.size() == environment.num_nests() + 1);
  if (correct_total == 0) return std::nullopt;
  env::NestId best = env::kHomeNest;
  for (env::NestId i = 1; i <= environment.num_nests(); ++i) {
    if (census[i] > census[best] || best == env::kHomeNest) best = i;
  }
  if (best == env::kHomeNest || census[best] == 0) return std::nullopt;
  if (environment.quality(best) <= 0.0) return std::nullopt;
  const double required =
      (1.0 - tolerance) * static_cast<double>(correct_total);
  if (static_cast<double>(census[best]) < required) return std::nullopt;
  return best;
}

std::optional<env::NestId> current_agreement(const Colony& colony,
                                             const env::Environment& environment,
                                             ConvergenceMode mode,
                                             double tolerance) {
  HH_EXPECTS(tolerance >= 0.0 && tolerance < 1.0);
  // Census of correct ants per nest under the mode's notion of "position".
  std::vector<std::uint32_t> census(environment.num_nests() + 1, 0);
  std::uint32_t correct_total = 0;
  for (env::AntId a = 0; a < colony.size(); ++a) {
    if (!colony.correct(a)) continue;  // faulty ants are exempt
    const Ant& ant = *colony.ants[a];
    const env::NestId nest = (mode == ConvergenceMode::kPhysical)
                                 ? environment.location(a)
                                 : ant.committed_nest();
    ++correct_total;
    // Finalization is required of the agreeing majority; with tolerance 0
    // this means every correct ant.
    const bool counts = mode == ConvergenceMode::kCommitment || ant.finalized();
    if (counts) ++census[nest];
  }
  return agreement_from_census(census, correct_total, environment, tolerance);
}

bool ConvergenceDetector::update(const Colony& colony,
                                 const env::Environment& environment) {
  if (converged_) return true;
  return observe_agreement(
      current_agreement(colony, environment, mode_, tolerance_),
      environment.round());
}

bool ConvergenceDetector::update(std::span<const std::uint32_t> census,
                                 std::uint32_t correct_total,
                                 const env::Environment& environment) {
  if (converged_) return true;
  return observe_agreement(
      agreement_from_census(census, correct_total, environment, tolerance_),
      environment.round());
}

bool ConvergenceDetector::observe_agreement(
    std::optional<env::NestId> agreement, std::uint32_t round) {
  if (converged_) return true;
  if (!agreement.has_value()) {
    // The streak breaks; streak_start_ deliberately keeps its last value
    // (decision_round() is only meaningful once converged, and an
    // agreement-free round must not masquerade as a streak origin).
    streak_nest_ = env::kHomeNest;
    streak_length_ = 0;
    return false;
  }
  if (*agreement != streak_nest_) {
    // New streak — whether after a break (streak_nest_ == kHomeNest, which
    // agreement_from_census never returns) or a flip to a different nest
    // on the very next round. Either way it starts at this round.
    streak_nest_ = *agreement;
    streak_length_ = 1;
    streak_start_ = round;
  } else {
    ++streak_length_;
  }
  if (streak_length_ >= stability_rounds_ + 1) {
    converged_ = true;
    winner_ = streak_nest_;
  }
  return converged_;
}

void ConvergenceDetector::reset() {
  converged_ = false;
  winner_ = env::kHomeNest;
  streak_nest_ = env::kHomeNest;
  streak_length_ = 0;
  streak_start_ = 0;
}

}  // namespace hh::core
