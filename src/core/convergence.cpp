#include "core/convergence.hpp"

#include "util/contracts.hpp"

namespace hh::core {

ConvergenceMode default_mode(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOptimal:
      return ConvergenceMode::kCommitmentFinalized;
    case AlgorithmKind::kOptimalSettle:
      return ConvergenceMode::kPhysical;
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
      return ConvergenceMode::kCommitment;
    case AlgorithmKind::kQuorum:
      return ConvergenceMode::kCommitment;
  }
  HH_ASSERT(false);
  return ConvergenceMode::kCommitment;
}

std::optional<env::NestId> agreement_from_census(
    std::span<const std::uint32_t> census, std::uint32_t correct_total,
    const env::Environment& environment, double tolerance) {
  HH_EXPECTS(tolerance >= 0.0 && tolerance < 1.0);
  HH_EXPECTS(census.size() == environment.num_nests() + 1);
  if (correct_total == 0) return std::nullopt;
  env::NestId best = env::kHomeNest;
  for (env::NestId i = 1; i <= environment.num_nests(); ++i) {
    if (census[i] > census[best] || best == env::kHomeNest) best = i;
  }
  if (best == env::kHomeNest || census[best] == 0) return std::nullopt;
  if (environment.quality(best) <= 0.0) return std::nullopt;
  const double required =
      (1.0 - tolerance) * static_cast<double>(correct_total);
  if (static_cast<double>(census[best]) < required) return std::nullopt;
  return best;
}

std::optional<env::NestId> current_agreement(const Colony& colony,
                                             const env::Environment& environment,
                                             ConvergenceMode mode,
                                             double tolerance) {
  HH_EXPECTS(tolerance >= 0.0 && tolerance < 1.0);
  // Census of correct ants per nest under the mode's notion of "position".
  std::vector<std::uint32_t> census(environment.num_nests() + 1, 0);
  std::uint32_t correct_total = 0;
  for (env::AntId a = 0; a < colony.size(); ++a) {
    if (!colony.correct(a)) continue;  // faulty ants are exempt
    const Ant& ant = *colony.ants[a];
    const env::NestId nest = (mode == ConvergenceMode::kPhysical)
                                 ? environment.location(a)
                                 : ant.committed_nest();
    ++correct_total;
    // Finalization is required of the agreeing majority; with tolerance 0
    // this means every correct ant.
    const bool counts = mode == ConvergenceMode::kCommitment || ant.finalized();
    if (counts) ++census[nest];
  }
  return agreement_from_census(census, correct_total, environment, tolerance);
}

bool ConvergenceDetector::update(const Colony& colony,
                                 const env::Environment& environment) {
  if (converged_) return true;
  return apply(current_agreement(colony, environment, mode_, tolerance_),
               environment);
}

bool ConvergenceDetector::update(std::span<const std::uint32_t> census,
                                 std::uint32_t correct_total,
                                 const env::Environment& environment) {
  if (converged_) return true;
  return apply(
      agreement_from_census(census, correct_total, environment, tolerance_),
      environment);
}

bool ConvergenceDetector::apply(std::optional<env::NestId> agreement,
                                const env::Environment& environment) {
  if (!agreement.has_value() || *agreement != streak_nest_) {
    streak_nest_ = agreement.value_or(env::kHomeNest);
    streak_length_ = agreement.has_value() ? 1 : 0;
    streak_start_ = environment.round();
    if (agreement.has_value() && streak_length_ >= stability_rounds_ + 1) {
      converged_ = true;
      winner_ = *agreement;
    }
    return converged_;
  }
  ++streak_length_;
  if (streak_length_ >= stability_rounds_ + 1) {
    converged_ = true;
    winner_ = streak_nest_;
  }
  return converged_;
}

}  // namespace hh::core
