// The packed (struct-of-arrays) ant engine — the zero-dispatch fast path
// for large sweeps.
//
// The per-object path models each ant as a heap-allocated polymorphic
// state machine: every round costs n virtual decide() calls, n virtual
// observe() calls, and another n virtual committed_nest() calls in the
// convergence detector. But the paper's colonies are n IDENTICAL
// probabilistic FSMs (Section 2), so an algorithm's whole colony can be
// run as parallel state arrays — one state/nest/count/RNG lane per ant —
// with a single non-virtual decide/observe pass per round over
// contiguous memory.
//
// Equivalence contract: a pack must reproduce the per-object colony
// BIT-IDENTICALLY — same per-ant RNG streams (seeded exactly as
// make_colony seeds them), same draw sequence, same floating-point
// expressions — so RunResults match the reference path for every seed.
// tests/test_ant_pack.cpp enforces this for every packed algorithm at
// 1/2/8 runner threads.
//
// Layering (the phase-aware decision-kernel split):
//   * DERIVED packs implement the algorithm's correct-ant kernels:
//     correct_shape() classifies each round, decide_masked()/the uniform
//     fill_* methods produce the acting ants' calls, and the observe
//     kernels absorb results — always drawing per-ant RNG in ant order,
//     exactly as the scalar ants would.
//   * The BASE class owns the generic fault lanes (crash rounds,
//     Byzantine scout/recruit machines mirrored from the core fault
//     wrappers, driven by env::FaultPlan): it overlays faulty ants onto
//     each round's op/active/target lanes and gates the derived kernels
//     to the acting correct ants, so every algorithm gains packed fault
//     support without fault code of its own.
//   * Colony-uniform rounds (every ant searches/recruits/goes) route
//     through the environment's all-* fast paths; mixed-phase rounds
//     (Algorithm 2's interleaved R1-R4 blocks, any faulted round) route
//     through the masked SoA entry points (Environment::step_masked_*).
//     Under exact observation both use the Outcome-free quiet forms.
//
// Packs exist for every built-in algorithm: the Algorithm-3 family
// (simple, rate-boosted, quality-aware, uniform-recruit), the quorum
// baseline, and Algorithm 2 (optimal, with and without the Section 4.2
// settle fix; see optimal_pack.cpp). Partial synchrony runs packed too:
// the driver pre-draws the round's awake mask (same scheduler stream and
// ant order as the scalar loop) and hands it to begin_round(); the base
// overlays sleeping ants as MaskedOp::kIdle rows exactly as it overlays
// crashed ants, and each pack keeps per-ant phase lanes so a slept ant's
// state machine freezes and resumes like its scalar counterpart.
#ifndef HH_CORE_ANT_PACK_HPP
#define HH_CORE_ANT_PACK_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/capabilities.hpp"
#include "core/colony.hpp"
#include "core/convergence.hpp"
#include "env/action.hpp"
#include "env/environment.hpp"
#include "env/faults.hpp"
#include "env/nest.hpp"
#include "env/pairing.hpp"
#include "util/rng.hpp"

namespace hh::core {

/// The composition of a round, letting the driver route to the
/// environment's SoA fast paths instead of the generic per-action
/// dispatch. Uniform shapes are reported only when EVERY ant makes that
/// call (so never under fault lanes); the masked shapes carry mixed
/// rounds through Environment::step_masked_*.
enum class RoundShape : std::uint8_t {
  kAllSearch,      ///< every ant searches (round 1, fault-free)
  kAllRecruit,     ///< every ant recruits: fill_recruit_* + step_all_recruit
  kAllGo,          ///< every ant goes: go_targets + step_all_go
  kMaskedRecruit,  ///< mixed ops, recruiters possible: fill_masked +
                   ///< step_masked_recruit
  kMaskedGo,       ///< mixed ops, NO recruiters: fill_masked + step_masked_go
};

/// A whole colony as parallel state arrays. One virtual call per ROUND
/// (not per ant); the loops inside are non-virtual and allocation-free.
class AntPack {
 public:
  AntPack(const AntPack&) = delete;
  AntPack& operator=(const AntPack&) = delete;
  virtual ~AntPack();

  // --- driver interface (core::Simulation) --------------------------------

  /// The shape of `round` (1-based), fault lanes included: a colony whose
  /// correct ants are uniform still reports a masked shape when any
  /// faulty ant deviates (a crashed ant idles, a Byzantine ant searches
  /// then recruits).
  [[nodiscard]] RoundShape round_shape(std::uint32_t round) const;

  /// Partial synchrony: install the round's awake mask BEFORE consulting
  /// round_shape (a round with any sleeper reports a masked shape).
  /// awake[a] == 0 freezes ant a for the round: its row becomes
  /// MaskedOp::kIdle, its decide kernel draws nothing, and its observe
  /// kernel is skipped — exactly the scalar scheduler-gated loop. The
  /// driver draws the mask (scheduler stream, ant order) so the pack
  /// consumes no scheduler randomness itself. The mask is copied; it does
  /// not need to outlive the call. Omitting the call means all-awake.
  void begin_round(std::span<const std::uint8_t> awake);

  /// kMaskedRecruit/kMaskedGo rounds: fill every ant's op/active/target
  /// lanes for `round` — fault rows written by the base class, acting
  /// correct ants by the derived decide kernel (drawing the same RNG
  /// sequence the scalar colony would).
  void fill_masked(std::uint32_t round, std::span<env::MaskedOp> op,
                   std::span<std::uint8_t> active,
                   std::span<env::NestId> targets);

  /// Absorb a masked round's Outcomes (the loud form — required under
  /// noisy observation).
  void observe_masked(std::span<const env::Outcome> outcomes);

  /// Absorb a masked round quietly (exact observation): results are read
  /// straight off the environment (counts, locations, the ant-indexed
  /// matching view). `op` and `targets` must be the lanes fill_masked
  /// produced for this round — each ant's result kind and the recruit
  /// returns resolve through them.
  void observe_masked_quiet(const env::Environment& env,
                            std::span<const env::MaskedOp> op,
                            std::span<const env::NestId> targets);

  /// The fused tail of a fault-free, fully-awake masked-recruit round:
  /// absorb round `round` quietly AND overwrite the same lanes with every
  /// ant's round `round + 1` decision, returning true — the driver then
  /// skips fill_masked for the next round. Falls back to the plain quiet
  /// observe (returning false) when fault or sleep lanes are live, when
  /// round `round + 1`'s correct shape is not kMaskedRecruit, or when the
  /// pack does not implement the fusion hook. Must not be called under
  /// partial synchrony — the sleep overlay belongs to fill_masked.
  [[nodiscard]] bool observe_masked_quiet_then_decide(
      std::uint32_t round, const env::Environment& env,
      std::span<env::MaskedOp> op, std::span<std::uint8_t> active,
      std::span<env::NestId> targets);

  /// kAllRecruit rounds only: write every ant's recruit(b, i) call into
  /// `requests` (requests[a].ant = a), drawing the same RNG sequence the
  /// scalar colony would draw. The loud (Outcome-producing) form.
  virtual void fill_recruit_requests(std::uint32_t round,
                                     std::span<env::RecruitRequest> requests);

  /// kAllRecruit rounds only, SoA form for the quiet path: write every
  /// ant's b into `active` and return the advertised-nest lane (a
  /// pack-owned snapshot that stays valid through the following
  /// observe_recruit_pairing). Same RNG sequence as fill_recruit_requests.
  [[nodiscard]] virtual std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t round, std::span<std::uint8_t> active);

  /// kAllGo rounds only: the per-ant go() targets. Packs return a view of
  /// their committed-nest lane — no copy.
  [[nodiscard]] virtual std::span<const env::NestId> go_targets() const;

  /// Deliver the end-of-round return values of a uniform round
  /// (outcomes[a] answers ant a's call). Uniform shapes are only reported
  /// fault-free, where the act lane is all-ones — so the default forwards
  /// to the masked observe kernel, which IS the uniform kernel then (one
  /// copy of every transition, not two).
  virtual void observe_all(std::span<const env::Outcome> outcomes);

  // Quiet observation (exact model only): consume the round's results
  // straight from the environment's pairing scratch / count arrays instead
  // of a per-ant Outcome array. Semantically identical to observe_all over
  // the Outcomes the loud round would have produced.

  /// Apply a kAllRecruit round: `targets` as returned by
  /// fill_recruit_soa, `pairing` from Environment::last_pairing().
  virtual void observe_recruit_pairing(std::span<const env::NestId> targets,
                                       const env::PairingScratch& pairing);

  /// Apply a kAllGo round from end-of-round counts (size k+1, by nest)
  /// and true qualities (size k, nest i at [i-1]).
  virtual void observe_go_counts(std::span<const std::uint32_t> counts,
                                 std::span<const double> qualities);

  /// Overwrite `census` (size k+1, indexed by nest) with the number of
  /// CORRECT ants committed to each nest (faulty ants are exempt from
  /// convergence, matching the scalar path's committed_census). The base
  /// serves it from the shared commitment lanes; packs that adopt nests
  /// exclusively through adopt() need no override.
  virtual void committed_census(std::span<std::uint32_t> census) const;

  /// The agreement census the convergence detector consumes, under the
  /// algorithm's convergence notion (see core::current_agreement):
  /// `census[i]` counts the correct ants agreeing on nest i — committed
  /// (kCommitment), committed AND finalized (kCommitmentFinalized), or
  /// physically located there and finalized (kPhysical). Returns the
  /// number of correct ants the census was taken over. The base handles
  /// kCommitment via committed_census(); packs whose algorithms default
  /// to another mode override.
  [[nodiscard]] virtual std::uint32_t agreement_census(
      ConvergenceMode mode, const env::Environment& env,
      std::span<std::uint32_t> census) const;

  /// Whether ant a has durably decided (see Ant::finalized). Byzantine
  /// ants never report finalized (their lanes never run the correct-ant
  /// kernels), matching core::ByzantineAnt.
  [[nodiscard]] virtual bool finalized(env::AntId a) const;

  /// True iff any ant is finalized — lets the driver skip the per-ant
  /// finalized() scan when attributing tandem runs vs transports.
  [[nodiscard]] virtual bool any_finalized() const;

  /// Number of `ants` (each listed at most once) that are finalized — the
  /// batch form of finalized() the driver feeds the round's successful
  /// recruiters (env::Environment::successful_recruiters()) to attribute
  /// transports. One virtual call per round instead of one per ant; packs
  /// with a state lane override it with a flat counted loop.
  [[nodiscard]] virtual std::uint32_t count_finalized(
      std::span<const env::AntId> ants) const;

  /// Install the per-ant fault lanes a sampled env::FaultPlan describes:
  /// crash victims idle from their crash round on (their lanes freeze,
  /// exactly like core::CrashProneAnt freezes its inner ant); Byzantine
  /// positions never run the algorithm kernel at all — they scout for the
  /// worst nest, then actively recruit toward it forever
  /// (core::ByzantineAnt). Call before reset(); reset() re-derives the
  /// Byzantine scout state but keeps the installed plan. Allocation-free
  /// after the first installation at a given colony size.
  void install_fault_plan(const env::FaultPlan& plan);

  /// Rewind the whole colony to its pre-round-1 state under a new colony
  /// seed, reusing every lane — per-ant RNG streams are re-derived exactly
  /// as construction derives them (mix_seed(colony_seed, ant, 0xA17),
  /// including the believed-n draw order), so a reset pack is
  /// indistinguishable from a freshly built one. Returns false when the
  /// pack does not support in-place reset (the caller reconstructs); the
  /// built-in packs all return true. Allocation-free.
  [[nodiscard]] bool reset(std::uint64_t colony_seed);

  /// Colony size n.
  [[nodiscard]] std::uint32_t size() const { return num_ants_; }

  /// Stable algorithm name (matches algorithm_name(kind)).
  [[nodiscard]] virtual std::string_view name() const = 0;

 protected:
  AntPack(std::uint32_t num_ants, std::uint32_t num_nests);

  // --- the decision-kernel interface derived packs implement ---------------

  /// The shape `round` would have if every ant were correct. The base
  /// overlays fault lanes on top (a uniform shape degrades to a masked
  /// one; byz recruiters can turn kAllGo/kMaskedGo into kMaskedRecruit).
  [[nodiscard]] virtual RoundShape correct_shape(std::uint32_t round) const = 0;

  /// reset() body: re-derive every lane from `colony_seed`. Byzantine
  /// positions must skip the algorithm's per-ant construction draws
  /// (their scalar counterparts never construct the inner ant); use
  /// byzantine(a). Return false if in-place reset is unsupported.
  [[nodiscard]] virtual bool do_reset(std::uint64_t colony_seed) = 0;

  /// Masked decide kernel: for every ant with act[a] != 0 write op[a]
  /// (+ active/targets as the op requires), drawing per-ant RNG exactly
  /// as the scalar ant's decide() would. Rows with act[a] == 0 are the
  /// base class's (faulty ants) — leave them untouched.
  virtual void decide_masked(std::uint32_t round,
                             std::span<const std::uint8_t> act,
                             std::span<env::MaskedOp> op,
                             std::span<std::uint8_t> active,
                             std::span<env::NestId> targets);

  /// Masked observe kernel, loud form: apply outcomes[a] for every ant
  /// with act[a] != 0.
  virtual void observe_masked_acting(std::span<const std::uint8_t> act,
                                     std::span<const env::Outcome> outcomes);

  /// Masked observe kernel, quiet form (exact observation): derive each
  /// acting ant's results from the environment (counts(), location(),
  /// recruited_by_ant()) and the round's op/target lanes — op[a] is the
  /// single source of truth for whether ant a's result is a recruit
  /// return or a visit count (no kernel re-derives its decide table).
  virtual void observe_masked_quiet_acting(std::span<const std::uint8_t> act,
                                           const env::Environment& env,
                                           std::span<const env::MaskedOp> op,
                                           std::span<const env::NestId> targets);

  /// Fusion hook behind observe_masked_quiet_then_decide. The caller's
  /// gates guarantee every lane acts (no faults, no sleepers, act_ all
  /// ones) and that the next round's correct shape is kMaskedRecruit.
  /// Implementations observe every ant quietly and immediately rewrite
  /// its op/active/target lanes with the NEXT round's decision — one pass
  /// over the state lanes instead of an observe sweep plus a decide
  /// sweep — then return true. The default opts out: return false with
  /// NO side effects (the caller then runs the plain quiet observe).
  [[nodiscard]] virtual bool fused_observe_decide(
      const env::Environment& /*env*/, std::span<env::MaskedOp> /*op*/,
      std::span<std::uint8_t> /*active*/, std::span<env::NestId> /*targets*/) {
    return false;
  }

  // --- fault-lane helpers for derived kernels ------------------------------

  [[nodiscard]] bool has_faults() const { return has_faults_; }
  /// The round fill_masked() last planned — for observe kernels that need
  /// the round number back (Algorithm 2's block step).
  [[nodiscard]] std::uint32_t masked_round() const { return masked_round_; }
  /// True iff ant a is Byzantine (its lane never runs the derived kernel).
  [[nodiscard]] bool byzantine(env::AntId a) const {
    return has_faults_ && fault_type_[a] ==
                              static_cast<std::uint8_t>(env::FaultType::kByzantine);
  }
  /// True iff ant a belongs in convergence censuses (correct ants only;
  /// crash-SCHEDULED ants are exempt from the start, like the scalar
  /// path's Colony::correct).
  [[nodiscard]] bool counts_in_census(env::AntId a) const {
    return !has_faults_ ||
           fault_type_[a] == static_cast<std::uint8_t>(env::FaultType::kNone);
  }
  /// Number of correct ants (the census total).
  [[nodiscard]] std::uint32_t correct_count() const {
    return has_faults_ ? correct_count_ : num_ants_;
  }
  /// True iff ant a acts this round (partial synchrony; all-ones unless
  /// begin_round installed a mask with sleepers).
  [[nodiscard]] bool awake(env::AntId a) const { return awake_[a] != 0; }
  /// True iff the current round's mask has at least one sleeper.
  [[nodiscard]] bool any_asleep() const { return any_asleep_; }

  // --- shared commitment lanes ---------------------------------------------
  // Every pack tracks one committed nest per ant plus the incremental
  // census of correct ants over it; the lanes and their maintenance live
  // here ONCE so the census-exemption rule cannot drift between packs.

  /// Commitment change with census maintenance (correct ants only).
  void adopt(std::size_t a, env::NestId j) {
    if (counts_in_census(static_cast<env::AntId>(a))) {
      --census_[nest_[a]];
      ++census_[j];
    }
    nest_[a] = j;
  }

  /// Rewind the commitment lanes to round 0: every ant committed to the
  /// home nest, census over the correct ants (do_reset calls this).
  void reset_commitments();

  std::vector<env::NestId> nest_;      ///< committed nest per ant
  std::vector<std::uint32_t> census_;  ///< committed census, correct ants

 private:
  /// Recompute the acting lane for `round` and write the faulty ants'
  /// op/active/target rows.
  void overlay_faults(std::uint32_t round, std::span<env::MaskedOp> op,
                      std::span<std::uint8_t> active,
                      std::span<env::NestId> targets);

  /// Burn one scout round for Byzantine ant a (it searched this round).
  void scout_round_done(env::AntId a) {
    if (++byz_scouted_[a] == kByzantineScoutRounds) --byz_scouting_;
  }

  std::uint32_t num_ants_;
  bool has_faults_ = false;
  std::uint32_t correct_count_ = 0;
  std::uint32_t byz_count_ = 0;
  std::uint32_t masked_round_ = 0;  ///< round of the last fill_masked
  bool any_asleep_ = false;         ///< current round's mask has a sleeper
  // After a sleep round without fault lanes, act_ holds stale zeros.
  // begin_round (called every partial-synchrony round, before round_shape
  // dispatch) refills and clears the flag so a uniform round's observe_all
  // never sees them; fill_masked and reset also clear it for drivers that
  // step the pack directly. overlay_faults rewrites act_ wholesale each
  // round, so faulted packs never set this.
  bool act_stale_ = false;
  std::vector<std::uint8_t> act_;   ///< 1 = run the derived kernel this round
  std::vector<std::uint8_t> awake_;  ///< partial synchrony: 1 = acts
  std::vector<std::uint8_t> fault_type_;     ///< env::FaultType per ant
  std::vector<std::uint32_t> crash_round_;   ///< round >= which the ant idles
  std::vector<env::NestId> byz_target_;      ///< worst nest found so far
  std::vector<double> byz_quality_;          ///< its quality (2.0 = none yet)
  // A Byzantine ant scouts for kByzantineScoutRounds SEARCHES, not rounds:
  // like the scalar ByzantineAnt's rounds_scouted_, the counter only
  // advances when the ant actually searched, so sleeping through a round
  // stretches its scout window. byz_scouting_ counts the ants still in
  // theirs (0 = the worst-nest scan can be skipped entirely).
  std::vector<std::uint8_t> byz_scouted_;    ///< searches done, saturates
  std::uint32_t byz_scouting_ = 0;
};

/// True iff `kind` has a packed implementation.
[[nodiscard]] bool packed_available(AlgorithmKind kind);

/// The declared capability matrix of `kind`'s packed engine — what
/// configurations the pack may run, consumed by the data-driven engine
/// selection (core/capabilities.hpp, core/registry.hpp). Every built-in
/// pack rides the AntPack base's fault lanes and masked observation, so
/// they all declare Capabilities::standard_pack(); tests/test_registry.cpp
/// holds each declaration to what tests/test_ant_pack.cpp exercises.
[[nodiscard]] Capabilities packed_capabilities(AlgorithmKind kind);

/// Build the packed colony for `kind`, or nullptr if none exists.
/// `colony_seed` is the same seed make_colony would receive; per-ant RNG
/// streams are derived from it identically to the per-object path.
/// `num_nests` is k (packs keep an incrementally-maintained commitment
/// census of size k+1). `faults`, when non-null, is the sampled plan the
/// scalar path would wrap ants with — installed as pack-level fault lanes.
[[nodiscard]] std::unique_ptr<AntPack> make_ant_pack(
    AlgorithmKind kind, std::uint32_t num_ants, std::uint32_t num_nests,
    std::uint64_t colony_seed, const AlgorithmParams& params,
    const env::FaultPlan* faults = nullptr);

}  // namespace hh::core

#endif  // HH_CORE_ANT_PACK_HPP
