// The packed (struct-of-arrays) ant engine — the zero-dispatch fast path
// for large sweeps.
//
// The per-object path models each ant as a heap-allocated polymorphic
// state machine: every round costs n virtual decide() calls, n virtual
// observe() calls, and another n virtual committed_nest() calls in the
// convergence detector. But the paper's colonies are n IDENTICAL
// probabilistic FSMs (Section 2), so an algorithm's whole colony can be
// run as parallel state arrays — one state/nest/count/RNG lane per ant —
// with a single non-virtual decide_all/observe_all pass per round over
// contiguous memory.
//
// Equivalence contract: a pack must reproduce the per-object colony
// BIT-IDENTICALLY — same per-ant RNG streams (seeded exactly as
// make_colony seeds them), same draw sequence, same floating-point
// expressions — so RunResults match the reference path for every seed.
// tests/test_ant_pack.cpp enforces this for every packed algorithm at
// 1/2/8 runner threads.
//
// Packs exist for the Algorithm-3 family (simple, rate-boosted,
// quality-aware, uniform-recruit) and the quorum baseline. Fault wrappers,
// partial synchrony, and non-kCommitment convergence stay on the
// per-object reference path (core::Simulation falls back automatically;
// see SimulationConfig::engine).
#ifndef HH_CORE_ANT_PACK_HPP
#define HH_CORE_ANT_PACK_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/colony.hpp"
#include "env/action.hpp"
#include "env/nest.hpp"
#include "env/pairing.hpp"
#include "util/rng.hpp"

namespace hh::core {

/// The composition of a colony-uniform round, letting the driver route to
/// the environment's SoA fast paths (Environment::step_all_*) instead of
/// the generic per-action dispatch.
enum class RoundShape : std::uint8_t {
  kGeneric,     ///< mixed calls: decide_all + Environment::step
  kAllSearch,   ///< every ant searches (round 1)
  kAllRecruit,  ///< every ant recruits: fill_recruit_requests + step_all_recruit
  kAllGo,       ///< every ant goes: go_targets + step_all_go
};

/// A whole colony as parallel state arrays. One virtual call per ROUND
/// (not per ant); the loops inside are non-virtual and allocation-free.
class AntPack {
 public:
  AntPack() = default;
  AntPack(const AntPack&) = delete;
  AntPack& operator=(const AntPack&) = delete;
  virtual ~AntPack();

  /// The shape decide_all would produce for `round` (1-based). The default
  /// kGeneric is always correct; packs whose FSM phases are colony-
  /// synchronized report uniform shapes to unlock the env fast paths.
  [[nodiscard]] virtual RoundShape round_shape(std::uint32_t round) const;

  /// kAllRecruit rounds only: write every ant's recruit(b, i) call into
  /// `requests` (requests[a].ant = a), drawing the same RNG sequence
  /// decide_all would draw. The loud (Outcome-producing) form.
  virtual void fill_recruit_requests(std::uint32_t round,
                                     std::span<env::RecruitRequest> requests);

  /// kAllRecruit rounds only, SoA form for the quiet path: write every
  /// ant's b into `active` and return the advertised-nest lane (a
  /// pack-owned snapshot that stays valid through the following
  /// observe_recruit_pairing). Same RNG sequence as fill_recruit_requests.
  [[nodiscard]] virtual std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t round, std::span<std::uint8_t> active);

  /// kAllGo rounds only: the per-ant go() targets. Packs return a view of
  /// their committed-nest lane — no copy.
  [[nodiscard]] virtual std::span<const env::NestId> go_targets() const;

  /// kGeneric rounds only: write every ant's single model call for
  /// `round` (1-based) into `actions` (size() entries). Packs whose
  /// round_shape() never reports kGeneric need not implement it.
  virtual void decide_all(std::uint32_t round,
                          std::span<env::Action> actions);

  /// Deliver the end-of-round return values (outcomes[a] answers the call
  /// actions[a] from the matching decide_all()).
  virtual void observe_all(std::span<const env::Outcome> outcomes) = 0;

  // Quiet observation (exact model only): consume the round's results
  // straight from the environment's pairing scratch / count arrays instead
  // of a per-ant Outcome array. Semantically identical to observe_all over
  // the Outcomes the loud round would have produced.

  /// Apply a kAllRecruit round: `targets` as returned by
  /// fill_recruit_soa, `pairing` from Environment::last_pairing().
  virtual void observe_recruit_pairing(std::span<const env::NestId> targets,
                                       const env::PairingScratch& pairing);

  /// Apply a kAllGo round from end-of-round counts (size k+1, by nest)
  /// and true qualities (size k, nest i at [i-1]).
  virtual void observe_go_counts(std::span<const std::uint32_t> counts,
                                 std::span<const double> qualities);

  /// Overwrite `census` (size k+1, indexed by nest) with the number of
  /// ants committed to each nest.
  virtual void committed_census(std::span<std::uint32_t> census) const = 0;

  /// Whether ant a has durably decided (see Ant::finalized).
  [[nodiscard]] virtual bool finalized(env::AntId a) const;

  /// True iff any ant is finalized — lets the driver skip the per-ant
  /// finalized() scan when attributing tandem runs vs transports.
  [[nodiscard]] virtual bool any_finalized() const;

  /// Rewind the whole colony to its pre-round-1 state under a new colony
  /// seed, reusing every lane — per-ant RNG streams are re-derived exactly
  /// as construction derives them (mix_seed(colony_seed, ant, 0xA17),
  /// including the believed-n draw order), so a reset pack is
  /// indistinguishable from a freshly built one. Returns false when the
  /// pack does not support in-place reset (the caller reconstructs); the
  /// built-in packs all return true. Allocation-free.
  [[nodiscard]] virtual bool reset(std::uint64_t colony_seed);

  /// Colony size n.
  [[nodiscard]] virtual std::uint32_t size() const = 0;

  /// Stable algorithm name (matches algorithm_name(kind)).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// True iff `kind` has a packed implementation.
[[nodiscard]] bool packed_available(AlgorithmKind kind);

/// Build the packed colony for `kind`, or nullptr if none exists.
/// `colony_seed` is the same seed make_colony would receive; per-ant RNG
/// streams are derived from it identically to the per-object path.
/// `num_nests` is k (packs keep an incrementally-maintained commitment
/// census of size k+1).
[[nodiscard]] std::unique_ptr<AntPack> make_ant_pack(
    AlgorithmKind kind, std::uint32_t num_ants, std::uint32_t num_nests,
    std::uint64_t colony_seed, const AlgorithmParams& params);

}  // namespace hh::core

#endif  // HH_CORE_ANT_PACK_HPP
