// The idle-search variant — a PAPERS.md algorithm registered purely
// through the registry-v2 API (core/registry.hpp), with zero engine edits.
//
// Inspired by Afek, Gordon & Sulamy, "Idle Ants Have a Role" (DISC 2015,
// arXiv:1506.07118): a sizable fraction of a real colony is "idle", and
// the paper argues these ants act as a reserve workforce that keeps the
// colony responsive. Grafted onto Algorithm 3's recruitment dynamic:
//
//   * active ants behave exactly as in Algorithm 3 — recruit(b, nest)
//     with b ~ Bernoulli(count / n) in recruitment rounds, go(nest) in
//     assessment rounds;
//   * PASSIVE (idle) ants are not dead weight waiting at the home nest:
//     in each recruitment round, with probability idle_search_prob
//     (AlgorithmParams) they spend the round re-scouting — search() — at
//     the cost of being absent from the pairing (they cannot be recruited
//     that round). An idle scout that turns up a good nest adopts it and
//     activates itself, feeding discoveries into the urn dynamic that
//     pure Algorithm 3 would only reach through recruitment chains.
//
// Scalar-only by declaration: the spec carries no pack factory, so every
// kAuto run lands on the per-object engine with a loud capability-gap
// fallback ("no packed implementation") — the registry's data-driven
// engine selection at work.
#ifndef HH_CORE_IDLE_SEARCH_ANT_HPP
#define HH_CORE_IDLE_SEARCH_ANT_HPP

#include <cstdint>

#include "core/ant.hpp"
#include "util/rng.hpp"

namespace hh::core {

class AlgorithmRegistry;

/// One ant of the idle-search variant.
class IdleSearchAnt final : public Ant {
 public:
  /// `num_ants` is the ant's (possibly approximate) belief of n;
  /// `search_prob` is the per-recruitment-round re-scout probability of a
  /// passive ant.
  IdleSearchAnt(std::uint32_t num_ants, util::Rng rng, double search_prob);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override { return nest_; }
  [[nodiscard]] std::string_view name() const override {
    return "idle-search";
  }

  /// Whether the ant is in the active (recruiting) state.
  [[nodiscard]] bool active() const { return active_; }

 private:
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  std::uint32_t num_ants_;
  util::Rng rng_;
  double search_prob_;

  Phase phase_ = Phase::kInit;
  bool active_ = true;
  bool scouting_ = false;  ///< this recruitment round was spent searching
  env::NestId nest_ = env::kHomeNest;
  std::uint32_t count_ = 0;
};

/// The stable registry name of the variant.
inline constexpr std::string_view kIdleSearchAlgorithmName = "idle-search";

/// Register the variant's AlgorithmSpec (capability matrix: scalar-only;
/// params: n_estimate_error, idle_search_prob). Called once by the
/// registry's built-in bootstrap; safe to call again (replacement).
void register_idle_search_algorithm(AlgorithmRegistry& registry);

}  // namespace hh::core

#endif  // HH_CORE_IDLE_SEARCH_ANT_HPP
