#include "core/idle_search_ant.hpp"

#include <memory>

#include "core/colony.hpp"
#include "core/registry.hpp"
#include "util/contracts.hpp"

namespace hh::core {

IdleSearchAnt::IdleSearchAnt(std::uint32_t num_ants, util::Rng rng,
                             double search_prob)
    : num_ants_(num_ants), rng_(rng), search_prob_(search_prob) {
  HH_EXPECTS(num_ants >= 1);
  HH_EXPECTS(search_prob >= 0.0 && search_prob <= 1.0);
}

env::Action IdleSearchAnt::decide(std::uint32_t /*round*/) {
  switch (phase_) {
    case Phase::kInit:
      return env::Action::search();
    case Phase::kRecruit: {
      if (active_) {
        scouting_ = false;
        const double p =
            static_cast<double>(count_) / static_cast<double>(num_ants_);
        return env::Action::recruit(rng_.bernoulli(p), nest_);
      }
      // The idle-ant rule: a passive ant is a reserve scout. With
      // probability search_prob_ it spends the round searching (and is
      // therefore absent from the home-nest pairing); otherwise it waits
      // at home, recruitable, exactly like Algorithm 3's passive ants.
      scouting_ = rng_.bernoulli(search_prob_);
      return scouting_ ? env::Action::search()
                       : env::Action::recruit(false, nest_);
    }
    case Phase::kAssess:
      return env::Action::go(nest_);
  }
  HH_ASSERT(false);
  return env::Action::idle();
}

void IdleSearchAnt::observe(const env::Outcome& outcome) {
  switch (phase_) {
    case Phase::kInit:
      // As Algorithm 3's first round: commit to the found nest; a bad
      // find parks the ant in the passive (idle) reserve.
      nest_ = outcome.nest;
      count_ = outcome.count;
      if (outcome.quality <= 0.0) active_ = false;
      phase_ = Phase::kRecruit;
      break;
    case Phase::kRecruit:
      if (scouting_) {
        // A reserve scout's find: adopt a good nest and activate (the
        // idle ant re-enters the workforce); a bad find changes nothing.
        if (outcome.quality > 0.0) {
          nest_ = outcome.nest;
          count_ = outcome.count;
          active_ = true;
        }
        scouting_ = false;
      } else if (outcome.nest != nest_) {
        // Recruited (or poached): adopt the recruiter's nest, activate.
        nest_ = outcome.nest;
        active_ = true;
      }
      phase_ = Phase::kAssess;
      break;
    case Phase::kAssess:
      count_ = outcome.count;
      // Nest rejection, as in Algorithm 3: an ant committed to a nest it
      // perceives as unsuitable stops recruiting for it.
      if (outcome.quality <= 0.0) active_ = false;
      phase_ = Phase::kRecruit;
      break;
  }
}

void register_idle_search_algorithm(AlgorithmRegistry& registry) {
  AlgorithmSpec spec;
  spec.name = std::string(kIdleSearchAlgorithmName);
  spec.summary =
      "Algorithm 3 + Afek-Gordon-Sulamy idle-ant rule: passive ants "
      "re-scout as a reserve workforce";
  spec.mode = ConvergenceMode::kCommitment;
  spec.params = {"n_estimate_error", "idle_search_prob"};
  // No pack factory and a default (empty) capability matrix: every kAuto
  // run falls back to the per-object engine with the gap named on
  // RunResult::engine_fallback; engine=kPacked throws naming it.
  spec.colony = [](const SimulationConfig& config, env::FaultPlan plan,
                   std::uint64_t colony_seed, const AlgorithmParams& params) {
    const double search_prob = params.idle_search_prob;
    const AntFactory factory = [&config, &params,
                                search_prob](env::AntId, util::Rng rng) {
      const std::uint32_t n =
          believed_colony_size(config.num_ants, params.n_estimate_error, rng);
      return std::make_unique<IdleSearchAnt>(n, rng, search_prob);
    };
    return make_colony(config.num_ants, factory, std::move(plan), colony_seed,
                       std::string(kIdleSearchAlgorithmName));
  };
  registry.add(std::move(spec));
}

}  // namespace hh::core
