// The lattice-walker workload — the first algorithm registered for a
// non-home-nest environment backend (env/lattice.hpp), wired purely
// through the registry-v2 API with zero engine edits beyond the backend
// seam itself.
//
// A walker is the degenerate decision kernel of a first-passage
// experiment: search() (one persistent-walk step — ALL randomness lives
// in the environment) until the target site is underfoot, then commit to
// pseudo-nest 1 and idle. Convergence of a walker colony is therefore
// "a (1 - tolerance) fraction of the colony has reached the target",
// and RunResult::first_passage carries the per-ant hitting times for
// analysis::first_passage_summary.
//
// Because walkers draw no RNG of their own, the packed engine needs no
// per-ant lanes at all: WalkerPack is a stateless shell that exists so
// engine selection, reset, and spec plumbing treat the algorithm like
// any other packed one, while the Simulation driver runs rounds straight
// off the backend's reached lanes (see Simulation::step_lattice_packed).
#ifndef HH_CORE_WALKER_ANT_HPP
#define HH_CORE_WALKER_ANT_HPP

#include <cstdint>

#include "core/ant.hpp"
#include "core/ant_pack.hpp"
#include "util/contracts.hpp"

namespace hh::core {

class AlgorithmRegistry;

/// One lattice walker (scalar engine). Draws no RNG: the walk itself is
/// environment randomness, which is what makes scalar/packed equivalence
/// trivial for this algorithm.
class WalkerAnt final : public Ant {
 public:
  /// `target` is the lattice site whose first passage ends the walk
  /// (env::lattice_target_site of the scenario's LatticeConfig).
  explicit WalkerAnt(env::NestId target) : target_(target) {}

  [[nodiscard]] env::Action decide(std::uint32_t /*round*/) override {
    return reached_ ? env::Action::idle() : env::Action::search();
  }
  void observe(const env::Outcome& outcome) override {
    if (outcome.nest == target_) reached_ = true;
  }
  /// Pseudo-nest 1 = "reached the target"; kHomeNest = still walking.
  [[nodiscard]] env::NestId committed_nest() const override {
    return reached_ ? env::NestId{1} : env::kHomeNest;
  }
  [[nodiscard]] std::string_view name() const override {
    return "lattice-walker";
  }

 private:
  env::NestId target_;
  bool reached_ = false;
};

/// The packed walker colony: a stateless AntPack shell (no per-ant lanes
/// beyond the base's commitment bookkeeping, no decide/observe kernels —
/// the lattice driver reads the backend's reached lanes directly). It
/// exists so packed()/reset()/engine selection work through the standard
/// spec machinery.
class WalkerPack final : public AntPack {
 public:
  WalkerPack(std::uint32_t num_ants, std::uint64_t colony_seed)
      : AntPack(num_ants, 1) {
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] RoundShape correct_shape(
      std::uint32_t /*round*/) const override {
    return RoundShape::kMaskedGo;  // never consulted by the lattice driver
  }
  [[nodiscard]] bool do_reset(std::uint64_t /*colony_seed*/) override {
    reset_commitments();
    return true;
  }
  [[nodiscard]] std::string_view name() const override {
    return "lattice-walker";
  }
};

/// The stable registry name of the workload.
inline constexpr std::string_view kLatticeWalkerAlgorithmName =
    "lattice-walker";

/// Register the walker's AlgorithmSpec: lattice-backend-only (the first
/// declaration exercising Capabilities::backends), partial synchrony
/// supported, both pairing models (irrelevant on the lattice but not a
/// gap), kCommitment convergence, no fault/noise support. Called once by
/// the registry's built-in bootstrap.
void register_lattice_walker_algorithm(AlgorithmRegistry& registry);

}  // namespace hh::core

#endif  // HH_CORE_WALKER_ANT_HPP
