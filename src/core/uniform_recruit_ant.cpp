#include "core/uniform_recruit_ant.hpp"

#include "util/contracts.hpp"

namespace hh::core {

UniformRecruitAnt::UniformRecruitAnt(std::uint32_t num_ants, util::Rng rng,
                                     double recruit_prob)
    : SimpleAnt(num_ants, rng), recruit_prob_(recruit_prob) {
  HH_EXPECTS(recruit_prob >= 0.0 && recruit_prob <= 1.0);
}

}  // namespace hh::core
