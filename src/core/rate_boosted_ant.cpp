#include "core/rate_boosted_ant.hpp"

#include <algorithm>
#include <cmath>

namespace hh::core {

RateBoostedAnt::RateBoostedAnt(std::uint32_t num_ants, util::Rng rng)
    : SimpleAnt(num_ants, rng),
      halving_period_(std::max<std::uint32_t>(
          8, static_cast<std::uint32_t>(
                 3.0 * std::log2(static_cast<double>(std::max(num_ants, 2u)))))) {}

void RateBoostedAnt::observe(const env::Outcome& outcome) {
  const bool first_observation = initial_k_estimate_ == 0.0;
  SimpleAnt::observe(outcome);
  if (first_observation && outcome.kind == env::ActionKind::kSearch) {
    // One-shot estimate from the initial spread: ~n/k ants per nest.
    const double observed = std::max<std::uint32_t>(outcome.count, 1);
    initial_k_estimate_ =
        std::max(1.0, static_cast<double>(num_ants()) / observed);
  }
}

double RateBoostedAnt::k_estimate() const {
  if (initial_k_estimate_ == 0.0) return 0.0;
  const std::uint32_t halvings = current_round() / halving_period_;
  // 2^halvings without pow(); past 63 halvings k~ is 1 regardless.
  const double decayed = (halvings >= 63)
                             ? 1.0
                             : initial_k_estimate_ /
                                   static_cast<double>(1ULL << halvings);
  return std::max(1.0, decayed);
}

double RateBoostedAnt::recruit_probability() const {
  const double base = SimpleAnt::recruit_probability();  // count / n
  // Never below Algorithm 3's own rate: at small k the base rate is
  // already Theta(1) and beats the conservatively-capped boost.
  return std::max(base, std::min(0.5, base * k_estimate() / 8.0));
}

}  // namespace hh::core
