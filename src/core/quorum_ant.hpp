// Biology-inspired quorum-threshold baseline.
//
// Temnothorax colonies are believed to commit to a nest once its population
// exceeds a quorum threshold (paper Section 1.1, citing Pratt et al.
// [22, 23]): pre-quorum ants lead slow tandem runs and can still be led
// away; an ant that senses a quorum switches to rapid transport and stops
// following others. This baseline lets the benches compare the paper's
// algorithms against the mechanism the biology literature describes, and
// exposes the classic speed/accuracy trade-off: a low threshold risks a
// split colony (two nests reach quorum), a high threshold is slow.
#ifndef HH_CORE_QUORUM_ANT_HPP
#define HH_CORE_QUORUM_ANT_HPP

#include <cstdint>

#include "core/ant.hpp"
#include "util/rng.hpp"

namespace hh::core {

/// Quorum-sensing ant: tandem-run until the nest's population exceeds the
/// threshold, then transport (recruit every round, commitment locked).
///
/// Pre-quorum recruitment is population-proportional like Algorithm 3 but
/// scaled by `tandem_rate` < 1 (tandem runs are ~3x slower than direct
/// transport, Section 2). Note that the model's round-1 search already
/// places ~n/k ants in every nest, so a threshold at or below n/k locks
/// every good nest immediately and splits the colony — the quorum
/// benchmark sweeps the threshold through this regime deliberately.
class QuorumAnt final : public Ant {
 public:
  /// `quorum_threshold` is the population count that locks commitment
  /// (biologically a function of colony size; callers typically pass
  /// quorum_fraction * n). `tandem_rate` scales pre-quorum recruitment.
  QuorumAnt(std::uint32_t num_ants, util::Rng rng,
            std::uint32_t quorum_threshold, double tandem_rate = 0.5);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override { return nest_; }
  [[nodiscard]] bool finalized() const override {
    return stage_ == Stage::kQuorumMet;
  }
  [[nodiscard]] std::string_view name() const override { return "quorum"; }

  /// True once this ant has sensed a quorum (transport stage).
  [[nodiscard]] bool quorum_met() const { return stage_ == Stage::kQuorumMet; }

 private:
  enum class Stage : std::uint8_t {
    kInit,       ///< round-1 search
    kPassive,    ///< found a bad nest; waits to be recruited
    kPreQuorum,  ///< tandem-running for a good nest, still persuadable
    kQuorumMet,  ///< transport: recruits every round, commitment locked
  };
  enum class Phase : std::uint8_t { kRecruit, kAssess };

  std::uint32_t num_ants_;
  util::Rng rng_;
  std::uint32_t quorum_threshold_;
  double tandem_rate_;

  Stage stage_ = Stage::kInit;
  Phase phase_ = Phase::kRecruit;
  env::NestId nest_ = env::kHomeNest;
  std::uint32_t count_ = 0;
};

}  // namespace hh::core

#endif  // HH_CORE_QUORUM_ANT_HPP
