#include "core/colony.hpp"

#include <algorithm>

#include "core/optimal_ant.hpp"
#include "core/quality_aware_ant.hpp"
#include "core/quorum_ant.hpp"
#include "core/rate_boosted_ant.hpp"
#include "core/simple_ant.hpp"
#include "core/uniform_recruit_ant.hpp"
#include "util/contracts.hpp"

namespace hh::core {

std::string_view algorithm_name(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOptimal: return "optimal";
    case AlgorithmKind::kOptimalSettle: return "optimal+settle";
    case AlgorithmKind::kSimple: return "simple";
    case AlgorithmKind::kRateBoosted: return "rate-boosted";
    case AlgorithmKind::kQualityAware: return "quality-aware";
    case AlgorithmKind::kUniformRecruit: return "uniform-recruit";
    case AlgorithmKind::kQuorum: return "quorum";
  }
  HH_ASSERT(false);
  return "?";
}

Colony make_colony(std::uint32_t num_ants, const AntFactory& factory,
                   env::FaultPlan plan, std::uint64_t seed,
                   std::string algorithm) {
  HH_EXPECTS(num_ants >= 1);
  HH_EXPECTS(plan.type.size() == num_ants);
  Colony colony;
  colony.algorithm = std::move(algorithm);
  colony.ants.reserve(num_ants);
  for (env::AntId a = 0; a < num_ants; ++a) {
    util::Rng stream(util::mix_seed(seed, a, 0xA17));
    switch (plan.type[a]) {
      case env::FaultType::kNone:
        colony.ants.push_back(factory(a, stream));
        break;
      case env::FaultType::kCrash:
        colony.ants.push_back(std::make_unique<CrashProneAnt>(
            factory(a, stream), plan.crash_round[a]));
        break;
      case env::FaultType::kByzantine:
        colony.ants.push_back(std::make_unique<ByzantineAnt>(num_ants, stream));
        break;
    }
  }
  colony.faults = std::move(plan);
  return colony;
}

std::uint32_t believed_colony_size(std::uint32_t num_ants, double error,
                                   util::Rng& rng) {
  if (error <= 0.0) return num_ants;
  const double lo = static_cast<double>(num_ants) * (1.0 - error);
  const double hi = static_cast<double>(num_ants) * (1.0 + error);
  const double belief = lo + (hi - lo) * rng.uniform_double();
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(belief));
}

namespace {

AntFactory factory_for(std::uint32_t num_ants, AlgorithmKind kind,
                       const AlgorithmParams& params) {
  switch (kind) {
    case AlgorithmKind::kOptimal:
      return [num_ants](env::AntId, util::Rng) {
        return std::make_unique<OptimalAnt>(num_ants, /*settle=*/false);
      };
    case AlgorithmKind::kOptimalSettle:
      return [num_ants](env::AntId, util::Rng) {
        return std::make_unique<OptimalAnt>(num_ants, /*settle=*/true);
      };
    case AlgorithmKind::kSimple:
      return [num_ants, params](env::AntId, util::Rng rng) {
        const std::uint32_t n = believed_colony_size(num_ants, params.n_estimate_error, rng);
        return std::make_unique<SimpleAnt>(n, rng);
      };
    case AlgorithmKind::kRateBoosted:
      return [num_ants, params](env::AntId, util::Rng rng) {
        const std::uint32_t n = believed_colony_size(num_ants, params.n_estimate_error, rng);
        return std::make_unique<RateBoostedAnt>(n, rng);
      };
    case AlgorithmKind::kQualityAware:
      return [num_ants, params](env::AntId, util::Rng rng) {
        const std::uint32_t n = believed_colony_size(num_ants, params.n_estimate_error, rng);
        return std::make_unique<QualityAwareAnt>(n, rng);
      };
    case AlgorithmKind::kUniformRecruit:
      return [num_ants, params](env::AntId, util::Rng rng) {
        return std::make_unique<UniformRecruitAnt>(num_ants, rng,
                                                   params.uniform_recruit_prob);
      };
    case AlgorithmKind::kQuorum: {
      const auto threshold = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(params.quorum_fraction * num_ants));
      return [num_ants, threshold, params](env::AntId, util::Rng rng) {
        return std::make_unique<QuorumAnt>(num_ants, rng, threshold,
                                           params.quorum_tandem_rate);
      };
    }
  }
  HH_ASSERT(false);
  return {};
}

}  // namespace

Colony make_colony(std::uint32_t num_ants, AlgorithmKind kind,
                   std::uint64_t seed, const AlgorithmParams& params) {
  return make_colony(num_ants, kind, env::FaultPlan::none(num_ants), seed,
                     params);
}

Colony make_colony(std::uint32_t num_ants, AlgorithmKind kind,
                   env::FaultPlan plan, std::uint64_t seed,
                   const AlgorithmParams& params) {
  return make_colony(num_ants, factory_for(num_ants, kind, params),
                     std::move(plan), seed, std::string(algorithm_name(kind)));
}

CrashProneAnt::CrashProneAnt(std::unique_ptr<Ant> inner,
                             std::uint32_t crash_round)
    : inner_(std::move(inner)), crash_round_(crash_round) {
  HH_EXPECTS(inner_ != nullptr);
  HH_EXPECTS(crash_round_ >= 1);
}

env::Action CrashProneAnt::decide(std::uint32_t round) {
  if (crashed_ || round >= crash_round_) {
    crashed_ = true;
    return env::Action::idle();
  }
  return inner_->decide(round);
}

void CrashProneAnt::observe(const env::Outcome& outcome) {
  if (crashed_) return;  // a crashed ant learns nothing
  inner_->observe(outcome);
}

ByzantineAnt::ByzantineAnt(std::uint32_t num_ants, util::Rng rng,
                           std::uint32_t scout_rounds)
    : rng_(rng), scout_rounds_(std::max(1u, scout_rounds)) {
  HH_EXPECTS(num_ants >= 1);
}

env::Action ByzantineAnt::decide(std::uint32_t /*round*/) {
  if (rounds_scouted_ < scout_rounds_) return env::Action::search();
  return env::Action::recruit(true, target_);
}

void ByzantineAnt::observe(const env::Outcome& outcome) {
  if (outcome.kind == env::ActionKind::kSearch) {
    ++rounds_scouted_;
    // Track the worst nest seen; ties broken toward the first found so the
    // adversary concentrates its pull on a single bad nest.
    if (outcome.quality < target_quality_) {
      target_quality_ = outcome.quality;
      target_ = outcome.nest;
    }
  }
  // Recruit outcomes are ignored: the adversary cannot be persuaded.
}

}  // namespace hh::core
