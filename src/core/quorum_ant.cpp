#include "core/quorum_ant.hpp"

#include "util/contracts.hpp"

namespace hh::core {

QuorumAnt::QuorumAnt(std::uint32_t num_ants, util::Rng rng,
                     std::uint32_t quorum_threshold, double tandem_rate)
    : num_ants_(num_ants),
      rng_(rng),
      quorum_threshold_(quorum_threshold),
      tandem_rate_(tandem_rate) {
  HH_EXPECTS(num_ants >= 1);
  HH_EXPECTS(quorum_threshold >= 1);
  HH_EXPECTS(tandem_rate >= 0.0 && tandem_rate <= 1.0);
}

env::Action QuorumAnt::decide(std::uint32_t /*round*/) {
  switch (stage_) {
    case Stage::kInit:
      return env::Action::search();
    case Stage::kPassive:
      if (phase_ == Phase::kRecruit) return env::Action::recruit(false, nest_);
      return env::Action::go(nest_);
    case Stage::kPreQuorum:
      if (phase_ == Phase::kRecruit) {
        // Population-proportional tandem running, slowed by tandem_rate.
        const double p = tandem_rate_ * static_cast<double>(count_) /
                         static_cast<double>(num_ants_);
        return env::Action::recruit(rng_.bernoulli(p), nest_);
      }
      return env::Action::go(nest_);
    case Stage::kQuorumMet:
      // Transport: direct carrying is modeled as recruiting every round
      // (the paper folds transport into recruit(), Section 2).
      return env::Action::recruit(true, nest_);
  }
  HH_ASSERT(false);
  return env::Action::idle();
}

void QuorumAnt::observe(const env::Outcome& outcome) {
  switch (stage_) {
    case Stage::kInit:
      nest_ = outcome.nest;
      count_ = outcome.count;
      stage_ = (outcome.quality > 0.0) ? Stage::kPreQuorum : Stage::kPassive;
      phase_ = Phase::kRecruit;
      break;
    case Stage::kPassive:
      if (phase_ == Phase::kRecruit) {
        if (outcome.nest != nest_) {
          nest_ = outcome.nest;  // recruited: follow the tandem run
          stage_ = Stage::kPreQuorum;
        }
        phase_ = Phase::kAssess;
      } else {
        count_ = outcome.count;
        phase_ = Phase::kRecruit;
      }
      break;
    case Stage::kPreQuorum:
      if (phase_ == Phase::kRecruit) {
        if (outcome.nest != nest_) nest_ = outcome.nest;  // still persuadable
        phase_ = Phase::kAssess;
      } else {
        count_ = outcome.count;
        if (count_ >= quorum_threshold_) stage_ = Stage::kQuorumMet;
        phase_ = Phase::kRecruit;
      }
      break;
    case Stage::kQuorumMet:
      // Commitment locked: the recruit() return value is ignored, so being
      // "led away" has no effect on a post-quorum transporter.
      break;
  }
}

}  // namespace hh::core
