#include "core/quality_aware_ant.hpp"

#include <algorithm>

namespace hh::core {

QualityAwareAnt::QualityAwareAnt(std::uint32_t num_ants, util::Rng rng)
    : SimpleAnt(num_ants, rng) {}

double QualityAwareAnt::recruit_probability() const {
  return SimpleAnt::recruit_probability() * std::clamp(quality(), 0.0, 1.0);
}

}  // namespace hh::core
