#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/ant_pack.hpp"
#include "core/capabilities.hpp"
#include "core/registry.hpp"
#include "util/contracts.hpp"

namespace hh::core {

std::string_view engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto: return "auto";
    case EngineKind::kScalar: return "scalar";
    case EngineKind::kPacked: return "packed";
  }
  HH_ASSERT(false);
  return "?";
}

std::vector<double> SimulationConfig::binary_qualities(std::uint32_t k,
                                                       std::uint32_t bad) {
  HH_EXPECTS(k >= 1);
  HH_EXPECTS(bad < k);  // the paper assumes at least one good nest
  std::vector<double> q(k, 1.0);
  for (std::uint32_t i = k - bad; i < k; ++i) q[i] = 0.0;
  return q;
}

namespace {

// Seed-derivation tags shared by construction and reset(): the two paths
// must derive identical sub-seeds or reset-and-rerun would diverge from a
// fresh construction.
constexpr std::uint64_t kEnvSeedTag = 0xE1717;
constexpr std::uint64_t kColonySeedTag = 0xC0107;
constexpr std::uint64_t kSchedulerSeedTag = 0x5C4ED;
constexpr std::uint64_t kFaultSeedTag = 0xFA17;

env::EnvironmentConfig make_env_config(const SimulationConfig& config,
                                       bool trusted_engine) {
  env::EnvironmentConfig ec;
  ec.num_ants = config.num_ants;
  ec.qualities = config.qualities;
  ec.seed = util::mix_seed(config.seed, kEnvSeedTag);
  // The packed engine's FSMs are trusted (validation belongs to the
  // reference path); skipping it changes no observable output — the model
  // checks are side-effect-free — only speed.
  ec.enforce_model = config.enforce_model && !trusted_engine;
  // Idle is only legal in the fault/asynchrony extensions.
  ec.allow_idle = config.faults.any() || config.skip_probability > 0.0;
  return ec;
}

std::uint64_t colony_seed(const SimulationConfig& config) {
  return util::mix_seed(config.seed, kColonySeedTag);
}

/// The per-execution fault assignment (shared derivation between the two
/// engines: the packed fault lanes must see the very plan the scalar
/// wrappers would).
env::FaultPlan sample_fault_plan(const SimulationConfig& config,
                                 std::uint64_t seed) {
  return config.faults.any()
             ? env::FaultPlan::sample(config.num_ants, config.faults,
                                      util::mix_seed(seed, kFaultSeedTag))
             : env::FaultPlan::none(config.num_ants);
}

/// An ant-less colony shell for the packed engine (keeps colony().algorithm
/// and the fault-plan invariants intact; the ant state lives in the pack).
Colony packed_colony_shell(std::string algorithm) {
  Colony colony;
  colony.algorithm = std::move(algorithm);
  colony.faults = env::FaultPlan::none(0);
  return colony;
}

/// Why `config` cannot run on `spec`'s packed engine: the data-driven
/// diff of the config against the spec's DECLARED capability matrix
/// (core/capabilities.hpp). No other code decides kAuto eligibility.
std::vector<std::string> engine_gaps(const SimulationConfig& config,
                                     const AlgorithmSpec& spec) {
  if (!spec.pack) {
    return {"algorithm '" + spec.name + "' has no packed implementation"};
  }
  return capability_gaps(config, spec.mode, spec.capabilities);
}

/// Build the world `config` names. The home-nest world keeps its exact
/// pre-seam construction (strategies, seed derivation); the lattice world
/// derives its seed through the same kEnvSeedTag so a given master seed
/// means the same thing on every backend.
std::unique_ptr<env::Backend> make_world(const SimulationConfig& config,
                                         bool trusted_engine) {
  if (config.env_backend == env::BackendKind::kLattice) {
    return std::make_unique<env::LatticeBackend>(
        config.num_ants, config.lattice,
        util::mix_seed(config.seed, kEnvSeedTag));
  }
  return std::make_unique<env::HomeNestBackend>(
      make_env_config(config, trusted_engine),
      env::make_pairing_model(config.pairing),
      env::make_observation_model(config.noise));
}

/// The cached built-in AlgorithmSpec for `kind` (the kind constructor
/// runs per trial; the spec is immutable data, built once).
const AlgorithmSpec& builtin_spec_cached(AlgorithmKind kind) {
  static const std::vector<AlgorithmSpec> specs = [] {
    std::vector<AlgorithmSpec> out;
    for (AlgorithmKind k : all_algorithm_kinds()) {
      // Indexable by enum value: declaration order == registry order.
      HH_ASSERT(static_cast<std::size_t>(k) == out.size());
      out.push_back(builtin_algorithm_spec(k));
    }
    return out;
  }();
  return specs[static_cast<std::size_t>(kind)];
}

}  // namespace

std::uint32_t Simulation::auto_max_rounds(const SimulationConfig& config) {
  if (config.env_backend == env::BackendKind::kLattice) {
    // A colony's slowest first passage is bounded by per-walker cover
    // time, O(V log V) on a bounded-degree graph — the cap is a generous
    // multiple of that, not the k-log-n recruitment bound below.
    const auto sites = static_cast<double>(config.lattice.width) *
                       static_cast<double>(config.lattice.height);
    const double bound = 50.0 * sites * (std::log2(sites) + 2.0) + 1000.0;
    // Huge lattices push the bound past uint32 range, where the narrowing
    // cast is UB — saturate instead (the cap only has to be generous).
    constexpr double kMax =
        static_cast<double>(std::numeric_limits<std::uint32_t>::max());
    return static_cast<std::uint32_t>(std::min(bound, kMax));
  }
  // Generous multiple of the worst theoretical bound in play, O(k log n)
  // (Theorem 5.11); a cap, not an expectation — converging runs stop early.
  const double log_n =
      std::log2(static_cast<double>(std::max<std::uint32_t>(config.num_ants, 2)));
  const auto k = static_cast<double>(config.qualities.size());
  const double bound = 200.0 * (k + 2.0) * (log_n + 2.0) + 1000.0;
  return static_cast<std::uint32_t>(bound);
}

Simulation::EngineParts Simulation::build_engine(
    const SimulationConfig& config, const AlgorithmSpec& spec,
    const AlgorithmParams& params) {
  if (!spec.colony) {
    throw std::invalid_argument(
        "algorithm spec '" + spec.name +
        "' has no colony factory (legacy simulation-factory specs build "
        "through AlgorithmRegistry::make, not this constructor)");
  }
  // Backend support gates BOTH engines — decision kernels are written for
  // one world, and routing them into another is a programming error the
  // scalar reference path cannot absorb either. Hard error, never a
  // fallback (see Capabilities::backends).
  if (!spec.capabilities.supports(config.env_backend)) {
    throw std::invalid_argument(
        "algorithm '" + spec.name + "' does not run in the '" +
        std::string(env::backend_name(config.env_backend)) +
        "' environment backend (its declared worlds gate both engines)");
  }
  if (config.env_backend != env::BackendKind::kHomeNest &&
      (config.faults.any() || config.noise.any())) {
    throw std::invalid_argument(
        "the '" + std::string(env::backend_name(config.env_backend)) +
        "' backend models no faults or observation noise; clear "
        "config.faults/config.noise");
  }
  const std::vector<std::string> gaps = engine_gaps(config, spec);
  if (config.engine == EngineKind::kPacked && !gaps.empty()) {
    throw std::invalid_argument(
        "engine=packed requested but " + join_gaps(gaps) +
        "; use kAuto to fall back to the per-object engine");
  }
  if (config.engine != EngineKind::kScalar && gaps.empty()) {
    const bool faulted = config.faults.any();
    const env::FaultPlan plan =
        faulted ? sample_fault_plan(config, config.seed) : env::FaultPlan{};
    return EngineParts{
        packed_colony_shell(spec.name),
        spec.pack(config, colony_seed(config), params,
                  faulted ? &plan : nullptr),
        {}};
  }
  // kScalar by request carries no fallback reason; a degraded kAuto does.
  return EngineParts{
      spec.colony(config, sample_fault_plan(config, config.seed),
                  colony_seed(config), params),
      nullptr,
      config.engine == EngineKind::kAuto ? join_gaps(gaps) : std::string{}};
}

Simulation::Simulation(const SimulationConfig& config, EngineParts engine,
                       ConvergenceMode mode)
    : config_(config),
      colony_(std::move(engine.colony)),
      pack_(std::move(engine.pack)),
      world_(make_world(config, pack_ != nullptr)),
      scheduler_(env::make_scheduler(config.skip_probability)),
      scheduler_rng_(util::mix_seed(config.seed, kSchedulerSeedTag)),
      detector_(mode, config.stability_rounds, config.convergence_tolerance),
      max_rounds_(config.max_rounds ? config.max_rounds
                                    : auto_max_rounds(config)) {
  HH_EXPECTS(config.num_ants >= 1);
  HH_EXPECTS(!config.qualities.empty());
  if (world_->kind() == env::BackendKind::kLattice) {
    lattice_ = static_cast<env::LatticeBackend*>(world_.get());
    // The lattice's convergence/winner bookkeeping runs over pseudo-nest
    // 1 ("reached the target"); anything else in qualities would imply
    // candidate nests the world does not have.
    HH_EXPECTS(config.qualities.size() == 1 && config.qualities[0] > 0.0);
  } else {
    home_ = static_cast<env::HomeNestBackend*>(world_.get());
  }
  engine_fallback_ = std::move(engine.fallback);
  exact_observation_ = !config.noise.any();
  actions_.resize(config.num_ants);
  if (pack_) {
    HH_EXPECTS(pack_->size() == config.num_ants);
    census_.resize(config.qualities.size() + 1);
    requests_.resize(config.num_ants);
    recruit_active_.resize(config.num_ants);
    masked_op_.resize(config.num_ants);
    masked_targets_.resize(config.num_ants);
    if (config.skip_probability > 0.0) awake_u8_.resize(config.num_ants);
  } else {
    HH_EXPECTS(colony_.size() == config.num_ants);
    awake_.resize(config.num_ants);
  }
}

Simulation::Simulation(const SimulationConfig& config, Colony colony,
                       std::optional<ConvergenceMode> mode)
    : Simulation(config,
                 EngineParts{std::move(colony), nullptr,
                             // A caller-built colony ignores config.engine
                             // (documented), so BOTH kAuto and kPacked are
                             // effectively fallbacks here — record the
                             // reason rather than reporting a clean
                             // scalar-by-request run.
                             config.engine != EngineKind::kScalar
                                 ? "caller-built colonies run per-object"
                                 : std::string{}},
                 mode.value_or(ConvergenceMode::kCommitment)) {}

Simulation::Simulation(const SimulationConfig& config, AlgorithmKind kind,
                       const AlgorithmParams& params)
    : Simulation(config, builtin_spec_cached(kind), params) {}

Simulation::Simulation(const SimulationConfig& config,
                       const AlgorithmSpec& spec,
                       const AlgorithmParams& params)
    : Simulation(config, build_engine(config, spec, params), spec.mode) {}

Simulation::~Simulation() = default;

bool Simulation::reset(std::uint64_t seed) {
  // Only the packed engine resets: its state is plain lanes with a
  // documented re-derivation. The per-object colony holds polymorphic
  // ants (possibly wrapped in fault shims) with no reset contract.
  if (!pack_) return false;
  // The fault plan is itself a function of the master seed — reinstall
  // before the lane reset so believed-n draws skip the new Byzantine
  // positions exactly as a fresh construction would.
  if (config_.faults.any()) {
    pack_->install_fault_plan(sample_fault_plan(config_, seed));
  }
  if (!pack_->reset(util::mix_seed(seed, kColonySeedTag))) return false;
  // From here the reset cannot fail; every derivation mirrors the
  // constructor's (make_env_config / colony_seed / scheduler seeds).
  config_.seed = seed;
  world_->reset(util::mix_seed(seed, kEnvSeedTag));
  scheduler_rng_.reseed(util::mix_seed(seed, kSchedulerSeedTag));
  detector_.reset();
  masked_lanes_prefilled_ = false;
  total_recruitments_ = 0;
  total_tandem_runs_ = 0;
  total_transports_ = 0;
  trajectories_ = Trajectories{};
  return true;
}

bool Simulation::step() {
  if (pack_) return lattice_ ? step_lattice_packed() : step_packed();
  return step_scalar();
}

bool Simulation::step_scalar() {
  // World-generic: decide/observe and the round itself speak only the
  // Backend contract; just the convergence census at the end is
  // backend-specific.
  const std::uint32_t round = world_->round() + 1;  // 1-based, as in the paper
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    // The scheduler is consulted before the ant: a sleeping ant's state
    // machine is frozen for the round (partial-synchrony extension).
    const bool awake = scheduler_->awake(a, world_->round(), scheduler_rng_);
    awake_[a] = awake;
    actions_[a] = awake ? colony_.ants[a]->decide(round) : env::Action::idle();
  }

  const std::vector<env::Outcome>& outcomes = world_->step(actions_);
  // Attribute each successful recruitment to a tandem run (recruiter not
  // yet finalized) or a direct transport (finalized recruiter) — the
  // Section 6 fine-grained runtime distinction; transports are ~3x faster
  // in nature but share one model round (Section 2).
  std::uint32_t tandem = 0;
  std::uint32_t transport = 0;
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    if (outcomes[a].recruit_succeeded) {
      if (colony_.ants[a]->finalized()) {
        ++transport;
      } else {
        ++tandem;
      }
    }
    if (awake_[a]) colony_.ants[a]->observe(outcomes[a]);
  }
  record_round(tandem, transport);
  if (lattice_) return update_lattice_convergence();
  return detector_.update(colony_, *home_);
}

bool Simulation::step_lattice_packed() {
  // The walker workload has no per-ant kernel state: an ant searches
  // until the backend's reached lane flips, then idles. So the driver
  // fills the op lanes straight off that lane — scheduler consulted per
  // ant in the same order as step_scalar (fully synchronous configs skip
  // the consult; their scheduler draws nothing either way), which keeps
  // the two engines RNG-identical.
  const bool psync = config_.skip_probability > 0.0;
  for (env::AntId a = 0; a < config_.num_ants; ++a) {
    const bool awake =
        !psync || scheduler_->awake(a, world_->round(), scheduler_rng_);
    masked_op_[a] = awake && !lattice_->reached(a) ? env::MaskedOp::kSearch
                                                   : env::MaskedOp::kIdle;
  }
  lattice_->step_masked_go_quiet(masked_op_, masked_targets_);
  record_round(0, 0);
  return update_lattice_convergence();
}

bool Simulation::update_lattice_convergence() {
  // Mirror of core::agreement_from_census over the lattice's two-slot
  // census {kHomeNest: still walking, 1: reached}: agreement on nest 1
  // exists iff anyone reached, its quality is positive, and the reached
  // count clears the same (1 - tolerance) * correct_total bar.
  std::uint32_t reached = 0;
  std::uint32_t correct_total = 0;
  if (pack_) {
    reached = lattice_->reached_count();
    correct_total = config_.num_ants;  // no fault plans on the lattice
  } else {
    for (env::AntId a = 0; a < colony_.size(); ++a) {
      if (!colony_.correct(a)) continue;
      ++correct_total;
      if (colony_.ants[a]->committed_nest() != env::kHomeNest) ++reached;
    }
  }
  std::optional<env::NestId> agreement;
  if (correct_total > 0 && reached > 0 && config_.qualities[0] > 0.0) {
    const double required = (1.0 - config_.convergence_tolerance) *
                            static_cast<double>(correct_total);
    if (static_cast<double>(reached) >= required) agreement = env::NestId{1};
  }
  return detector_.observe_agreement(agreement, world_->round());
}

bool Simulation::step_packed() {
  const std::uint32_t round = home_->round() + 1;  // 1-based, as in the paper
  // Tandem/transport attribution as in step_scalar; finalized() reflects
  // pre-observe state there (an ant's own observe cannot change another
  // ant's attribution), so checking all ants before the batch observe is
  // equivalent. `succeeded(a)` abstracts over the loud (Outcome) and
  // quiet (pairing-scratch) result representations.
  std::uint32_t tandem = 0;
  std::uint32_t transport = 0;
  const auto attribute = [&](auto&& succeeded) {
    if (home_->last_round_stats().successful_recruitments == 0) return;
    if (!pack_->any_finalized()) {
      tandem = home_->last_round_stats().successful_recruitments;
      return;
    }
    for (env::AntId a = 0; a < config_.num_ants; ++a) {
      if (succeeded(a)) {
        if (pack_->finalized(a)) {
          ++transport;
        } else {
          ++tandem;
        }
      }
    }
  };
  // The quiet paths' form: the env hands over this round's successful
  // recruiters directly, so attribution touches the successes alone (one
  // batch finalized() count) instead of testing every ant.
  const auto attribute_quiet = [&] {
    const std::uint32_t successes =
        home_->last_round_stats().successful_recruitments;
    if (successes == 0) return;
    if (!pack_->any_finalized()) {
      tandem = successes;
      return;
    }
    transport = pack_->count_finalized(home_->successful_recruiters());
    tandem = successes - transport;
  };

  // Partial synchrony: pre-draw the round's awake mask exactly as
  // step_scalar does — same scheduler stream, same ant order, consulted
  // before any decide — and hand it to the pack, which idles the sleepers
  // (their per-ant lanes freeze for the round). Fully synchronous configs
  // construct a draw-free SynchronousScheduler, so the consultation is
  // skipped entirely.
  if (config_.skip_probability > 0.0) {
    for (env::AntId a = 0; a < config_.num_ants; ++a) {
      awake_u8_[a] =
          scheduler_->awake(a, home_->round(), scheduler_rng_) ? 1 : 0;
    }
    pack_->begin_round(awake_u8_);
  }

  // One batch decide over the state arrays — routed through the
  // environment's round-shape fast path when the round is colony-uniform,
  // through the masked SoA entry points when phases (or fault/sleep
  // lanes) mix the round, and through the Outcome-free quiet forms when
  // observation is exact.
  switch (pack_->round_shape(round)) {
    case RoundShape::kAllSearch:
      pack_->observe_all(home_->step_all_search());
      break;
    case RoundShape::kAllRecruit: {
      if (exact_observation_) {
        const std::span<const env::NestId> targets =
            pack_->fill_recruit_soa(round, recruit_active_);
        home_->step_all_recruit_quiet(recruit_active_, targets);
        attribute_quiet();
        pack_->observe_recruit_pairing(targets, home_->last_pairing());
      } else {
        pack_->fill_recruit_requests(round, requests_);
        const std::vector<env::Outcome>& outcomes =
            home_->step_all_recruit(requests_);
        attribute([&](env::AntId a) { return outcomes[a].recruit_succeeded; });
        pack_->observe_all(outcomes);
      }
      break;
    }
    case RoundShape::kAllGo:
      if (exact_observation_) {
        home_->step_all_go_quiet(pack_->go_targets());
        pack_->observe_go_counts(home_->counts(), home_->qualities());
      } else {
        pack_->observe_all(home_->step_all_go(pack_->go_targets()));
      }
      break;
    case RoundShape::kMaskedRecruit: {
      // The previous round's fused observe may have planned this round's
      // lanes already (fault-free steady state); the flag is one-shot.
      if (!masked_lanes_prefilled_) {
        pack_->fill_masked(round, masked_op_, recruit_active_, masked_targets_);
      }
      masked_lanes_prefilled_ = false;
      if (exact_observation_) {
        home_->step_masked_recruit_quiet(masked_op_, recruit_active_,
                                       masked_targets_);
        attribute_quiet();
        // Fuse next round's decide into this observe when eligible —
        // never under partial synchrony, whose sleep overlay must run
        // through fill_masked after the round's wake draws.
        if (config_.skip_probability == 0.0) {
          masked_lanes_prefilled_ = pack_->observe_masked_quiet_then_decide(
              round, *home_, masked_op_, recruit_active_, masked_targets_);
        } else {
          pack_->observe_masked_quiet(*home_, masked_op_, masked_targets_);
        }
      } else {
        const std::vector<env::Outcome>& outcomes =
            home_->step_masked_recruit(masked_op_, recruit_active_,
                                     masked_targets_);
        attribute([&](env::AntId a) { return outcomes[a].recruit_succeeded; });
        pack_->observe_masked(outcomes);
      }
      break;
    }
    case RoundShape::kMaskedGo:
      // No recruiters: nothing to pair, nothing to attribute.
      pack_->fill_masked(round, masked_op_, recruit_active_, masked_targets_);
      if (exact_observation_) {
        home_->step_masked_go_quiet(masked_op_, masked_targets_);
        pack_->observe_masked_quiet(*home_, masked_op_, masked_targets_);
      } else {
        pack_->observe_masked(home_->step_masked_go(masked_op_, masked_targets_));
      }
      break;
  }
  record_round(tandem, transport);
  const std::uint32_t correct_total =
      pack_->agreement_census(detector_.mode(), *home_, census_);
  return detector_.update(census_, correct_total, *home_);
}

void Simulation::record_round(std::uint32_t tandem, std::uint32_t transport) {
  total_tandem_runs_ += tandem;
  total_transports_ += transport;
  total_recruitments_ += world_->last_round_stats().successful_recruitments;
  if (config_.record_trajectories) {
    // counts[r] spans the world's locations: k+1 nests on the home-nest
    // backend, width*height sites on a lattice.
    const std::span<const std::uint32_t> counts = world_->counts();
    trajectories_.counts.emplace_back(counts.begin(), counts.end());
    trajectories_.committed.push_back(committed_census());
    trajectories_.round_stats.push_back(world_->last_round_stats());
    trajectories_.tandem_successes.push_back(tandem);
    trajectories_.transport_successes.push_back(transport);
  }
}

RunResult Simulation::run() {
  while (!detector_.converged() && world_->round() < max_rounds_) {
    step();
  }
  RunResult result;
  result.engine = engine_used();
  result.engine_fallback = engine_fallback_;
  result.converged = detector_.converged();
  result.rounds_executed = world_->round();
  result.total_recruitments = total_recruitments_;
  result.total_tandem_runs = total_tandem_runs_;
  result.total_transports = total_transports_;
  if (result.converged) {
    result.rounds = detector_.decision_round();
    result.winner = detector_.winner();
    // Identical to the home-nest backend's quality(winner); phrased off
    // the config so it holds for any backend's pseudo-nests too.
    HH_ASSERT(result.winner >= 1 &&
              result.winner <= config_.qualities.size());
    result.winner_quality = config_.qualities[result.winner - 1];
  }
  if (lattice_) {
    const std::span<const std::uint32_t> fp = lattice_->first_passage();
    result.first_passage.assign(fp.begin(), fp.end());
  }
  result.trajectories = std::move(trajectories_);
  trajectories_ = Trajectories{};
  return result;
}

const env::Environment& Simulation::environment() const {
  HH_EXPECTS(home_ != nullptr);
  return *home_;
}

std::vector<std::uint32_t> Simulation::committed_census() const {
  // Census slots: kHomeNest plus one per (pseudo-)nest — qualities.size()
  // equals num_nests() on the home-nest backend and 1 on the lattice.
  const auto k = static_cast<std::uint32_t>(config_.qualities.size());
  std::vector<std::uint32_t> census(k + 1, 0);
  if (lattice_ && pack_) {
    // The walker pack keeps no lanes of its own; the backend's reached
    // count IS the commitment census.
    census[1] = lattice_->reached_count();
    census[0] = config_.num_ants - census[1];
    return census;
  }
  if (pack_) {
    pack_->committed_census(census);
    return census;
  }
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    if (!colony_.correct(a)) continue;
    const env::NestId nest = colony_.ants[a]->committed_nest();
    HH_ASSERT(nest <= k);
    ++census[nest];
  }
  return census;
}

}  // namespace hh::core
