#include "core/simulation.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace hh::core {

std::vector<double> SimulationConfig::binary_qualities(std::uint32_t k,
                                                       std::uint32_t bad) {
  HH_EXPECTS(k >= 1);
  HH_EXPECTS(bad < k);  // the paper assumes at least one good nest
  std::vector<double> q(k, 1.0);
  for (std::uint32_t i = k - bad; i < k; ++i) q[i] = 0.0;
  return q;
}

namespace {

env::EnvironmentConfig make_env_config(const SimulationConfig& config) {
  env::EnvironmentConfig ec;
  ec.num_ants = config.num_ants;
  ec.qualities = config.qualities;
  ec.seed = util::mix_seed(config.seed, 0xE1717);
  ec.enforce_model = config.enforce_model;
  // Idle is only legal in the fault/asynchrony extensions.
  ec.allow_idle = config.faults.any() || config.skip_probability > 0.0;
  return ec;
}

Colony build_colony(const SimulationConfig& config, AlgorithmKind kind,
                    const AlgorithmParams& params) {
  env::FaultPlan plan =
      config.faults.any()
          ? env::FaultPlan::sample(config.num_ants, config.faults,
                                   util::mix_seed(config.seed, 0xFA17))
          : env::FaultPlan::none(config.num_ants);
  return make_colony(config.num_ants, kind, std::move(plan),
                     util::mix_seed(config.seed, 0xC0107), params);
}

}  // namespace

std::uint32_t Simulation::auto_max_rounds(const SimulationConfig& config) {
  // Generous multiple of the worst theoretical bound in play, O(k log n)
  // (Theorem 5.11); a cap, not an expectation — converging runs stop early.
  const double log_n =
      std::log2(static_cast<double>(std::max<std::uint32_t>(config.num_ants, 2)));
  const auto k = static_cast<double>(config.qualities.size());
  const double bound = 200.0 * (k + 2.0) * (log_n + 2.0) + 1000.0;
  return static_cast<std::uint32_t>(bound);
}

Simulation::Simulation(const SimulationConfig& config, Colony colony,
                       std::optional<ConvergenceMode> mode)
    : config_(config),
      colony_(std::move(colony)),
      env_(make_env_config(config), env::make_pairing_model(config.pairing),
           env::make_observation_model(config.noise)),
      scheduler_(env::make_scheduler(config.skip_probability)),
      scheduler_rng_(util::mix_seed(config.seed, 0x5C4ED)),
      detector_(mode.value_or(ConvergenceMode::kCommitment),
                config.stability_rounds, config.convergence_tolerance),
      max_rounds_(config.max_rounds ? config.max_rounds
                                    : auto_max_rounds(config)) {
  HH_EXPECTS(config.num_ants >= 1);
  HH_EXPECTS(!config.qualities.empty());
  HH_EXPECTS(colony_.size() == config.num_ants);
  actions_.resize(config.num_ants);
  awake_.resize(config.num_ants);
}

Simulation::Simulation(const SimulationConfig& config, AlgorithmKind kind,
                       const AlgorithmParams& params)
    : Simulation(config, build_colony(config, kind, params),
                 default_mode(kind)) {}

bool Simulation::step() {
  const std::uint32_t round = env_.round() + 1;  // 1-based, as in the paper
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    // The scheduler is consulted before the ant: a sleeping ant's state
    // machine is frozen for the round (partial-synchrony extension).
    const bool awake = scheduler_->awake(a, env_.round(), scheduler_rng_);
    awake_[a] = awake;
    actions_[a] = awake ? colony_.ants[a]->decide(round) : env::Action::idle();
  }

  const std::vector<env::Outcome>& outcomes = env_.step(actions_);
  // Attribute each successful recruitment to a tandem run (recruiter not
  // yet finalized) or a direct transport (finalized recruiter) — the
  // Section 6 fine-grained runtime distinction; transports are ~3x faster
  // in nature but share one model round (Section 2).
  std::uint32_t tandem = 0;
  std::uint32_t transport = 0;
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    if (outcomes[a].recruit_succeeded) {
      if (colony_.ants[a]->finalized()) {
        ++transport;
      } else {
        ++tandem;
      }
    }
    if (awake_[a]) colony_.ants[a]->observe(outcomes[a]);
  }
  total_tandem_runs_ += tandem;
  total_transports_ += transport;

  total_recruitments_ += env_.last_round_stats().successful_recruitments;
  if (config_.record_trajectories) {
    const std::uint32_t k = env_.num_nests();
    std::vector<std::uint32_t> counts(k + 1);
    for (env::NestId i = 0; i <= k; ++i) counts[i] = env_.count(i);
    trajectories_.counts.push_back(std::move(counts));
    trajectories_.committed.push_back(committed_census());
    trajectories_.round_stats.push_back(env_.last_round_stats());
    trajectories_.tandem_successes.push_back(tandem);
    trajectories_.transport_successes.push_back(transport);
  }
  return detector_.update(colony_, env_);
}

RunResult Simulation::run() {
  while (!detector_.converged() && env_.round() < max_rounds_) {
    step();
  }
  RunResult result;
  result.converged = detector_.converged();
  result.rounds_executed = env_.round();
  result.total_recruitments = total_recruitments_;
  result.total_tandem_runs = total_tandem_runs_;
  result.total_transports = total_transports_;
  if (result.converged) {
    result.rounds = detector_.decision_round();
    result.winner = detector_.winner();
    result.winner_quality = env_.quality(result.winner);
  }
  result.trajectories = std::move(trajectories_);
  trajectories_ = Trajectories{};
  return result;
}

std::vector<std::uint32_t> Simulation::committed_census() const {
  std::vector<std::uint32_t> census(env_.num_nests() + 1, 0);
  for (env::AntId a = 0; a < colony_.size(); ++a) {
    if (!colony_.correct(a)) continue;
    const env::NestId nest = colony_.ants[a]->committed_nest();
    HH_ASSERT(nest <= env_.num_nests());
    ++census[nest];
  }
  return census;
}

}  // namespace hh::core
