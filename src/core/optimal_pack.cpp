#include "core/optimal_pack.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hh::core {

namespace {

/// Algorithm 2 as state arrays. Faithfulness notes are in
/// core/optimal_ant.{hpp,cpp}; every transition here mirrors OptimalAnt
/// observation for observation (the algorithm draws no per-ant
/// randomness, so equivalence is purely a matter of identical
/// count/nest comparisons in identical order).
class OptimalPack final : public AntPack {
 public:
  OptimalPack(std::uint32_t num_ants, std::uint32_t num_nests,
              std::uint64_t colony_seed, bool settle,
              const env::FaultPlan* faults)
      : AntPack(num_ants, num_nests), settle_(settle) {
    HH_EXPECTS(num_ants >= 1);
    const std::size_t n = num_ants;
    state_.resize(n);
    step_.resize(n);
    count_.resize(n);
    nest_t_.resize(n);
    count_t_.resize(n);
    case_.resize(n);
    pending_passive_.resize(n);
    pending_final_.resize(n);
    full_house_streak_.resize(n);
    fin_census_.resize(num_nests + 1);
    if (faults != nullptr) install_fault_plan(*faults);
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] bool do_reset(std::uint64_t /*colony_seed*/) override {
    // OptimalAnt consumes no per-ant RNG stream (the factory discards it),
    // so reset is pure lane re-initialization.
    std::fill(state_.begin(), state_.end(),
              static_cast<std::uint8_t>(State::kSearch));
    std::fill(step_.begin(), step_.end(), std::uint8_t{0});
    reset_commitments();
    std::fill(count_.begin(), count_.end(), 0u);
    std::fill(nest_t_.begin(), nest_t_.end(), env::kHomeNest);
    std::fill(count_t_.begin(), count_t_.end(), 0u);
    std::fill(case_.begin(), case_.end(),
              static_cast<std::uint8_t>(ActiveCase::kUndecided));
    std::fill(pending_passive_.begin(), pending_passive_.end(),
              std::uint8_t{0});
    std::fill(pending_final_.begin(), pending_final_.end(), std::uint8_t{0});
    std::fill(full_house_streak_.begin(), full_house_streak_.end(), 0u);
    std::fill(fin_census_.begin(), fin_census_.end(), 0u);
    finalized_count_ = 0;
    return true;
  }

  [[nodiscard]] RoundShape correct_shape(std::uint32_t round) const override {
    // Round 1 is the global search; every later round interleaves the
    // R1-R4 block machine's recruit and go calls across states.
    return round <= 1 ? RoundShape::kAllSearch : RoundShape::kMaskedRecruit;
  }

  /// One ant's masked decision — decide_masked's per-ant body, shared
  /// with the fused observe+decide pass.
  // lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
  void decide_one(std::size_t a, std::span<env::MaskedOp> op,
                  std::span<std::uint8_t> active,
                  std::span<env::NestId> targets) const {
    switch (static_cast<State>(state_[a])) {
      case State::kSearch:
        op[a] = env::MaskedOp::kSearch;  // line 7 (round 1 only)
        break;
      case State::kActive:
        decide_active(a, step_[a], op, active, targets);
        break;
      case State::kPassive:
        if (step_[a] == 1) {
          // R2, line 14: home, waiting to be recruited.
          op[a] = env::MaskedOp::kRecruit;
          active[a] = 0;
          targets[a] = nest_[a];
        } else {
          // R1 (line 13), R3/R4 (lines 18-19): rounds at the nest.
          op[a] = env::MaskedOp::kGo;
          targets[a] = nest_[a];
        }
        break;
      case State::kFinal:
        op[a] = env::MaskedOp::kRecruit;  // line 21, every round
        active[a] = 1;
        targets[a] = nest_[a];
        break;
      case State::kSettled:
        op[a] = env::MaskedOp::kGo;  // termination extension: stay put
        targets[a] = nest_[a];
        break;
    }
  }

  // lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
  void decide_masked(std::uint32_t /*round*/, std::span<const std::uint8_t> act,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      decide_one(a, op, active, targets);
    }
  }

  // observe_all (the fault-free round-1 search) is the base forward onto
  // this kernel: every lane is still kSearch then.
  // lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
  void observe_masked_acting(std::span<const std::uint8_t> act,
                             std::span<const env::Outcome> outcomes) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      const env::Outcome& out = outcomes[a];
      apply(a, out.nest, out.count, out.quality);
    }
  }

  // lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
  void observe_masked_quiet_acting(
      std::span<const std::uint8_t> act, const env::Environment& env,
      std::span<const env::MaskedOp> op,
      std::span<const env::NestId> targets) override {
    const std::span<const std::uint32_t> counts = env.counts();
    // The recruit() return values j, ant-indexed — the env fills the lane
    // in its matching-bookkeeping walk, so a recruit ant's observation is
    // one sequential load instead of the recruited_by_ant() load chain.
    const std::span<const env::NestId> results = env.recruit_results();
    const std::uint32_t home_count = counts[env::kHomeNest];
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      if (static_cast<State>(state_[a]) == State::kSearch) {
        const env::NestId found = env.location(static_cast<env::AntId>(a));
        apply_search(a, found, counts[found], env.qualities()[found - 1]);
        continue;
      }
      // op[a] is what decide_masked emitted this round — the one copy of
      // the R1-R4 recruit/go classification.
      if (op[a] == env::MaskedOp::kRecruit) {
        // j plus the home-nest population (read by finals for settling).
        apply(a, results[a], home_count, 0.0);
      } else {
        // go(targets[a]): the visited nest's end-of-round count.
        apply(a, targets[a], counts[targets[a]], 0.0);
      }
    }
  }

  [[nodiscard]] bool fused_observe_decide(
      const env::Environment& env, std::span<env::MaskedOp> op,
      std::span<std::uint8_t> active,
      std::span<env::NestId> targets) override {
    // One pass instead of observe + decide: absorb ant a's result while
    // its state words are hot, then immediately rewrite its lanes with
    // the next round's decision. The in-place lane overwrite is safe
    // because the observe side reads only ant a's own op/target rows
    // (recruit returns come from the env's ant-indexed results lane, not
    // from targets[recruiter]), and the caller's gates guarantee every
    // lane acts.
    const std::span<const std::uint32_t> counts = env.counts();
    const std::span<const env::NestId> results = env.recruit_results();
    const std::uint32_t home_count = counts[env::kHomeNest];
    for (std::size_t a = 0; a < op.size(); ++a) {
      if (static_cast<State>(state_[a]) == State::kSearch) {
        const env::NestId found = env.location(static_cast<env::AntId>(a));
        apply_search(a, found, counts[found], env.qualities()[found - 1]);
      } else if (op[a] == env::MaskedOp::kRecruit) {
        apply(a, results[a], home_count, 0.0);
      } else {
        apply(a, targets[a], counts[targets[a]], 0.0);
      }
      decide_one(a, op, active, targets);
    }
    return true;
  }

  [[nodiscard]] std::uint32_t agreement_census(
      ConvergenceMode mode, const env::Environment& env,
      std::span<std::uint32_t> census) const override {
    HH_EXPECTS(census.size() == census_.size());
    switch (mode) {
      case ConvergenceMode::kCommitment:
        std::copy(census_.begin(), census_.end(), census.begin());
        break;
      case ConvergenceMode::kCommitmentFinalized:
        // Correct ants that are final (or settled), by committed nest —
        // maintained incrementally on the final transitions.
        std::copy(fin_census_.begin(), fin_census_.end(), census.begin());
        break;
      case ConvergenceMode::kPhysical:
        // The literal HouseHunting predicate: correct finalized ants by
        // physical location (finals are home while they recruit; only
        // settled ants park at their nest, so this fires once the whole
        // colony settles — exactly as the scalar detector sees it).
        std::fill(census.begin(), census.end(), 0u);
        for (env::AntId a = 0; a < size(); ++a) {
          if (!counts_in_census(a)) continue;
          const auto state = static_cast<State>(state_[a]);
          if (state == State::kFinal || state == State::kSettled) {
            ++census[env.location(a)];
          }
        }
        break;
    }
    return correct_count();
  }

  [[nodiscard]] bool finalized(env::AntId a) const override {
    const auto state = static_cast<State>(state_[a]);
    return state == State::kFinal || state == State::kSettled;
  }

  [[nodiscard]] bool any_finalized() const override {
    return finalized_count_ > 0;
  }

  [[nodiscard]] std::uint32_t count_finalized(
      std::span<const env::AntId> ants) const override {
    std::uint32_t c = 0;
    for (const env::AntId a : ants) {
      const auto state = static_cast<State>(state_[a]);
      c += (state == State::kFinal || state == State::kSettled) ? 1u : 0u;
    }
    return c;
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(settle_ ? AlgorithmKind::kOptimalSettle
                                  : AlgorithmKind::kOptimal);
  }

 private:
  // Mirrors of OptimalAnt's enums (kept numerically byte-sized for lanes).
  enum class State : std::uint8_t {
    kSearch,
    kActive,
    kPassive,
    kFinal,
    kSettled
  };
  enum class ActiveCase : std::uint8_t { kUndecided, kCase1, kCase2, kCase3 };

  void decide_active(std::size_t a, std::uint8_t step,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) const {
    switch (step) {
      case 0:  // R1, line 23: try to recruit to the committed nest
        op[a] = env::MaskedOp::kRecruit;
        active[a] = 1;
        targets[a] = nest_[a];
        break;
      case 1:  // R2, line 24: visit the resulting nest and count
        op[a] = env::MaskedOp::kGo;
        targets[a] = nest_t_[a];
        break;
      case 2:  // R3: case 1 go (line 28), case 2 recruit(0) (line 35),
               // case 3 go to the new nest (line 39)
        HH_ASSERT(static_cast<ActiveCase>(case_[a]) != ActiveCase::kUndecided);
        if (static_cast<ActiveCase>(case_[a]) == ActiveCase::kCase2) {
          op[a] = env::MaskedOp::kRecruit;
          active[a] = 0;
          targets[a] = nest_[a];
        } else {
          op[a] = env::MaskedOp::kGo;
          targets[a] = nest_[a];
        }
        break;
      case 3:  // R4: case 1 recruit(0) (line 29), cases 2/3 go (lines 36, 42)
        if (static_cast<ActiveCase>(case_[a]) == ActiveCase::kCase1) {
          op[a] = env::MaskedOp::kRecruit;
          active[a] = 0;
          targets[a] = nest_[a];
        } else {
          op[a] = env::MaskedOp::kGo;
          targets[a] = nest_[a];
        }
        break;
      default:
        HH_ASSERT(false);
    }
  }

  void set_final(std::size_t a) {
    state_[a] = static_cast<std::uint8_t>(State::kFinal);
    ++finalized_count_;
    if (counts_in_census(static_cast<env::AntId>(a))) {
      ++fin_census_[nest_[a]];
    }
  }

  /// Lines 7-11: commit to the found nest; bad quality => passive.
  void apply_search(std::size_t a, env::NestId found, std::uint32_t count,
                    double quality) {
    adopt(a, found);
    count_[a] = count;
    state_[a] = static_cast<std::uint8_t>(quality > 0.0 ? State::kActive
                                                        : State::kPassive);
    step_[a] = 0;
    case_[a] = static_cast<std::uint8_t>(ActiveCase::kUndecided);
  }

  /// One observation for ant a: `nest` is the returned nest (go target /
  /// recruit return j / search landing), `count` the perceived count the
  /// call returns. Mirrors OptimalAnt::observe branch for branch; the
  /// ant's position in its 4-round block is the per-ant step_ lane
  /// (advanced here, frozen while the ant sleeps or is crashed — exactly
  /// the scalar ant's step_).
  void apply(std::size_t a, env::NestId nest, std::uint32_t count,
             double quality) {
    switch (static_cast<State>(state_[a])) {
      case State::kSearch:
        apply_search(a, nest, count, quality);
        break;
      case State::kActive:
        apply_active(a, step_[a], nest, count);
        step_[a] = static_cast<std::uint8_t>((step_[a] + 1) % 4);
        break;
      case State::kPassive:
        apply_passive(a, step_[a], nest);
        step_[a] = static_cast<std::uint8_t>((step_[a] + 1) % 4);
        break;
      case State::kFinal:
        // Line 21: <nest, .> := recruit(1, nest) — the assignment means a
        // poached final ant switches its commitment to the recruiter's
        // nest.
        if (nest != nest_[a]) {
          if (counts_in_census(static_cast<env::AntId>(a))) {
            --fin_census_[nest_[a]];
            ++fin_census_[nest];
          }
          adopt(a, nest);
        }
        if (settle_) {
          // Section 4.2 termination fix: two consecutive rounds with every
          // ant at the home nest are only possible once all ants are final
          // (a passive ant is home at most one round in four), so all
          // finals observe the same streak and settle simultaneously.
          if (count == size()) {
            if (++full_house_streak_[a] >= 2) {
              state_[a] = static_cast<std::uint8_t>(State::kSettled);
            }
          } else {
            full_house_streak_[a] = 0;
          }
        }
        break;
      case State::kSettled:
        break;  // go(nest) forever; nothing to learn
    }
  }

  void apply_active(std::size_t a, std::uint8_t step, env::NestId nest,
                    std::uint32_t count) {
    switch (step) {
      case 0:
        // Line 23: nest_t is the recruit() return value j.
        nest_t_[a] = nest;
        break;
      case 1:
        // Line 24: count_t := go(nest_t); then select the case
        // (lines 25-42).
        count_t_[a] = count;
        if (nest_t_[a] == nest_[a]) {
          if (count_t_[a] >= count_[a]) {
            case_[a] = static_cast<std::uint8_t>(ActiveCase::kCase1);
            count_[a] = count_t_[a];  // line 27
          } else {
            case_[a] = static_cast<std::uint8_t>(ActiveCase::kCase2);
            pending_passive_[a] = 1;  // line 34 (takes effect after block)
          }
        } else {
          case_[a] = static_cast<std::uint8_t>(ActiveCase::kCase3);
          adopt(a, nest_t_[a]);  // line 38
        }
        break;
      case 2:
        if (static_cast<ActiveCase>(case_[a]) == ActiveCase::kCase3) {
          // Lines 39-41: count_n distinguishes competing (case-1 ants are
          // at the nest this round, so count_n == count_t) from dropping
          // out (case-2 ants are at home, so count_n < count_t).
          if (count < count_t_[a]) {
            pending_passive_[a] = 1;  // line 41
          } else {
            // Adopt the new nest's population as the reference for the
            // next block's comparison (see OptimalAnt and DESIGN.md §2).
            count_[a] = count;
          }
        }
        // Case 1: go(nest) — nothing to record. Case 2: recruit(0) return
        // discarded (pseudocode line 35 has no assignment).
        break;
      case 3:
        if (static_cast<ActiveCase>(case_[a]) == ActiveCase::kCase1 &&
            count == count_[a]) {
          // Lines 29-31: count_h == count means every active ant in the
          // colony is committed to this nest — switch to final.
          set_final(a);
        }
        if (static_cast<State>(state_[a]) != State::kFinal &&
            pending_passive_[a] != 0) {
          state_[a] = static_cast<std::uint8_t>(State::kPassive);
        }
        pending_passive_[a] = 0;
        case_[a] = static_cast<std::uint8_t>(ActiveCase::kUndecided);
        break;
      default:
        HH_ASSERT(false);
    }
  }

  void apply_passive(std::size_t a, std::uint8_t step, env::NestId nest) {
    switch (step) {
      case 0:
      case 2:
        break;
      case 1:
        // Lines 14-17: recruited => adopt the new nest and become final
        // after finishing the block's two go(nest) rounds.
        if (nest != nest_[a]) {
          adopt(a, nest);
          pending_final_[a] = 1;
        }
        break;
      case 3:
        if (pending_final_[a] != 0) {
          set_final(a);
          pending_final_[a] = 0;
        }
        break;
      default:
        HH_ASSERT(false);
    }
  }

  bool settle_;
  std::uint32_t finalized_count_ = 0;

  std::vector<std::uint8_t> state_;
  std::vector<std::uint8_t> step_;         ///< position in the 4-round block
  std::vector<std::uint32_t> count_;       ///< last accepted population count
  std::vector<env::NestId> nest_t_;        ///< R1 recruit return (nest_t)
  std::vector<std::uint32_t> count_t_;     ///< R2 count (count_t)
  std::vector<std::uint8_t> case_;         ///< ActiveCase per ant
  std::vector<std::uint8_t> pending_passive_;
  std::vector<std::uint8_t> pending_final_;
  std::vector<std::uint32_t> full_house_streak_;  ///< settle only
  std::vector<std::uint32_t> fin_census_;  ///< committed census of correct
                                           ///< finalized ants
};

}  // namespace

std::unique_ptr<AntPack> make_optimal_pack(std::uint32_t num_ants,
                                           std::uint32_t num_nests,
                                           std::uint64_t colony_seed,
                                           bool settle,
                                           const env::FaultPlan* faults) {
  return std::make_unique<OptimalPack>(num_ants, num_nests, colony_seed,
                                       settle, faults);
}

}  // namespace hh::core
