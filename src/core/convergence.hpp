// Detection of the HouseHunting predicate (paper Section 2): "there exists
// a nest i with q(i) = 1 such that l(a, r) = i for all ants a and all
// rounds r >= T".
//
// Neither paper algorithm physically parks the colony (Section 4.2
// discusses this), so three detection modes are provided:
//   * kCommitment — every correct ant's committed_nest() is one good nest
//     (the paper's working notion of "solved" for both algorithms);
//   * kCommitmentFinalized — additionally every correct ant reports
//     finalized() (Algorithm 2's "all ants have reached the final state");
//   * kPhysical — the literal predicate: every correct ant is *located* at
//     one good nest (achievable with the settle extension).
// A configurable stability window requires the condition to hold for S
// consecutive rounds before convergence is declared.
#ifndef HH_CORE_CONVERGENCE_HPP
#define HH_CORE_CONVERGENCE_HPP

#include <cstdint>
#include <optional>
#include <span>

#include "core/colony.hpp"
#include "env/environment.hpp"

namespace hh::core {

/// What "all ants decided" means for a given algorithm.
enum class ConvergenceMode : std::uint8_t {
  kCommitment,
  kCommitmentFinalized,
  kPhysical,
};

/// The detection mode each built-in algorithm is verified under.
[[nodiscard]] ConvergenceMode default_mode(AlgorithmKind kind);

/// If the correct ants currently agree per `mode`, the agreed nest.
/// Only nests with positive quality count (the colony must not settle on
/// an unsuitable nest); kHomeNest never qualifies.
///
/// `tolerance` relaxes unanimity: agreement holds when at least a
/// (1 - tolerance) fraction of correct ants are on one good nest. The
/// default 0 is the strict HouseHunting predicate; a positive tolerance is
/// the right notion under persistent Byzantine recruiters, which keep a
/// small rotating pool of correct ants kidnapped at any instant (the
/// paper's Section 6 fault-tolerance claim is population-level).
[[nodiscard]] std::optional<env::NestId> current_agreement(
    const Colony& colony, const env::Environment& environment,
    ConvergenceMode mode, double tolerance = 0.0);

/// Census-form agreement check shared by the per-object and packed
/// engines: `census[i]` counts the agreeing ants per nest (size k+1) and
/// `correct_total` is the number of correct ants the census was taken
/// over. Same winner/tolerance semantics as current_agreement.
[[nodiscard]] std::optional<env::NestId> agreement_from_census(
    std::span<const std::uint32_t> census, std::uint32_t correct_total,
    const env::Environment& environment, double tolerance = 0.0);

/// Streak-tracking detector: update() once per round; fires when agreement
/// on one nest has held for `stability_rounds + 1` consecutive rounds.
class ConvergenceDetector {
 public:
  explicit ConvergenceDetector(ConvergenceMode mode,
                               std::uint32_t stability_rounds = 0,
                               double tolerance = 0.0)
      : mode_(mode),
        stability_rounds_(stability_rounds),
        tolerance_(tolerance) {}

  /// Evaluate after a round; returns true once converged (sticky).
  bool update(const Colony& colony, const env::Environment& environment);

  /// Census-form update for the packed engine (kCommitment semantics: the
  /// census is the commitment census over all `correct_total` ants).
  bool update(std::span<const std::uint32_t> census,
              std::uint32_t correct_total,
              const env::Environment& environment);

  /// The streak bookkeeping both update() overloads feed: `agreement` is
  /// the round's agreed nest (nullopt = none), `round` the 1-based round
  /// just completed. Exposed so the semantics can be pinned by
  /// table-driven tests without building colonies. The rules:
  ///   * no agreement  -> the streak breaks; streak state (including
  ///     decision_round) is otherwise untouched;
  ///   * a new nest    -> a fresh streak starts AT `round` (so
  ///     decision_round() is the first round of the winning agreement);
  ///   * the same nest -> the streak extends;
  ///   * converged once the streak spans stability_rounds + 1 consecutive
  ///     rounds (with the default stability 0, immediately). Sticky.
  bool observe_agreement(std::optional<env::NestId> agreement,
                         std::uint32_t round);

  /// Forget everything (for arena reuse across trials); equivalent to a
  /// freshly constructed detector with the same mode/stability/tolerance.
  void reset();

  [[nodiscard]] bool converged() const { return converged_; }
  /// The winning nest (only meaningful once converged).
  [[nodiscard]] env::NestId winner() const { return winner_; }
  /// The environment round at which the agreement streak began.
  [[nodiscard]] std::uint32_t decision_round() const { return streak_start_; }
  [[nodiscard]] ConvergenceMode mode() const { return mode_; }

 private:
  ConvergenceMode mode_;
  std::uint32_t stability_rounds_;
  double tolerance_;
  bool converged_ = false;
  env::NestId winner_ = env::kHomeNest;
  env::NestId streak_nest_ = env::kHomeNest;
  std::uint32_t streak_length_ = 0;
  std::uint32_t streak_start_ = 0;
};

}  // namespace hh::core

#endif  // HH_CORE_CONVERGENCE_HPP
