#include "core/ant_pack.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace hh::core {

namespace {

/// Mirror of colony.cpp's believed_n: an ant's private belief of n, drawn
/// (or not) off the ant's own stream exactly as the per-object factories
/// draw it — the packed path must consume the identical RNG prefix.
std::uint32_t believed_n(std::uint32_t num_ants, double error, util::Rng& rng) {
  if (error <= 0.0) return num_ants;
  const double lo = static_cast<double>(num_ants) * (1.0 - error);
  const double hi = static_cast<double>(num_ants) * (1.0 + error);
  const double belief = lo + (hi - lo) * rng.uniform_double();
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(belief));
}

/// The Algorithm-3 family (SimpleAnt and its subclasses) as state arrays.
/// All four variants share one FSM — phases are colony-synchronized under
/// full synchrony, so the phase lives in the pack, not per ant — and
/// differ only in the recruit-probability rule.
class SimpleFamilyPack final : public AntPack {
 public:
  SimpleFamilyPack(AlgorithmKind kind, std::uint32_t num_ants,
                   std::uint32_t num_nests, std::uint64_t colony_seed,
                   const AlgorithmParams& params)
      : kind_(kind),
        uniform_prob_(params.uniform_recruit_prob),
        n_estimate_error_(params.n_estimate_error) {
    HH_EXPECTS(num_ants >= 1);
    census_.resize(num_nests + 1);
    const std::size_t n = num_ants;
    rng_.resize(n, util::Rng(0));
    believed_n_.resize(n);
    active_.resize(n);
    nest_.resize(n);
    count_.resize(n);
    quality_.resize(n);
    round_targets_.reserve(n);  // quiet rounds must not allocate
    if (kind_ == AlgorithmKind::kRateBoosted) {
      initial_k_.resize(n);
      halving_period_.resize(n);
    }
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  bool reset(std::uint64_t colony_seed) override {
    const auto num_ants = static_cast<std::uint32_t>(rng_.size());
    std::fill(census_.begin(), census_.end(), 0u);
    census_[env::kHomeNest] = num_ants;
    phase_ = Phase::kInit;
    for (env::AntId a = 0; a < num_ants; ++a) {
      // Identical stream derivation to make_colony (colony.cpp).
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
      // uniform-recruit ignores n and, like its per-object factory, does
      // not draw a belief; the others draw iff the error is positive.
      believed_n_[a] =
          kind_ == AlgorithmKind::kUniformRecruit
              ? num_ants
              : believed_n(num_ants, n_estimate_error_, rng_[a]);
    }
    std::fill(active_.begin(), active_.end(),
              std::uint8_t{1});  // initially active (Algorithm 3, line 1)
    std::fill(nest_.begin(), nest_.end(), env::kHomeNest);
    std::fill(count_.begin(), count_.end(), 0u);
    std::fill(quality_.begin(), quality_.end(), 0.0);
    if (kind_ == AlgorithmKind::kRateBoosted) {
      std::fill(initial_k_.begin(), initial_k_.end(), 0.0);
      for (std::size_t a = 0; a < num_ants; ++a) {
        // Mirror of RateBoostedAnt's constructor (tau from the believed n).
        halving_period_[a] = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(
                   3.0 * std::log2(static_cast<double>(
                             std::max(believed_n_[a], 2u)))));
      }
    }
    return true;
  }

  [[nodiscard]] RoundShape round_shape(std::uint32_t /*round*/) const override {
    switch (phase_) {
      case Phase::kInit: return RoundShape::kAllSearch;
      case Phase::kRecruit: return RoundShape::kAllRecruit;
      case Phase::kAssess: return RoundShape::kAllGo;
    }
    return RoundShape::kGeneric;
  }

  void fill_recruit_requests(std::uint32_t round,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      const bool b =
          active_[a] != 0 &&
          rng_[a].bernoulli(recruit_probability(a, round));  // lines 6 / 10
      requests[a] = env::RecruitRequest{static_cast<env::AntId>(a), b,
                                        nest_[a]};           // line 7
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t round, std::span<std::uint8_t> active) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(active.size() == rng_.size());
    // Snapshot the advertised nests: observe_recruit_pairing mutates the
    // nest lane while recruiters' targets must stay the round's values.
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = (active_[a] != 0 &&
                   rng_[a].bernoulli(recruit_probability(a, round)))
                      ? 1
                      : 0;  // lines 6 / 10
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;  // lines 8 / 14: go(nest)
  }

  // No decide_all override: every round of this family is colony-uniform,
  // so round_shape() never reports kGeneric and the base assert stands —
  // one copy of the decision logic (fill_recruit_requests /
  // fill_recruit_soa / go_targets), not two.

  void observe_all(std::span<const env::Outcome> outcomes) override {
    HH_EXPECTS(outcomes.size() == rng_.size());
    switch (phase_) {
      case Phase::kInit:
        // Lines 2-4: commit to the found nest; bad quality => passive.
        std::fill(census_.begin(), census_.end(), 0u);
        for (std::size_t a = 0; a < outcomes.size(); ++a) {
          const env::Outcome& out = outcomes[a];
          nest_[a] = out.nest;
          ++census_[out.nest];
          count_[a] = out.count;
          quality_[a] = out.quality;
          if (out.quality <= 0.0) active_[a] = 0;
          if (kind_ == AlgorithmKind::kRateBoosted) {
            // RateBoostedAnt's one-shot k^ = n / c0 from the initial spread.
            const double observed = std::max<std::uint32_t>(out.count, 1);
            initial_k_[a] = std::max(
                1.0, static_cast<double>(believed_n_[a]) / observed);
          }
        }
        phase_ = Phase::kRecruit;
        break;
      case Phase::kRecruit:
        // Line 7 / lines 10-13: unconditional nest adoption; a recruited
        // (or poached) ant becomes active.
        for (std::size_t a = 0; a < outcomes.size(); ++a) {
          if (outcomes[a].nest != nest_[a]) {
            --census_[nest_[a]];
            ++census_[outcomes[a].nest];
            nest_[a] = outcomes[a].nest;
            active_[a] = 1;
          }
        }
        phase_ = Phase::kAssess;
        break;
      case Phase::kAssess:
        // Lines 8 / 14 plus nest rejection (see SimpleAnt::observe).
        for (std::size_t a = 0; a < outcomes.size(); ++a) {
          count_[a] = outcomes[a].count;
          quality_[a] = outcomes[a].quality;
          if (outcomes[a].quality <= 0.0) active_[a] = 0;
        }
        phase_ = Phase::kRecruit;
        break;
    }
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(targets.size() == rng_.size());
    // Equivalent to the kRecruit branch of observe_all: a recruited ant's
    // outcome.nest is its recruiter's advertised nest; everyone else's is
    // its own target (no change). quality/count are unread in this phase.
    for (std::size_t a = 0; a < targets.size(); ++a) {
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter == env::kNotRecruited) continue;
      const env::NestId j = targets[static_cast<std::size_t>(recruiter)];
      if (j != nest_[a]) {
        --census_[nest_[a]];
        ++census_[j];
        nest_[a] = j;
        active_[a] = 1;
      }
    }
    phase_ = Phase::kAssess;
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> qualities) override {
    HH_EXPECTS(phase_ == Phase::kAssess);
    // Equivalent to the kAssess branch of observe_all under exact
    // observation: outcome.count == counts[nest], outcome.quality ==
    // qualities[nest - 1] (every committed nest is a candidate, >= 1).
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      const env::NestId nest = nest_[a];
      count_[a] = counts[nest];
      const double q = qualities[nest - 1];
      quality_[a] = q;
      if (q <= 0.0) active_[a] = 0;
    }
    phase_ = Phase::kRecruit;
  }

  void committed_census(std::span<std::uint32_t> census) const override {
    HH_EXPECTS(census.size() == census_.size());
    std::copy(census_.begin(), census_.end(), census.begin());
  }

  [[nodiscard]] std::uint32_t size() const override {
    return static_cast<std::uint32_t>(rng_.size());
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(kind_);
  }

 private:
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  /// The variant's b-probability — the exact floating-point expressions of
  /// SimpleAnt / RateBoostedAnt / QualityAwareAnt / UniformRecruitAnt
  /// (equivalence requires identical operation order, not just identical
  /// math).
  [[nodiscard]] double recruit_probability(std::size_t a,
                                           std::uint32_t round) const {
    const double base = static_cast<double>(count_[a]) /
                        static_cast<double>(believed_n_[a]);
    switch (kind_) {
      case AlgorithmKind::kSimple:
        return base;
      case AlgorithmKind::kUniformRecruit:
        return uniform_prob_;
      case AlgorithmKind::kQualityAware:
        return base * std::clamp(quality_[a], 0.0, 1.0);
      case AlgorithmKind::kRateBoosted: {
        double k_estimate = 0.0;
        if (initial_k_[a] != 0.0) {
          const std::uint32_t halvings = round / halving_period_[a];
          const double decayed =
              (halvings >= 63)
                  ? 1.0
                  : initial_k_[a] / static_cast<double>(1ULL << halvings);
          k_estimate = std::max(1.0, decayed);
        }
        return std::max(base, std::min(0.5, base * k_estimate / 8.0));
      }
      default:
        break;
    }
    HH_ASSERT(false);
    return 0.0;
  }

  AlgorithmKind kind_;
  double uniform_prob_;
  double n_estimate_error_;
  Phase phase_ = Phase::kInit;

  std::vector<std::uint32_t> census_;       // commitment census, maintained
                                            // incrementally on nest changes
  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;              // per-ant private streams
  std::vector<std::uint32_t> believed_n_;   // n~ (== n unless estimate error)
  std::vector<std::uint8_t> active_;
  std::vector<env::NestId> nest_;
  std::vector<std::uint32_t> count_;
  std::vector<double> quality_;
  std::vector<double> initial_k_;           // rate-boosted: k^
  std::vector<std::uint32_t> halving_period_;  // rate-boosted: tau
};

/// QuorumAnt as state arrays. The recruit/assess phase is colony-global
/// (quorum-met ants freeze their phase but never read it); the stage is
/// per ant.
class QuorumPack final : public AntPack {
 public:
  QuorumPack(std::uint32_t num_ants, std::uint32_t num_nests,
             std::uint64_t colony_seed, const AlgorithmParams& params)
      : num_ants_(num_ants),
        // Mirror of factory_for's threshold derivation (colony.cpp).
        threshold_(std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(params.quorum_fraction * num_ants))),
        tandem_rate_(params.quorum_tandem_rate) {
    HH_EXPECTS(num_ants >= 1);
    HH_EXPECTS(tandem_rate_ >= 0.0 && tandem_rate_ <= 1.0);
    rng_.resize(num_ants, util::Rng(0));
    stage_.resize(num_ants);
    nest_.resize(num_ants);
    count_.resize(num_ants);
    census_.resize(num_nests + 1);
    round_targets_.reserve(num_ants);  // quiet rounds must not allocate
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  bool reset(std::uint64_t colony_seed) override {
    for (env::AntId a = 0; a < num_ants_; ++a) {
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
    }
    std::fill(stage_.begin(), stage_.end(),
              static_cast<std::uint8_t>(Stage::kInit));
    std::fill(nest_.begin(), nest_.end(), env::kHomeNest);
    std::fill(count_.begin(), count_.end(), 0u);
    std::fill(census_.begin(), census_.end(), 0u);
    census_[env::kHomeNest] = num_ants_;
    init_done_ = false;
    phase_ = Phase::kRecruit;
    finalized_count_ = 0;
    return true;
  }

  [[nodiscard]] RoundShape round_shape(std::uint32_t /*round*/) const override {
    if (!init_done_) return RoundShape::kAllSearch;
    if (phase_ == Phase::kRecruit) return RoundShape::kAllRecruit;
    // Assess rounds are all-go only while no ant has met quorum; quorum-met
    // ants keep recruiting through assess rounds (direct transport), which
    // mixes the round — the generic path handles it.
    return finalized_count_ == 0 ? RoundShape::kAllGo : RoundShape::kGeneric;
  }

  void fill_recruit_requests(std::uint32_t /*round*/,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      requests[a] =
          env::RecruitRequest{static_cast<env::AntId>(a), decide_b(a), nest_[a]};
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t /*round*/, std::span<std::uint8_t> active) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(active.size() == rng_.size());
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = decide_b(a) ? 1 : 0;
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;
  }

  void decide_all(std::uint32_t /*round*/,
                  std::span<env::Action> actions) override {
    HH_EXPECTS(actions.size() == rng_.size());
    for (std::size_t a = 0; a < actions.size(); ++a) {
      switch (static_cast<Stage>(stage_[a])) {
        case Stage::kInit:
          actions[a] = env::Action::search();
          break;
        case Stage::kPassive:
          actions[a] = (phase_ == Phase::kRecruit)
                           ? env::Action::recruit(false, nest_[a])
                           : env::Action::go(nest_[a]);
          break;
        case Stage::kPreQuorum:
          if (phase_ == Phase::kRecruit) {
            // Population-proportional tandem running, slowed by tandem_rate.
            const double p = tandem_rate_ * static_cast<double>(count_[a]) /
                             static_cast<double>(num_ants_);
            actions[a] = env::Action::recruit(rng_[a].bernoulli(p), nest_[a]);
          } else {
            actions[a] = env::Action::go(nest_[a]);
          }
          break;
        case Stage::kQuorumMet:
          // Transport: recruit every round, commitment locked.
          actions[a] = env::Action::recruit(true, nest_[a]);
          break;
      }
    }
  }

  void observe_all(std::span<const env::Outcome> outcomes) override {
    HH_EXPECTS(outcomes.size() == rng_.size());
    if (!init_done_) {
      std::fill(census_.begin(), census_.end(), 0u);
      for (std::size_t a = 0; a < outcomes.size(); ++a) {
        nest_[a] = outcomes[a].nest;
        ++census_[outcomes[a].nest];
        count_[a] = outcomes[a].count;
        stage_[a] = static_cast<std::uint8_t>(outcomes[a].quality > 0.0
                                                  ? Stage::kPreQuorum
                                                  : Stage::kPassive);
      }
      init_done_ = true;
      phase_ = Phase::kRecruit;
      return;
    }
    if (phase_ == Phase::kRecruit) {
      for (std::size_t a = 0; a < outcomes.size(); ++a) {
        switch (static_cast<Stage>(stage_[a])) {
          case Stage::kPassive:
            if (outcomes[a].nest != nest_[a]) {
              --census_[nest_[a]];
              ++census_[outcomes[a].nest];
              nest_[a] = outcomes[a].nest;  // recruited: follow the tandem run
              stage_[a] = static_cast<std::uint8_t>(Stage::kPreQuorum);
            }
            break;
          case Stage::kPreQuorum:
            if (outcomes[a].nest != nest_[a]) {
              --census_[nest_[a]];
              ++census_[outcomes[a].nest];
              nest_[a] = outcomes[a].nest;  // still persuadable
            }
            break;
          default:
            break;  // quorum met: commitment locked
        }
      }
      phase_ = Phase::kAssess;
    } else {
      for (std::size_t a = 0; a < outcomes.size(); ++a) {
        switch (static_cast<Stage>(stage_[a])) {
          case Stage::kPassive:
            count_[a] = outcomes[a].count;
            break;
          case Stage::kPreQuorum:
            count_[a] = outcomes[a].count;
            if (count_[a] >= threshold_) {
              stage_[a] = static_cast<std::uint8_t>(Stage::kQuorumMet);
              ++finalized_count_;
            }
            break;
          default:
            break;
        }
      }
      phase_ = Phase::kRecruit;
    }
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(targets.size() == rng_.size());
    for (std::size_t a = 0; a < targets.size(); ++a) {
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter == env::kNotRecruited) continue;
      const env::NestId j = targets[static_cast<std::size_t>(recruiter)];
      switch (static_cast<Stage>(stage_[a])) {
        case Stage::kPassive:
          if (j != nest_[a]) {
            --census_[nest_[a]];
            ++census_[j];
            nest_[a] = j;  // recruited: follow the tandem run
            stage_[a] = static_cast<std::uint8_t>(Stage::kPreQuorum);
          }
          break;
        case Stage::kPreQuorum:
          if (j != nest_[a]) {
            --census_[nest_[a]];
            ++census_[j];
            nest_[a] = j;  // still persuadable
          }
          break;
        default:
          break;  // quorum met: commitment locked
      }
    }
    phase_ = Phase::kAssess;
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> /*qualities*/) override {
    // Only reachable while no ant has met quorum (round_shape gates on
    // finalized_count_ == 0), so every ant is kPassive or kPreQuorum.
    HH_EXPECTS(init_done_ && phase_ == Phase::kAssess);
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      count_[a] = counts[nest_[a]];
      if (static_cast<Stage>(stage_[a]) == Stage::kPreQuorum &&
          count_[a] >= threshold_) {
        stage_[a] = static_cast<std::uint8_t>(Stage::kQuorumMet);
        ++finalized_count_;
      }
    }
    phase_ = Phase::kRecruit;
  }

  void committed_census(std::span<std::uint32_t> census) const override {
    HH_EXPECTS(census.size() == census_.size());
    std::copy(census_.begin(), census_.end(), census.begin());
  }

  [[nodiscard]] bool finalized(env::AntId a) const override {
    return static_cast<Stage>(stage_[a]) == Stage::kQuorumMet;
  }

  [[nodiscard]] bool any_finalized() const override {
    return finalized_count_ > 0;
  }

  [[nodiscard]] std::uint32_t size() const override {
    return num_ants_;
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(AlgorithmKind::kQuorum);
  }

 private:
  enum class Stage : std::uint8_t { kInit, kPassive, kPreQuorum, kQuorumMet };
  enum class Phase : std::uint8_t { kRecruit, kAssess };

  /// The b of QuorumAnt::decide in a recruit-phase round.
  [[nodiscard]] bool decide_b(std::size_t a) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        return false;
      case Stage::kPreQuorum: {
        // Population-proportional tandem running, slowed by tandem_rate.
        const double p = tandem_rate_ * static_cast<double>(count_[a]) /
                         static_cast<double>(num_ants_);
        return rng_[a].bernoulli(p);
      }
      case Stage::kQuorumMet:
        return true;
      case Stage::kInit:
        break;
    }
    HH_ASSERT(false);  // round_shape reports kAllSearch pre-init
    return false;
  }

  std::uint32_t num_ants_;
  std::uint32_t threshold_;
  double tandem_rate_;
  bool init_done_ = false;
  Phase phase_ = Phase::kRecruit;
  std::uint32_t finalized_count_ = 0;

  std::vector<std::uint32_t> census_;  // commitment census, incremental
  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;
  std::vector<std::uint8_t> stage_;
  std::vector<env::NestId> nest_;
  std::vector<std::uint32_t> count_;
};

}  // namespace

AntPack::~AntPack() = default;

RoundShape AntPack::round_shape(std::uint32_t /*round*/) const {
  return RoundShape::kGeneric;
}

void AntPack::decide_all(std::uint32_t /*round*/,
                         std::span<env::Action> /*actions*/) {
  HH_ASSERT(false);  // only called when round_shape() says kGeneric
}

void AntPack::fill_recruit_requests(std::uint32_t /*round*/,
                                    std::span<env::RecruitRequest> /*requests*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
}

std::span<const env::NestId> AntPack::go_targets() const {
  HH_ASSERT(false);  // only called when round_shape() says kAllGo
  return {};
}

std::span<const env::NestId> AntPack::fill_recruit_soa(
    std::uint32_t /*round*/, std::span<std::uint8_t> /*active*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
  return {};
}

void AntPack::observe_recruit_pairing(
    std::span<const env::NestId> /*targets*/,
    const env::PairingScratch& /*pairing*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllRecruit rounds
}

void AntPack::observe_go_counts(std::span<const std::uint32_t> /*counts*/,
                                std::span<const double> /*qualities*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllGo rounds
}

bool AntPack::reset(std::uint64_t /*colony_seed*/) { return false; }

bool AntPack::finalized(env::AntId /*a*/) const { return false; }

bool AntPack::any_finalized() const { return false; }

bool packed_available(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
    case AlgorithmKind::kQuorum:
      return true;
    case AlgorithmKind::kOptimal:
    case AlgorithmKind::kOptimalSettle:
      return false;
  }
  return false;
}

std::unique_ptr<AntPack> make_ant_pack(AlgorithmKind kind,
                                       std::uint32_t num_ants,
                                       std::uint32_t num_nests,
                                       std::uint64_t colony_seed,
                                       const AlgorithmParams& params) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
      return std::make_unique<SimpleFamilyPack>(kind, num_ants, num_nests,
                                                colony_seed, params);
    case AlgorithmKind::kQuorum:
      return std::make_unique<QuorumPack>(num_ants, num_nests, colony_seed,
                                          params);
    case AlgorithmKind::kOptimal:
    case AlgorithmKind::kOptimalSettle:
      return nullptr;
  }
  return nullptr;
}

}  // namespace hh::core
