#include "core/ant_pack.hpp"

#include <algorithm>
#include <cmath>

#include "core/optimal_pack.hpp"
#include "util/contracts.hpp"

namespace hh::core {

namespace {

/// Mirror of colony.cpp's believed_n: an ant's private belief of n, drawn
/// (or not) off the ant's own stream exactly as the per-object factories
/// draw it — the packed path must consume the identical RNG prefix.
std::uint32_t believed_n(std::uint32_t num_ants, double error, util::Rng& rng) {
  if (error <= 0.0) return num_ants;
  const double lo = static_cast<double>(num_ants) * (1.0 - error);
  const double hi = static_cast<double>(num_ants) * (1.0 + error);
  const double belief = lo + (hi - lo) * rng.uniform_double();
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(belief));
}

/// The Algorithm-3 family (SimpleAnt and its subclasses) as state arrays.
/// All four variants share one FSM — phases are colony-synchronized under
/// full synchrony, so the phase lives in the pack, not per ant (a crashed
/// ant's frozen phase is irrelevant: it only idles) — and differ only in
/// the recruit-probability rule.
class SimpleFamilyPack final : public AntPack {
 public:
  SimpleFamilyPack(AlgorithmKind kind, std::uint32_t num_ants,
                   std::uint32_t num_nests, std::uint64_t colony_seed,
                   const AlgorithmParams& params, const env::FaultPlan* faults)
      : AntPack(num_ants, num_nests),
        kind_(kind),
        uniform_prob_(params.uniform_recruit_prob),
        n_estimate_error_(params.n_estimate_error) {
    HH_EXPECTS(num_ants >= 1);
    const std::size_t n = num_ants;
    rng_.resize(n, util::Rng(0));
    believed_n_.resize(n);
    active_.resize(n);
    count_.resize(n);
    quality_.resize(n);
    round_targets_.reserve(n);  // quiet rounds must not allocate
    if (kind_ == AlgorithmKind::kRateBoosted) {
      initial_k_.resize(n);
      halving_period_.resize(n);
    }
    if (faults != nullptr) install_fault_plan(*faults);
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] bool do_reset(std::uint64_t colony_seed) override {
    const auto num_ants = size();
    reset_commitments();
    phase_ = Phase::kInit;
    for (env::AntId a = 0; a < num_ants; ++a) {
      // Identical stream derivation to make_colony (colony.cpp).
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
      // uniform-recruit ignores n and, like its per-object factory, does
      // not draw a belief; Byzantine positions never construct the inner
      // ant at all (no draw); the others draw iff the error is positive.
      believed_n_[a] =
          (kind_ == AlgorithmKind::kUniformRecruit || byzantine(a))
              ? num_ants
              : believed_n(num_ants, n_estimate_error_, rng_[a]);
    }
    std::fill(active_.begin(), active_.end(),
              std::uint8_t{1});  // initially active (Algorithm 3, line 1)
    std::fill(count_.begin(), count_.end(), 0u);
    std::fill(quality_.begin(), quality_.end(), 0.0);
    if (kind_ == AlgorithmKind::kRateBoosted) {
      std::fill(initial_k_.begin(), initial_k_.end(), 0.0);
      for (std::size_t a = 0; a < num_ants; ++a) {
        // Mirror of RateBoostedAnt's constructor (tau from the believed n).
        halving_period_[a] = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(
                   3.0 * std::log2(static_cast<double>(
                             std::max(believed_n_[a], 2u)))));
      }
    }
    return true;
  }

  [[nodiscard]] RoundShape correct_shape(std::uint32_t /*round*/) const override {
    switch (phase_) {
      case Phase::kInit: return RoundShape::kAllSearch;
      case Phase::kRecruit: return RoundShape::kAllRecruit;
      case Phase::kAssess: return RoundShape::kAllGo;
    }
    HH_ASSERT(false);
    return RoundShape::kAllGo;
  }

  void fill_recruit_requests(std::uint32_t round,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      const bool b = decide_b(a, round);  // lines 6 / 10
      requests[a] = env::RecruitRequest{static_cast<env::AntId>(a), b,
                                        nest_[a]};           // line 7
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t round, std::span<std::uint8_t> active) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(active.size() == rng_.size());
    // Snapshot the advertised nests: observe_recruit_pairing mutates the
    // nest lane while recruiters' targets must stay the round's values.
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = decide_b(a, round) ? 1 : 0;  // lines 6 / 10
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;  // lines 8 / 14: go(nest)
  }

  void decide_masked(std::uint32_t round, std::span<const std::uint8_t> act,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) override {
    switch (phase_) {
      case Phase::kInit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (act[a]) op[a] = env::MaskedOp::kSearch;  // line 2
        }
        break;
      case Phase::kRecruit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          op[a] = env::MaskedOp::kRecruit;
          active[a] = decide_b(a, round) ? 1 : 0;  // lines 6 / 10
          targets[a] = nest_[a];                   // line 7
        }
        break;
      case Phase::kAssess:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          op[a] = env::MaskedOp::kGo;  // lines 8 / 14
          targets[a] = nest_[a];
        }
        break;
    }
  }

  // observe_all is the base forward onto this kernel (act all-ones).
  void observe_masked_acting(std::span<const std::uint8_t> act,
                             std::span<const env::Outcome> outcomes) override {
    switch (phase_) {
      case Phase::kInit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          apply_init(a, outcomes[a].nest, outcomes[a].count,
                     outcomes[a].quality);
        }
        break;
      case Phase::kRecruit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (act[a]) apply_recruit(a, outcomes[a].nest);
        }
        break;
      case Phase::kAssess:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (act[a]) apply_assess(a, outcomes[a].count, outcomes[a].quality);
        }
        break;
    }
    advance_phase();
  }

  void observe_masked_quiet_acting(
      std::span<const std::uint8_t> act, const env::Environment& env,
      std::span<const env::MaskedOp> /*op*/,
      std::span<const env::NestId> targets) override {
    const std::span<const std::uint32_t> counts = env.counts();
    const std::span<const double> qualities = env.qualities();
    switch (phase_) {
      case Phase::kInit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          const env::NestId found = env.location(static_cast<env::AntId>(a));
          apply_init(a, found, counts[found], qualities[found - 1]);
        }
        break;
      case Phase::kRecruit:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          const std::int32_t recruiter =
              env.recruited_by_ant(static_cast<env::AntId>(a));
          if (recruiter == env::kNotRecruited) continue;  // nest unchanged
          apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
        }
        break;
      case Phase::kAssess:
        for (std::size_t a = 0; a < act.size(); ++a) {
          if (!act[a]) continue;
          const env::NestId nest = nest_[a];
          apply_assess(a, counts[nest], qualities[nest - 1]);
        }
        break;
    }
    advance_phase();
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(phase_ == Phase::kRecruit);
    HH_EXPECTS(targets.size() == rng_.size());
    // Equivalent to the kRecruit branch of observe_all: a recruited ant's
    // outcome.nest is its recruiter's advertised nest; everyone else's is
    // its own target (no change). quality/count are unread in this phase.
    for (std::size_t a = 0; a < targets.size(); ++a) {
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter == env::kNotRecruited) continue;
      apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
    }
    advance_phase();
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> qualities) override {
    HH_EXPECTS(phase_ == Phase::kAssess);
    // Equivalent to the kAssess branch of observe_all under exact
    // observation: outcome.count == counts[nest], outcome.quality ==
    // qualities[nest - 1] (every committed nest is a candidate, >= 1).
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      const env::NestId nest = nest_[a];
      apply_assess(a, counts[nest], qualities[nest - 1]);
    }
    advance_phase();
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(kind_);
  }

 private:
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  /// The ant's b this recruit round — drawing iff the scalar ant would
  /// (SimpleAnt::decide short-circuits the bernoulli for passive ants).
  [[nodiscard]] bool decide_b(std::size_t a, std::uint32_t round) {
    return active_[a] != 0 && rng_[a].bernoulli(recruit_probability(a, round));
  }

  /// Lines 2-4: commit to the found nest; bad quality => passive.
  void apply_init(std::size_t a, env::NestId found, std::uint32_t count,
                  double quality) {
    adopt(a, found);
    count_[a] = count;
    quality_[a] = quality;
    if (quality <= 0.0) active_[a] = 0;
    if (kind_ == AlgorithmKind::kRateBoosted) {
      // RateBoostedAnt's one-shot k^ = n / c0 from the initial spread.
      const double observed = std::max<std::uint32_t>(count, 1);
      initial_k_[a] =
          std::max(1.0, static_cast<double>(believed_n_[a]) / observed);
    }
  }

  /// Line 7 / lines 10-13: unconditional nest adoption; a recruited
  /// (or poached) ant becomes active.
  void apply_recruit(std::size_t a, env::NestId j) {
    if (j != nest_[a]) {
      adopt(a, j);
      active_[a] = 1;
    }
  }

  /// Lines 8 / 14 plus nest rejection (see SimpleAnt::observe).
  void apply_assess(std::size_t a, std::uint32_t count, double quality) {
    count_[a] = count;
    quality_[a] = quality;
    if (quality <= 0.0) active_[a] = 0;
  }

  void advance_phase() {
    phase_ = (phase_ == Phase::kAssess || phase_ == Phase::kInit)
                 ? Phase::kRecruit
                 : Phase::kAssess;
  }

  /// The variant's b-probability — the exact floating-point expressions of
  /// SimpleAnt / RateBoostedAnt / QualityAwareAnt / UniformRecruitAnt
  /// (equivalence requires identical operation order, not just identical
  /// math).
  [[nodiscard]] double recruit_probability(std::size_t a,
                                           std::uint32_t round) const {
    const double base = static_cast<double>(count_[a]) /
                        static_cast<double>(believed_n_[a]);
    switch (kind_) {
      case AlgorithmKind::kSimple:
        return base;
      case AlgorithmKind::kUniformRecruit:
        return uniform_prob_;
      case AlgorithmKind::kQualityAware:
        return base * std::clamp(quality_[a], 0.0, 1.0);
      case AlgorithmKind::kRateBoosted: {
        double k_estimate = 0.0;
        if (initial_k_[a] != 0.0) {
          const std::uint32_t halvings = round / halving_period_[a];
          const double decayed =
              (halvings >= 63)
                  ? 1.0
                  : initial_k_[a] / static_cast<double>(1ULL << halvings);
          k_estimate = std::max(1.0, decayed);
        }
        return std::max(base, std::min(0.5, base * k_estimate / 8.0));
      }
      default:
        break;
    }
    HH_ASSERT(false);
    return 0.0;
  }

  AlgorithmKind kind_;
  double uniform_prob_;
  double n_estimate_error_;
  Phase phase_ = Phase::kInit;

  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;              // per-ant private streams
  std::vector<std::uint32_t> believed_n_;   // n~ (== n unless estimate error)
  std::vector<std::uint8_t> active_;
  std::vector<std::uint32_t> count_;
  std::vector<double> quality_;
  std::vector<double> initial_k_;           // rate-boosted: k^
  std::vector<std::uint32_t> halving_period_;  // rate-boosted: tau
};

/// QuorumAnt as state arrays. The recruit/assess phase is colony-global
/// (quorum-met and crashed ants freeze their phase but never read it);
/// the stage is per ant.
class QuorumPack final : public AntPack {
 public:
  QuorumPack(std::uint32_t num_ants, std::uint32_t num_nests,
             std::uint64_t colony_seed, const AlgorithmParams& params,
             const env::FaultPlan* faults)
      : AntPack(num_ants, num_nests),
        // Mirror of factory_for's threshold derivation (colony.cpp).
        threshold_(std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(params.quorum_fraction * num_ants))),
        tandem_rate_(params.quorum_tandem_rate) {
    HH_EXPECTS(num_ants >= 1);
    HH_EXPECTS(tandem_rate_ >= 0.0 && tandem_rate_ <= 1.0);
    rng_.resize(num_ants, util::Rng(0));
    stage_.resize(num_ants);
    count_.resize(num_ants);
    round_targets_.reserve(num_ants);  // quiet rounds must not allocate
    if (faults != nullptr) install_fault_plan(*faults);
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] bool do_reset(std::uint64_t colony_seed) override {
    for (env::AntId a = 0; a < size(); ++a) {
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
    }
    std::fill(stage_.begin(), stage_.end(),
              static_cast<std::uint8_t>(Stage::kInit));
    std::fill(count_.begin(), count_.end(), 0u);
    reset_commitments();
    init_done_ = false;
    phase_ = Phase::kRecruit;
    finalized_count_ = 0;
    return true;
  }

  [[nodiscard]] RoundShape correct_shape(std::uint32_t /*round*/) const override {
    if (!init_done_) return RoundShape::kAllSearch;
    if (phase_ == Phase::kRecruit) return RoundShape::kAllRecruit;
    // Assess rounds are all-go only while no ant has met quorum; quorum-met
    // ants keep recruiting through assess rounds (direct transport), which
    // mixes the round — the masked path handles it.
    return finalized_count_ == 0 ? RoundShape::kAllGo
                                 : RoundShape::kMaskedRecruit;
  }

  void fill_recruit_requests(std::uint32_t /*round*/,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      requests[a] =
          env::RecruitRequest{static_cast<env::AntId>(a), decide_b(a), nest_[a]};
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t /*round*/, std::span<std::uint8_t> active) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(active.size() == rng_.size());
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = decide_b(a) ? 1 : 0;
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;
  }

  void decide_masked(std::uint32_t /*round*/, std::span<const std::uint8_t> act,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) override {
    if (!init_done_) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (act[a]) op[a] = env::MaskedOp::kSearch;
      }
      return;
    }
    if (phase_ == Phase::kRecruit) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (!act[a]) continue;
        op[a] = env::MaskedOp::kRecruit;
        active[a] = decide_b(a) ? 1 : 0;
        targets[a] = nest_[a];
      }
      return;
    }
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      if (static_cast<Stage>(stage_[a]) == Stage::kQuorumMet) {
        // Transport: recruit every round, commitment locked.
        op[a] = env::MaskedOp::kRecruit;
        active[a] = 1;
        targets[a] = nest_[a];
      } else {
        op[a] = env::MaskedOp::kGo;
        targets[a] = nest_[a];
      }
    }
  }

  // observe_all is the base forward onto this kernel (act all-ones).
  void observe_masked_acting(std::span<const std::uint8_t> act,
                             std::span<const env::Outcome> outcomes) override {
    if (!init_done_) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (!act[a]) continue;
        apply_init(a, outcomes[a].nest, outcomes[a].count,
                   outcomes[a].quality);
      }
      finish_init();
      return;
    }
    if (phase_ == Phase::kRecruit) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (act[a]) apply_recruit(a, outcomes[a].nest);
      }
      phase_ = Phase::kAssess;
    } else {
      for (std::size_t a = 0; a < act.size(); ++a) {
        // Quorum-met ants recruit through assess rounds; their return
        // value is ignored (commitment locked), so only the goers learn.
        if (act[a] && static_cast<Stage>(stage_[a]) != Stage::kQuorumMet) {
          apply_assess(a, outcomes[a].count);
        }
      }
      phase_ = Phase::kRecruit;
    }
  }

  void observe_masked_quiet_acting(
      std::span<const std::uint8_t> act, const env::Environment& env,
      std::span<const env::MaskedOp> /*op*/,
      std::span<const env::NestId> targets) override {
    const std::span<const std::uint32_t> counts = env.counts();
    if (!init_done_) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (!act[a]) continue;
        const env::NestId found = env.location(static_cast<env::AntId>(a));
        apply_init(a, found, counts[found], env.qualities()[found - 1]);
      }
      finish_init();
      return;
    }
    if (phase_ == Phase::kRecruit) {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (!act[a]) continue;
        const std::int32_t recruiter =
            env.recruited_by_ant(static_cast<env::AntId>(a));
        if (recruiter == env::kNotRecruited) continue;
        apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
      }
      phase_ = Phase::kAssess;
    } else {
      for (std::size_t a = 0; a < act.size(); ++a) {
        if (act[a] && static_cast<Stage>(stage_[a]) != Stage::kQuorumMet) {
          apply_assess(a, counts[nest_[a]]);
        }
      }
      phase_ = Phase::kRecruit;
    }
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(init_done_ && phase_ == Phase::kRecruit);
    HH_EXPECTS(targets.size() == rng_.size());
    for (std::size_t a = 0; a < targets.size(); ++a) {
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter == env::kNotRecruited) continue;
      apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
    }
    phase_ = Phase::kAssess;
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> /*qualities*/) override {
    // Only reachable while no ant has met quorum (correct_shape gates on
    // finalized_count_ == 0), so every ant is kPassive or kPreQuorum.
    HH_EXPECTS(init_done_ && phase_ == Phase::kAssess);
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      apply_assess(a, counts[nest_[a]]);
    }
    phase_ = Phase::kRecruit;
  }

  [[nodiscard]] bool finalized(env::AntId a) const override {
    return static_cast<Stage>(stage_[a]) == Stage::kQuorumMet;
  }

  [[nodiscard]] bool any_finalized() const override {
    return finalized_count_ > 0;
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(AlgorithmKind::kQuorum);
  }

 private:
  enum class Stage : std::uint8_t { kInit, kPassive, kPreQuorum, kQuorumMet };
  enum class Phase : std::uint8_t { kRecruit, kAssess };

  /// The b of QuorumAnt::decide in a recruit-phase round.
  [[nodiscard]] bool decide_b(std::size_t a) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        return false;
      case Stage::kPreQuorum: {
        // Population-proportional tandem running, slowed by tandem_rate.
        const double p = tandem_rate_ * static_cast<double>(count_[a]) /
                         static_cast<double>(size());
        return rng_[a].bernoulli(p);
      }
      case Stage::kQuorumMet:
        return true;
      case Stage::kInit:
        break;
    }
    HH_ASSERT(false);  // correct_shape reports kAllSearch pre-init
    return false;
  }

  void apply_init(std::size_t a, env::NestId found, std::uint32_t count,
                  double quality) {
    adopt(a, found);
    count_[a] = count;
    stage_[a] = static_cast<std::uint8_t>(quality > 0.0 ? Stage::kPreQuorum
                                                        : Stage::kPassive);
  }

  void finish_init() {
    init_done_ = true;
    phase_ = Phase::kRecruit;
  }

  void apply_recruit(std::size_t a, env::NestId j) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        if (j != nest_[a]) {
          adopt(a, j);  // recruited: follow the tandem run
          stage_[a] = static_cast<std::uint8_t>(Stage::kPreQuorum);
        }
        break;
      case Stage::kPreQuorum:
        if (j != nest_[a]) adopt(a, j);  // still persuadable
        break;
      default:
        break;  // quorum met: commitment locked
    }
  }

  void apply_assess(std::size_t a, std::uint32_t count) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        count_[a] = count;
        break;
      case Stage::kPreQuorum:
        count_[a] = count;
        if (count_[a] >= threshold_) {
          stage_[a] = static_cast<std::uint8_t>(Stage::kQuorumMet);
          ++finalized_count_;
        }
        break;
      default:
        break;
    }
  }

  std::uint32_t threshold_;
  double tandem_rate_;
  bool init_done_ = false;
  Phase phase_ = Phase::kRecruit;
  std::uint32_t finalized_count_ = 0;

  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;
  std::vector<std::uint8_t> stage_;
  std::vector<std::uint32_t> count_;
};

}  // namespace

AntPack::AntPack(std::uint32_t num_ants, std::uint32_t num_nests)
    : num_ants_(num_ants) {
  HH_EXPECTS(num_ants >= 1);
  act_.assign(num_ants, 1);  // everyone acts until a fault plan says not
  nest_.assign(num_ants, env::kHomeNest);
  census_.assign(num_nests + 1, 0);
  census_[env::kHomeNest] = num_ants;  // re-derived by reset_commitments
}

AntPack::~AntPack() = default;

void AntPack::reset_commitments() {
  std::fill(nest_.begin(), nest_.end(), env::kHomeNest);
  std::fill(census_.begin(), census_.end(), 0u);
  census_[env::kHomeNest] = correct_count();
}

void AntPack::committed_census(std::span<std::uint32_t> census) const {
  HH_EXPECTS(census.size() == census_.size());
  std::copy(census_.begin(), census_.end(), census.begin());
}

void AntPack::observe_all(std::span<const env::Outcome> outcomes) {
  HH_ASSERT(!has_faults_);  // uniform shapes are never reported faulted
  observe_masked_acting(act_, outcomes);
}

void AntPack::install_fault_plan(const env::FaultPlan& plan) {
  HH_EXPECTS(plan.type.size() == num_ants_);
  HH_EXPECTS(plan.crash_round.size() == num_ants_);
  correct_count_ = 0;
  byz_count_ = 0;
  fault_type_.resize(num_ants_);
  crash_round_.resize(num_ants_);
  byz_target_.assign(num_ants_, env::kHomeNest);
  byz_quality_.assign(num_ants_, kByzantineNoTargetQuality);
  for (env::AntId a = 0; a < num_ants_; ++a) {
    fault_type_[a] = static_cast<std::uint8_t>(plan.type[a]);
    crash_round_[a] = plan.crash_round[a];
    correct_count_ += plan.type[a] == env::FaultType::kNone ? 1u : 0u;
    byz_count_ += plan.type[a] == env::FaultType::kByzantine ? 1u : 0u;
  }
  // A plan whose victim counts floored to zero is behaviorally fault-free:
  // keep the uniform fast paths.
  has_faults_ = correct_count_ != num_ants_;
}

bool AntPack::reset(std::uint64_t colony_seed) {
  if (!do_reset(colony_seed)) return false;
  if (has_faults_) {
    // Re-derive the Byzantine scout state; the installed plan (types,
    // crash rounds) persists — Simulation::reset reinstalls it when the
    // plan itself depends on the master seed.
    std::fill(byz_target_.begin(), byz_target_.end(), env::kHomeNest);
    std::fill(byz_quality_.begin(), byz_quality_.end(),
              kByzantineNoTargetQuality);
  }
  return true;
}

RoundShape AntPack::round_shape(std::uint32_t round) const {
  const RoundShape shape = correct_shape(round);
  if (!has_faults_) return shape;
  // Any faulty ant deviates from a uniform shape: crashed ants idle,
  // Byzantine ants search through their scout rounds and recruit after.
  const bool byz_recruiting = byz_count_ > 0 && round > kByzantineScoutRounds;
  const bool recruiters = shape == RoundShape::kAllRecruit ||
                          shape == RoundShape::kMaskedRecruit ||
                          byz_recruiting;
  return recruiters ? RoundShape::kMaskedRecruit : RoundShape::kMaskedGo;
}

void AntPack::overlay_faults(std::uint32_t round, std::span<env::MaskedOp> op,
                             std::span<std::uint8_t> active,
                             std::span<env::NestId> targets) {
  for (env::AntId a = 0; a < num_ants_; ++a) {
    switch (static_cast<env::FaultType>(fault_type_[a])) {
      case env::FaultType::kNone:
        act_[a] = 1;
        break;
      case env::FaultType::kCrash:
        // CrashProneAnt: idles (and stops observing) from its crash round.
        if (round < crash_round_[a]) {
          act_[a] = 1;
        } else {
          act_[a] = 0;
          op[a] = env::MaskedOp::kIdle;
        }
        break;
      case env::FaultType::kByzantine:
        // ByzantineAnt: scout for the worst nest, then recruit toward it
        // every round, forever, ignoring all feedback.
        act_[a] = 0;
        if (round <= kByzantineScoutRounds) {
          op[a] = env::MaskedOp::kSearch;
        } else {
          op[a] = env::MaskedOp::kRecruit;
          active[a] = 1;
          targets[a] = byz_target_[a];
        }
        break;
    }
  }
}

void AntPack::fill_masked(std::uint32_t round, std::span<env::MaskedOp> op,
                          std::span<std::uint8_t> active,
                          std::span<env::NestId> targets) {
  HH_EXPECTS(op.size() == num_ants_);
  HH_EXPECTS(active.size() == num_ants_);
  HH_EXPECTS(targets.size() == num_ants_);
  masked_round_ = round;
  if (has_faults_) overlay_faults(round, op, active, targets);
  decide_masked(round, act_, op, active, targets);
}

void AntPack::observe_masked(std::span<const env::Outcome> outcomes) {
  // Byzantine search outcomes exist only during the scout window — skip
  // the O(n) scan for the rest of the run (mirrors the quiet form).
  if (byz_count_ > 0 && masked_round_ <= kByzantineScoutRounds) {
    for (env::AntId a = 0; a < num_ants_; ++a) {
      if (!byzantine(a) || outcomes[a].kind != env::ActionKind::kSearch) {
        continue;
      }
      // Track the worst nest seen; ties broken toward the first found so
      // the adversary concentrates its pull on a single bad nest.
      if (outcomes[a].quality < byz_quality_[a]) {
        byz_quality_[a] = outcomes[a].quality;
        byz_target_[a] = outcomes[a].nest;
      }
    }
  }
  observe_masked_acting(act_, outcomes);
}

void AntPack::observe_masked_quiet(const env::Environment& env,
                                   std::span<const env::MaskedOp> op,
                                   std::span<const env::NestId> targets) {
  if (byz_count_ > 0 && masked_round_ <= kByzantineScoutRounds) {
    for (env::AntId a = 0; a < num_ants_; ++a) {
      if (!byzantine(a)) continue;
      const env::NestId found = env.location(a);
      const double q = env.qualities()[found - 1];  // exact observation
      if (q < byz_quality_[a]) {
        byz_quality_[a] = q;
        byz_target_[a] = found;
      }
    }
  }
  observe_masked_quiet_acting(act_, env, op, targets);
}

std::uint32_t AntPack::agreement_census(ConvergenceMode mode,
                                        const env::Environment& /*env*/,
                                        std::span<std::uint32_t> census) const {
  // Packs default to the kCommitment notion; packs whose algorithms use
  // finalized/physical agreement override (OptimalPack).
  HH_EXPECTS(mode == ConvergenceMode::kCommitment);
  committed_census(census);
  return correct_count();
}

void AntPack::decide_masked(std::uint32_t /*round*/,
                            std::span<const std::uint8_t> /*act*/,
                            std::span<env::MaskedOp> /*op*/,
                            std::span<std::uint8_t> /*active*/,
                            std::span<env::NestId> /*targets*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

void AntPack::observe_masked_acting(std::span<const std::uint8_t> /*act*/,
                                    std::span<const env::Outcome> /*outcomes*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

void AntPack::observe_masked_quiet_acting(
    std::span<const std::uint8_t> /*act*/, const env::Environment& /*env*/,
    std::span<const env::MaskedOp> /*op*/,
    std::span<const env::NestId> /*targets*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

void AntPack::fill_recruit_requests(std::uint32_t /*round*/,
                                    std::span<env::RecruitRequest> /*requests*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
}

std::span<const env::NestId> AntPack::go_targets() const {
  HH_ASSERT(false);  // only called when round_shape() says kAllGo
  return {};
}

std::span<const env::NestId> AntPack::fill_recruit_soa(
    std::uint32_t /*round*/, std::span<std::uint8_t> /*active*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
  return {};
}

void AntPack::observe_recruit_pairing(
    std::span<const env::NestId> /*targets*/,
    const env::PairingScratch& /*pairing*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllRecruit rounds
}

void AntPack::observe_go_counts(std::span<const std::uint32_t> /*counts*/,
                                std::span<const double> /*qualities*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllGo rounds
}

bool AntPack::finalized(env::AntId /*a*/) const { return false; }

bool AntPack::any_finalized() const { return false; }

bool packed_available(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
    case AlgorithmKind::kQuorum:
    case AlgorithmKind::kOptimal:
    case AlgorithmKind::kOptimalSettle:
      return true;
  }
  return false;
}

Capabilities packed_capabilities(AlgorithmKind kind) {
  // One declaration covers every built-in: they all derive from the
  // AntPack base, whose fault lanes, loud/quiet observe kernels, and
  // agreement censuses supply the whole matrix except partial synchrony.
  return packed_available(kind) ? Capabilities::standard_pack()
                                : Capabilities{};
}

std::unique_ptr<AntPack> make_ant_pack(AlgorithmKind kind,
                                       std::uint32_t num_ants,
                                       std::uint32_t num_nests,
                                       std::uint64_t colony_seed,
                                       const AlgorithmParams& params,
                                       const env::FaultPlan* faults) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
      return std::make_unique<SimpleFamilyPack>(kind, num_ants, num_nests,
                                                colony_seed, params, faults);
    case AlgorithmKind::kQuorum:
      return std::make_unique<QuorumPack>(num_ants, num_nests, colony_seed,
                                          params, faults);
    case AlgorithmKind::kOptimal:
      return make_optimal_pack(num_ants, num_nests, colony_seed,
                               /*settle=*/false, faults);
    case AlgorithmKind::kOptimalSettle:
      return make_optimal_pack(num_ants, num_nests, colony_seed,
                               /*settle=*/true, faults);
  }
  return nullptr;
}

}  // namespace hh::core
