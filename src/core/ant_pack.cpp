#include "core/ant_pack.hpp"

#include <algorithm>
#include <cmath>

#include "core/optimal_pack.hpp"
#include "util/contracts.hpp"

namespace hh::core {

namespace {

/// Mirror of colony.cpp's believed_n: an ant's private belief of n, drawn
/// (or not) off the ant's own stream exactly as the per-object factories
/// draw it — the packed path must consume the identical RNG prefix.
std::uint32_t believed_n(std::uint32_t num_ants, double error, util::Rng& rng) {
  if (error <= 0.0) return num_ants;
  const double lo = static_cast<double>(num_ants) * (1.0 - error);
  const double hi = static_cast<double>(num_ants) * (1.0 + error);
  const double belief = lo + (hi - lo) * rng.uniform_double();
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(belief));
}

/// The Algorithm-3 family (SimpleAnt and its subclasses) as state arrays.
/// All four variants share one FSM and differ only in the
/// recruit-probability rule. The phase is a per-ant lane: under full
/// synchrony every ant stays in lockstep (and the uniform-shape fast paths
/// still fire, via the phase census), but a sleeping ant freezes — it
/// skips both decide and observe, exactly like the scalar ant — so under
/// partial synchrony the colony's phases drift apart and rounds become
/// permanently mixed.
class SimpleFamilyPack final : public AntPack {
 public:
  SimpleFamilyPack(AlgorithmKind kind, std::uint32_t num_ants,
                   std::uint32_t num_nests, std::uint64_t colony_seed,
                   const AlgorithmParams& params, const env::FaultPlan* faults)
      : AntPack(num_ants, num_nests),
        kind_(kind),
        uniform_prob_(params.uniform_recruit_prob),
        n_estimate_error_(params.n_estimate_error) {
    HH_EXPECTS(num_ants >= 1);
    const std::size_t n = num_ants;
    rng_.resize(n, util::Rng(0));
    phase_.resize(n);
    believed_n_.resize(n);
    active_.resize(n);
    count_.resize(n);
    quality_.resize(n);
    round_targets_.reserve(n);  // quiet rounds must not allocate
    if (kind_ == AlgorithmKind::kRateBoosted) {
      initial_k_.resize(n);
      halving_period_.resize(n);
    }
    if (faults != nullptr) install_fault_plan(*faults);
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] bool do_reset(std::uint64_t colony_seed) override {
    const auto num_ants = size();
    reset_commitments();
    std::fill(phase_.begin(), phase_.end(), Phase::kInit);
    phase_count_[static_cast<std::size_t>(Phase::kInit)] = num_ants;
    phase_count_[static_cast<std::size_t>(Phase::kRecruit)] = 0;
    phase_count_[static_cast<std::size_t>(Phase::kAssess)] = 0;
    for (env::AntId a = 0; a < num_ants; ++a) {
      // Identical stream derivation to make_colony (colony.cpp).
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
      // uniform-recruit ignores n and, like its per-object factory, does
      // not draw a belief; Byzantine positions never construct the inner
      // ant at all (no draw); the others draw iff the error is positive.
      believed_n_[a] =
          (kind_ == AlgorithmKind::kUniformRecruit || byzantine(a))
              ? num_ants
              : believed_n(num_ants, n_estimate_error_, rng_[a]);
    }
    std::fill(active_.begin(), active_.end(),
              std::uint8_t{1});  // initially active (Algorithm 3, line 1)
    std::fill(count_.begin(), count_.end(), 0u);
    std::fill(quality_.begin(), quality_.end(), 0.0);
    if (kind_ == AlgorithmKind::kRateBoosted) {
      std::fill(initial_k_.begin(), initial_k_.end(), 0.0);
      for (std::size_t a = 0; a < num_ants; ++a) {
        // Mirror of RateBoostedAnt's constructor (tau from the believed n).
        halving_period_[a] = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(
                   3.0 * std::log2(static_cast<double>(
                             std::max(believed_n_[a], 2u)))));
      }
    }
    return true;
  }

  [[nodiscard]] RoundShape correct_shape(std::uint32_t /*round*/) const override {
    if (all_in(Phase::kInit)) return RoundShape::kAllSearch;
    if (all_in(Phase::kRecruit)) return RoundShape::kAllRecruit;
    if (all_in(Phase::kAssess)) return RoundShape::kAllGo;
    // Drifted phases (sleep lanes, or ants frozen mid-phase by a crash).
    // Any ant still parked in its recruit phase forces the recruit-capable
    // entry point; if none is, the round is pure movement.
    return phase_count_[static_cast<std::size_t>(Phase::kRecruit)] > 0
               ? RoundShape::kMaskedRecruit
               : RoundShape::kMaskedGo;
  }

  void fill_recruit_requests(std::uint32_t round,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      const bool b = decide_b(a, round);  // lines 6 / 10
      requests[a] = env::RecruitRequest{static_cast<env::AntId>(a), b,
                                        nest_[a]};           // line 7
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t round, std::span<std::uint8_t> active) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(active.size() == rng_.size());
    // Snapshot the advertised nests: observe_recruit_pairing mutates the
    // nest lane while recruiters' targets must stay the round's values.
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = decide_b(a, round) ? 1 : 0;  // lines 6 / 10
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;  // lines 8 / 14: go(nest)
  }

  void decide_masked(std::uint32_t round, std::span<const std::uint8_t> act,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      switch (phase_[a]) {
        case Phase::kInit:
          op[a] = env::MaskedOp::kSearch;  // line 2
          break;
        case Phase::kRecruit:
          op[a] = env::MaskedOp::kRecruit;
          active[a] = decide_b(a, round) ? 1 : 0;  // lines 6 / 10
          targets[a] = nest_[a];                   // line 7
          break;
        case Phase::kAssess:
          op[a] = env::MaskedOp::kGo;  // lines 8 / 14
          targets[a] = nest_[a];
          break;
      }
    }
  }

  // observe_all is the base forward onto this kernel (act all-ones).
  void observe_masked_acting(std::span<const std::uint8_t> act,
                             std::span<const env::Outcome> outcomes) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;  // frozen: crashed, sleeping, or Byzantine
      switch (phase_[a]) {
        case Phase::kInit:
          apply_init(a, outcomes[a].nest, outcomes[a].count,
                     outcomes[a].quality);
          break;
        case Phase::kRecruit:
          apply_recruit(a, outcomes[a].nest);
          break;
        case Phase::kAssess:
          apply_assess(a, outcomes[a].count, outcomes[a].quality);
          break;
      }
      advance(a);
    }
  }

  void observe_masked_quiet_acting(
      std::span<const std::uint8_t> act, const env::Environment& env,
      std::span<const env::MaskedOp> /*op*/,
      std::span<const env::NestId> targets) override {
    const std::span<const std::uint32_t> counts = env.counts();
    const std::span<const double> qualities = env.qualities();
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;  // frozen: crashed, sleeping, or Byzantine
      switch (phase_[a]) {
        case Phase::kInit: {
          const env::NestId found = env.location(static_cast<env::AntId>(a));
          apply_init(a, found, counts[found], qualities[found - 1]);
          break;
        }
        case Phase::kRecruit: {
          const std::int32_t recruiter =
              env.recruited_by_ant(static_cast<env::AntId>(a));
          if (recruiter != env::kNotRecruited) {  // else nest unchanged
            apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
          }
          break;
        }
        case Phase::kAssess: {
          const env::NestId nest = nest_[a];
          apply_assess(a, counts[nest], qualities[nest - 1]);
          break;
        }
      }
      advance(a);
    }
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(targets.size() == rng_.size());
    // Equivalent to the kRecruit branch of observe_all: a recruited ant's
    // outcome.nest is its recruiter's advertised nest; everyone else's is
    // its own target (no change). quality/count are unread in this phase.
    for (std::size_t a = 0; a < targets.size(); ++a) {
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter == env::kNotRecruited) continue;
      apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
    }
    advance_all();
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> qualities) override {
    HH_EXPECTS(all_in(Phase::kAssess));
    // Equivalent to the kAssess branch of observe_all under exact
    // observation: outcome.count == counts[nest], outcome.quality ==
    // qualities[nest - 1] (every committed nest is a candidate, >= 1).
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      const env::NestId nest = nest_[a];
      apply_assess(a, counts[nest], qualities[nest - 1]);
    }
    advance_all();
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(kind_);
  }

 private:
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  /// The ant's b this recruit round — drawing iff the scalar ant would
  /// (SimpleAnt::decide short-circuits the bernoulli for passive ants).
  [[nodiscard]] bool decide_b(std::size_t a, std::uint32_t round) {
    return active_[a] != 0 && rng_[a].bernoulli(recruit_probability(a, round));
  }

  /// Lines 2-4: commit to the found nest; bad quality => passive.
  void apply_init(std::size_t a, env::NestId found, std::uint32_t count,
                  double quality) {
    adopt(a, found);
    count_[a] = count;
    quality_[a] = quality;
    if (quality <= 0.0) active_[a] = 0;
    if (kind_ == AlgorithmKind::kRateBoosted) {
      // RateBoostedAnt's one-shot k^ = n / c0 from the initial spread.
      const double observed = std::max<std::uint32_t>(count, 1);
      initial_k_[a] =
          std::max(1.0, static_cast<double>(believed_n_[a]) / observed);
    }
  }

  /// Line 7 / lines 10-13: unconditional nest adoption; a recruited
  /// (or poached) ant becomes active.
  void apply_recruit(std::size_t a, env::NestId j) {
    if (j != nest_[a]) {
      adopt(a, j);
      active_[a] = 1;
    }
  }

  /// Lines 8 / 14 plus nest rejection (see SimpleAnt::observe).
  void apply_assess(std::size_t a, std::uint32_t count, double quality) {
    count_[a] = count;
    quality_[a] = quality;
    if (quality <= 0.0) active_[a] = 0;
  }

  /// True iff every ant (including frozen faulty ones) is in phase p —
  /// the gate for the uniform-shape fast paths.
  [[nodiscard]] bool all_in(Phase p) const {
    return phase_count_[static_cast<std::size_t>(p)] == size();
  }

  /// kInit -> kRecruit -> kAssess -> kRecruit -> ... (SimpleAnt::observe).
  void advance(std::size_t a) {
    const Phase next =
        phase_[a] == Phase::kRecruit ? Phase::kAssess : Phase::kRecruit;
    --phase_count_[static_cast<std::size_t>(phase_[a])];
    ++phase_count_[static_cast<std::size_t>(next)];
    phase_[a] = next;
  }

  void advance_all() {
    for (std::size_t a = 0; a < phase_.size(); ++a) advance(a);
  }

  /// The variant's b-probability — the exact floating-point expressions of
  /// SimpleAnt / RateBoostedAnt / QualityAwareAnt / UniformRecruitAnt
  /// (equivalence requires identical operation order, not just identical
  /// math).
  [[nodiscard]] double recruit_probability(std::size_t a,
                                           std::uint32_t round) const {
    const double base = static_cast<double>(count_[a]) /
                        static_cast<double>(believed_n_[a]);
    switch (kind_) {
      case AlgorithmKind::kSimple:
        return base;
      case AlgorithmKind::kUniformRecruit:
        return uniform_prob_;
      case AlgorithmKind::kQualityAware:
        return base * std::clamp(quality_[a], 0.0, 1.0);
      case AlgorithmKind::kRateBoosted: {
        double k_estimate = 0.0;
        if (initial_k_[a] != 0.0) {
          const std::uint32_t halvings = round / halving_period_[a];
          const double decayed =
              (halvings >= 63)
                  ? 1.0
                  : initial_k_[a] / static_cast<double>(1ULL << halvings);
          k_estimate = std::max(1.0, decayed);
        }
        return std::max(base, std::min(0.5, base * k_estimate / 8.0));
      }
      default:
        break;
    }
    HH_ASSERT(false);
    return 0.0;
  }

  AlgorithmKind kind_;
  double uniform_prob_;
  double n_estimate_error_;
  std::vector<Phase> phase_;      // per ant: frozen while asleep/crashed
  std::uint32_t phase_count_[3] = {0, 0, 0};  // census over phase_

  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;              // per-ant private streams
  std::vector<std::uint32_t> believed_n_;   // n~ (== n unless estimate error)
  std::vector<std::uint8_t> active_;
  std::vector<std::uint32_t> count_;
  std::vector<double> quality_;
  std::vector<double> initial_k_;           // rate-boosted: k^
  std::vector<std::uint32_t> halving_period_;  // rate-boosted: tau
};

/// QuorumAnt as state arrays. Both the stage and the recruit/assess phase
/// are per-ant lanes, exactly as in the scalar ant: a sleeping or crashed
/// ant freezes both, and a quorum-met ant's phase parks at kRecruit (the
/// assess observe that locked it is the last one it ever runs) while its
/// decide ignores the phase and recruits forever. The phase census keeps
/// the uniform-shape fast paths alive whenever the colony is in lockstep.
class QuorumPack final : public AntPack {
 public:
  QuorumPack(std::uint32_t num_ants, std::uint32_t num_nests,
             std::uint64_t colony_seed, const AlgorithmParams& params,
             const env::FaultPlan* faults)
      : AntPack(num_ants, num_nests),
        // Mirror of factory_for's threshold derivation (colony.cpp).
        threshold_(std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(params.quorum_fraction * num_ants))),
        tandem_rate_(params.quorum_tandem_rate) {
    HH_EXPECTS(num_ants >= 1);
    HH_EXPECTS(tandem_rate_ >= 0.0 && tandem_rate_ <= 1.0);
    rng_.resize(num_ants, util::Rng(0));
    stage_.resize(num_ants);
    phase_.resize(num_ants);
    count_.resize(num_ants);
    round_targets_.reserve(num_ants);  // quiet rounds must not allocate
    if (faults != nullptr) install_fault_plan(*faults);
    const bool did_reset = reset(colony_seed);
    HH_ASSERT(did_reset);
  }

  [[nodiscard]] bool do_reset(std::uint64_t colony_seed) override {
    for (env::AntId a = 0; a < size(); ++a) {
      rng_[a].reseed(util::mix_seed(colony_seed, a, 0xA17));
    }
    std::fill(stage_.begin(), stage_.end(),
              static_cast<std::uint8_t>(Stage::kInit));
    std::fill(phase_.begin(), phase_.end(), Phase::kInit);
    phase_count_[static_cast<std::size_t>(Phase::kInit)] = size();
    phase_count_[static_cast<std::size_t>(Phase::kRecruit)] = 0;
    phase_count_[static_cast<std::size_t>(Phase::kAssess)] = 0;
    std::fill(count_.begin(), count_.end(), 0u);
    reset_commitments();
    finalized_count_ = 0;
    return true;
  }

  [[nodiscard]] RoundShape correct_shape(std::uint32_t /*round*/) const override {
    if (all_in(Phase::kInit)) return RoundShape::kAllSearch;
    // A quorum-met ant parks at kRecruit, so an all-recruit census still
    // fires the uniform path (transporters recruit like everyone else) and
    // an all-go census implies nobody has met quorum yet. Assess rounds
    // after the first quorum — and any sleep/crash phase drift — are mixed,
    // with the parked transporters forcing the recruit-capable entry point.
    if (all_in(Phase::kRecruit)) return RoundShape::kAllRecruit;
    if (all_in(Phase::kAssess)) return RoundShape::kAllGo;
    return phase_count_[static_cast<std::size_t>(Phase::kRecruit)] > 0
               ? RoundShape::kMaskedRecruit
               : RoundShape::kMaskedGo;
  }

  void fill_recruit_requests(std::uint32_t /*round*/,
                             std::span<env::RecruitRequest> requests) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(requests.size() == rng_.size());
    for (std::size_t a = 0; a < requests.size(); ++a) {
      requests[a] =
          env::RecruitRequest{static_cast<env::AntId>(a), decide_b(a), nest_[a]};
    }
  }

  [[nodiscard]] std::span<const env::NestId> fill_recruit_soa(
      std::uint32_t /*round*/, std::span<std::uint8_t> active) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(active.size() == rng_.size());
    round_targets_.assign(nest_.begin(), nest_.end());
    for (std::size_t a = 0; a < active.size(); ++a) {
      active[a] = decide_b(a) ? 1 : 0;
    }
    return round_targets_;
  }

  [[nodiscard]] std::span<const env::NestId> go_targets() const override {
    return nest_;
  }

  void decide_masked(std::uint32_t /*round*/, std::span<const std::uint8_t> act,
                     std::span<env::MaskedOp> op,
                     std::span<std::uint8_t> active,
                     std::span<env::NestId> targets) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;
      switch (phase_[a]) {
        case Phase::kInit:
          op[a] = env::MaskedOp::kSearch;
          break;
        case Phase::kRecruit:
          // Quorum-met transporters are parked here and decide_b answers
          // true for them without a draw (recruit every round, locked).
          op[a] = env::MaskedOp::kRecruit;
          active[a] = decide_b(a) ? 1 : 0;
          targets[a] = nest_[a];
          break;
        case Phase::kAssess:
          op[a] = env::MaskedOp::kGo;
          targets[a] = nest_[a];
          break;
      }
    }
  }

  // observe_all is the base forward onto this kernel (act all-ones).
  void observe_masked_acting(std::span<const std::uint8_t> act,
                             std::span<const env::Outcome> outcomes) override {
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;  // frozen: crashed, sleeping, or Byzantine
      // Quorum-met ants recruit forever but their return value is ignored
      // (commitment locked) and their phase stays parked at kRecruit.
      if (static_cast<Stage>(stage_[a]) == Stage::kQuorumMet) continue;
      if (static_cast<Stage>(stage_[a]) == Stage::kInit) {
        apply_init(a, outcomes[a].nest, outcomes[a].count,
                   outcomes[a].quality);
      } else if (phase_[a] == Phase::kRecruit) {
        apply_recruit(a, outcomes[a].nest);
        set_phase(a, Phase::kAssess);
      } else {
        apply_assess(a, outcomes[a].count);
        set_phase(a, Phase::kRecruit);
      }
    }
  }

  void observe_masked_quiet_acting(
      std::span<const std::uint8_t> act, const env::Environment& env,
      std::span<const env::MaskedOp> /*op*/,
      std::span<const env::NestId> targets) override {
    const std::span<const std::uint32_t> counts = env.counts();
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (!act[a]) continue;  // frozen: crashed, sleeping, or Byzantine
      if (static_cast<Stage>(stage_[a]) == Stage::kQuorumMet) continue;
      if (static_cast<Stage>(stage_[a]) == Stage::kInit) {
        const env::NestId found = env.location(static_cast<env::AntId>(a));
        apply_init(a, found, counts[found], env.qualities()[found - 1]);
      } else if (phase_[a] == Phase::kRecruit) {
        const std::int32_t recruiter =
            env.recruited_by_ant(static_cast<env::AntId>(a));
        if (recruiter != env::kNotRecruited) {
          apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
        }
        set_phase(a, Phase::kAssess);
      } else {
        apply_assess(a, counts[nest_[a]]);
        set_phase(a, Phase::kRecruit);
      }
    }
  }

  void observe_recruit_pairing(std::span<const env::NestId> targets,
                               const env::PairingScratch& pairing) override {
    HH_EXPECTS(all_in(Phase::kRecruit));
    HH_EXPECTS(targets.size() == rng_.size());
    for (std::size_t a = 0; a < targets.size(); ++a) {
      if (static_cast<Stage>(stage_[a]) == Stage::kQuorumMet) continue;
      const std::int32_t recruiter = pairing.recruited_by[a];
      if (recruiter != env::kNotRecruited) {
        apply_recruit(a, targets[static_cast<std::size_t>(recruiter)]);
      }
      set_phase(a, Phase::kAssess);
    }
  }

  void observe_go_counts(std::span<const std::uint32_t> counts,
                         std::span<const double> /*qualities*/) override {
    // Only reachable while no ant has met quorum (a quorum-met ant parks
    // its phase at kRecruit, blocking the all-assess census), so every
    // ant is kPassive or kPreQuorum.
    HH_EXPECTS(all_in(Phase::kAssess));
    for (std::size_t a = 0; a < rng_.size(); ++a) {
      apply_assess(a, counts[nest_[a]]);
      set_phase(a, Phase::kRecruit);
    }
  }

  [[nodiscard]] bool finalized(env::AntId a) const override {
    return static_cast<Stage>(stage_[a]) == Stage::kQuorumMet;
  }

  [[nodiscard]] bool any_finalized() const override {
    return finalized_count_ > 0;
  }

  [[nodiscard]] std::string_view name() const override {
    return algorithm_name(AlgorithmKind::kQuorum);
  }

 private:
  enum class Stage : std::uint8_t { kInit, kPassive, kPreQuorum, kQuorumMet };
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  /// The b of QuorumAnt::decide in a recruit-phase round.
  [[nodiscard]] bool decide_b(std::size_t a) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        return false;
      case Stage::kPreQuorum: {
        // Population-proportional tandem running, slowed by tandem_rate.
        const double p = tandem_rate_ * static_cast<double>(count_[a]) /
                         static_cast<double>(size());
        return rng_[a].bernoulli(p);
      }
      case Stage::kQuorumMet:
        return true;
      case Stage::kInit:
        break;
    }
    HH_ASSERT(false);  // correct_shape reports kAllSearch pre-init
    return false;
  }

  void apply_init(std::size_t a, env::NestId found, std::uint32_t count,
                  double quality) {
    adopt(a, found);
    count_[a] = count;
    stage_[a] = static_cast<std::uint8_t>(quality > 0.0 ? Stage::kPreQuorum
                                                        : Stage::kPassive);
    set_phase(a, Phase::kRecruit);
  }

  [[nodiscard]] bool all_in(Phase p) const {
    return phase_count_[static_cast<std::size_t>(p)] == size();
  }

  void set_phase(std::size_t a, Phase next) {
    --phase_count_[static_cast<std::size_t>(phase_[a])];
    ++phase_count_[static_cast<std::size_t>(next)];
    phase_[a] = next;
  }

  void apply_recruit(std::size_t a, env::NestId j) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        if (j != nest_[a]) {
          adopt(a, j);  // recruited: follow the tandem run
          stage_[a] = static_cast<std::uint8_t>(Stage::kPreQuorum);
        }
        break;
      case Stage::kPreQuorum:
        if (j != nest_[a]) adopt(a, j);  // still persuadable
        break;
      default:
        break;  // quorum met: commitment locked
    }
  }

  void apply_assess(std::size_t a, std::uint32_t count) {
    switch (static_cast<Stage>(stage_[a])) {
      case Stage::kPassive:
        count_[a] = count;
        break;
      case Stage::kPreQuorum:
        count_[a] = count;
        if (count_[a] >= threshold_) {
          stage_[a] = static_cast<std::uint8_t>(Stage::kQuorumMet);
          ++finalized_count_;
        }
        break;
      default:
        break;
    }
  }

  std::uint32_t threshold_;
  double tandem_rate_;
  std::uint32_t finalized_count_ = 0;

  std::vector<env::NestId> round_targets_;  // quiet-round nest snapshot
  std::vector<util::Rng> rng_;
  std::vector<std::uint8_t> stage_;
  std::vector<Phase> phase_;      // per ant: frozen while asleep/crashed
  std::uint32_t phase_count_[3] = {0, 0, 0};  // census over phase_
  std::vector<std::uint32_t> count_;
};

}  // namespace

AntPack::AntPack(std::uint32_t num_ants, std::uint32_t num_nests)
    : num_ants_(num_ants) {
  HH_EXPECTS(num_ants >= 1);
  act_.assign(num_ants, 1);  // everyone acts until a fault plan says not
  awake_.assign(num_ants, 1);  // all-awake until begin_round says not
  nest_.assign(num_ants, env::kHomeNest);
  census_.assign(num_nests + 1, 0);
  census_[env::kHomeNest] = num_ants;  // re-derived by reset_commitments
}

AntPack::~AntPack() = default;

void AntPack::reset_commitments() {
  std::fill(nest_.begin(), nest_.end(), env::kHomeNest);
  std::fill(census_.begin(), census_.end(), 0u);
  census_[env::kHomeNest] = correct_count();
}

void AntPack::committed_census(std::span<std::uint32_t> census) const {
  HH_EXPECTS(census.size() == census_.size());
  std::copy(census_.begin(), census_.end(), census.begin());
}

void AntPack::observe_all(std::span<const env::Outcome> outcomes) {
  HH_ASSERT(!has_faults_);  // uniform shapes are never reported faulted
  observe_masked_acting(act_, outcomes);
}

void AntPack::install_fault_plan(const env::FaultPlan& plan) {
  HH_EXPECTS(plan.type.size() == num_ants_);
  HH_EXPECTS(plan.crash_round.size() == num_ants_);
  correct_count_ = 0;
  byz_count_ = 0;
  fault_type_.resize(num_ants_);
  crash_round_.resize(num_ants_);
  byz_target_.assign(num_ants_, env::kHomeNest);
  byz_quality_.assign(num_ants_, kByzantineNoTargetQuality);
  byz_scouted_.assign(num_ants_, 0);
  for (env::AntId a = 0; a < num_ants_; ++a) {
    fault_type_[a] = static_cast<std::uint8_t>(plan.type[a]);
    crash_round_[a] = plan.crash_round[a];
    correct_count_ += plan.type[a] == env::FaultType::kNone ? 1u : 0u;
    byz_count_ += plan.type[a] == env::FaultType::kByzantine ? 1u : 0u;
  }
  byz_scouting_ = byz_count_;
  // A plan whose victim counts floored to zero is behaviorally fault-free:
  // keep the uniform fast paths.
  has_faults_ = correct_count_ != num_ants_;
}

void AntPack::begin_round(std::span<const std::uint8_t> awake) {
  HH_EXPECTS(awake.size() == num_ants_);
  std::copy(awake.begin(), awake.end(), awake_.begin());
  any_asleep_ =
      std::find(awake.begin(), awake.end(), std::uint8_t{0}) != awake.end();
  // An all-sleepers round leaves act_ zeroed with no phase advanced, so
  // the NEXT round can still be colony-uniform — and the uniform path
  // forwards act_ straight into observe_all without ever calling
  // fill_masked. Refill here, before round_shape dispatch, or a fully
  // awake round after a fully asleep one would skip every observe and
  // freeze the pack (diverging from the scalar engine).
  if (act_stale_) {
    std::fill(act_.begin(), act_.end(), std::uint8_t{1});
    act_stale_ = false;
  }
}

bool AntPack::reset(std::uint64_t colony_seed) {
  std::fill(awake_.begin(), awake_.end(), std::uint8_t{1});
  any_asleep_ = false;
  if (act_stale_) {
    std::fill(act_.begin(), act_.end(), std::uint8_t{1});
    act_stale_ = false;
  }
  if (!do_reset(colony_seed)) return false;
  if (has_faults_) {
    // Re-derive the Byzantine scout state; the installed plan (types,
    // crash rounds) persists — Simulation::reset reinstalls it when the
    // plan itself depends on the master seed.
    std::fill(byz_target_.begin(), byz_target_.end(), env::kHomeNest);
    std::fill(byz_quality_.begin(), byz_quality_.end(),
              kByzantineNoTargetQuality);
    std::fill(byz_scouted_.begin(), byz_scouted_.end(), std::uint8_t{0});
    byz_scouting_ = byz_count_;
  }
  return true;
}

RoundShape AntPack::round_shape(std::uint32_t round) const {
  const RoundShape shape = correct_shape(round);
  // Any faulty OR sleeping ant deviates from a uniform shape: crashed and
  // sleeping ants idle, Byzantine ants search through their scout rounds
  // and recruit after. A masked-recruit round whose recruiters all turn
  // out to be asleep is harmless: the empty request set draws nothing.
  if (!has_faults_ && !any_asleep_) return shape;
  const bool byz_recruiting = byz_count_ > byz_scouting_;
  const bool recruiters = shape == RoundShape::kAllRecruit ||
                          shape == RoundShape::kMaskedRecruit ||
                          byz_recruiting;
  return recruiters ? RoundShape::kMaskedRecruit : RoundShape::kMaskedGo;
}

void AntPack::overlay_faults(std::uint32_t round, std::span<env::MaskedOp> op,
                             std::span<std::uint8_t> active,
                             std::span<env::NestId> targets) {
  for (env::AntId a = 0; a < num_ants_; ++a) {
    switch (static_cast<env::FaultType>(fault_type_[a])) {
      case env::FaultType::kNone:
        act_[a] = 1;
        break;
      case env::FaultType::kCrash:
        // CrashProneAnt: idles (and stops observing) from its crash round.
        if (round < crash_round_[a]) {
          act_[a] = 1;
        } else {
          act_[a] = 0;
          op[a] = env::MaskedOp::kIdle;
        }
        break;
      case env::FaultType::kByzantine:
        // ByzantineAnt: scout for the worst nest, then recruit toward it
        // every round, forever, ignoring all feedback.
        act_[a] = 0;
        if (byz_scouted_[a] < kByzantineScoutRounds) {
          op[a] = env::MaskedOp::kSearch;
        } else {
          op[a] = env::MaskedOp::kRecruit;
          active[a] = 1;
          targets[a] = byz_target_[a];
        }
        break;
    }
  }
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::fill_masked(std::uint32_t round, std::span<env::MaskedOp> op,
                          std::span<std::uint8_t> active,
                          std::span<env::NestId> targets) {
  HH_EXPECTS(op.size() == num_ants_);
  HH_EXPECTS(active.size() == num_ants_);
  HH_EXPECTS(targets.size() == num_ants_);
  masked_round_ = round;
  if (has_faults_) {
    overlay_faults(round, op, active, targets);
  } else if (act_stale_) {
    std::fill(act_.begin(), act_.end(), std::uint8_t{1});
    act_stale_ = false;
  }
  if (any_asleep_) {
    // Sleep overlays AFTER faults: a sleeping ant idles no matter what its
    // fault lane planned (the scalar loop consults the scheduler before
    // the fault wrapper's decide). Stale active/target rows are unread
    // under kIdle.
    for (env::AntId a = 0; a < num_ants_; ++a) {
      if (awake_[a]) continue;
      act_[a] = 0;
      op[a] = env::MaskedOp::kIdle;
    }
    act_stale_ = !has_faults_;
  }
  decide_masked(round, act_, op, active, targets);
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::observe_masked(std::span<const env::Outcome> outcomes) {
  // Byzantine search outcomes exist only while some scout window is still
  // open — skip the O(n) scan for the rest of the run (mirrors the quiet
  // form). An adversary that slept (kIdle outcome) made no search, so it
  // neither learns nor burns a scout round.
  if (byz_scouting_ > 0) {
    for (env::AntId a = 0; a < num_ants_; ++a) {
      if (!byzantine(a) || outcomes[a].kind != env::ActionKind::kSearch) {
        continue;
      }
      scout_round_done(a);
      // Track the worst nest seen; ties broken toward the first found so
      // the adversary concentrates its pull on a single bad nest.
      if (outcomes[a].quality < byz_quality_[a]) {
        byz_quality_[a] = outcomes[a].quality;
        byz_target_[a] = outcomes[a].nest;
      }
    }
  }
  observe_masked_acting(act_, outcomes);
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::observe_masked_quiet(const env::Environment& env,
                                   std::span<const env::MaskedOp> op,
                                   std::span<const env::NestId> targets) {
  if (byz_scouting_ > 0) {
    for (env::AntId a = 0; a < num_ants_; ++a) {
      // op is this round's decide output: a scouting adversary holds
      // kSearch, a sleeping one was overlaid to kIdle (no search, no
      // learning, scout window stretched — like the scalar ant, whose
      // rounds_scouted_ only advances on a search outcome).
      if (!byzantine(a) || op[a] != env::MaskedOp::kSearch) continue;
      scout_round_done(a);
      const env::NestId found = env.location(a);
      const double q = env.qualities()[found - 1];  // exact observation
      if (q < byz_quality_[a]) {
        byz_quality_[a] = q;
        byz_target_[a] = found;
      }
    }
  }
  observe_masked_quiet_acting(act_, env, op, targets);
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
bool AntPack::observe_masked_quiet_then_decide(std::uint32_t round,
                                               const env::Environment& env,
                                               std::span<env::MaskedOp> op,
                                               std::span<std::uint8_t> active,
                                               std::span<env::NestId> targets) {
  // The gates mirror fill_masked's special cases: any of them live means
  // the next round needs the overlay machinery (or a different shape), so
  // the fused pass is not applicable and the round tail stays split. The
  // hook contract lets this short-circuit safely: a false return had no
  // side effects.
  if (!has_faults_ && !any_asleep_ && !act_stale_ &&
      correct_shape(round + 1) == RoundShape::kMaskedRecruit &&
      fused_observe_decide(env, op, active, targets)) {
    masked_round_ = round + 1;
    return true;
  }
  observe_masked_quiet(env, op, targets);
  return false;
}

std::uint32_t AntPack::agreement_census(ConvergenceMode mode,
                                        const env::Environment& /*env*/,
                                        std::span<std::uint32_t> census) const {
  // Packs default to the kCommitment notion; packs whose algorithms use
  // finalized/physical agreement override (OptimalPack).
  HH_EXPECTS(mode == ConvergenceMode::kCommitment);
  committed_census(census);
  return correct_count();
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::decide_masked(std::uint32_t /*round*/,
                            std::span<const std::uint8_t> /*act*/,
                            std::span<env::MaskedOp> /*op*/,
                            std::span<std::uint8_t> /*active*/,
                            std::span<env::NestId> /*targets*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::observe_masked_acting(std::span<const std::uint8_t> /*act*/,
                                    std::span<const env::Outcome> /*outcomes*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
void AntPack::observe_masked_quiet_acting(
    std::span<const std::uint8_t> /*act*/, const env::Environment& /*env*/,
    std::span<const env::MaskedOp> /*op*/,
    std::span<const env::NestId> /*targets*/) {
  HH_ASSERT(false);  // only called when round_shape() says kMasked*
}

void AntPack::fill_recruit_requests(std::uint32_t /*round*/,
                                    std::span<env::RecruitRequest> /*requests*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
}

std::span<const env::NestId> AntPack::go_targets() const {
  HH_ASSERT(false);  // only called when round_shape() says kAllGo
  return {};
}

std::span<const env::NestId> AntPack::fill_recruit_soa(
    std::uint32_t /*round*/, std::span<std::uint8_t> /*active*/) {
  HH_ASSERT(false);  // only called when round_shape() says kAllRecruit
  return {};
}

void AntPack::observe_recruit_pairing(
    std::span<const env::NestId> /*targets*/,
    const env::PairingScratch& /*pairing*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllRecruit rounds
}

void AntPack::observe_go_counts(std::span<const std::uint32_t> /*counts*/,
                                std::span<const double> /*qualities*/) {
  HH_ASSERT(false);  // only called for packs reporting kAllGo rounds
}

bool AntPack::finalized(env::AntId /*a*/) const { return false; }

bool AntPack::any_finalized() const { return false; }

// lint: no-alloc (steady-state round; runtime-pinned by test_hotpath)
std::uint32_t AntPack::count_finalized(std::span<const env::AntId> ants) const {
  std::uint32_t c = 0;
  for (const env::AntId a : ants) c += finalized(a) ? 1u : 0u;
  return c;
}

bool packed_available(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
    case AlgorithmKind::kQuorum:
    case AlgorithmKind::kOptimal:
    case AlgorithmKind::kOptimalSettle:
      return true;
  }
  return false;
}

Capabilities packed_capabilities(AlgorithmKind kind) {
  // One declaration covers every built-in: they all derive from the
  // AntPack base, whose fault lanes, sleep overlay, loud/quiet observe
  // kernels, and agreement censuses supply the whole matrix.
  return packed_available(kind) ? Capabilities::standard_pack()
                                : Capabilities{};
}

std::unique_ptr<AntPack> make_ant_pack(AlgorithmKind kind,
                                       std::uint32_t num_ants,
                                       std::uint32_t num_nests,
                                       std::uint64_t colony_seed,
                                       const AlgorithmParams& params,
                                       const env::FaultPlan* faults) {
  switch (kind) {
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
    case AlgorithmKind::kUniformRecruit:
      return std::make_unique<SimpleFamilyPack>(kind, num_ants, num_nests,
                                                colony_seed, params, faults);
    case AlgorithmKind::kQuorum:
      return std::make_unique<QuorumPack>(num_ants, num_nests, colony_seed,
                                          params, faults);
    case AlgorithmKind::kOptimal:
      return make_optimal_pack(num_ants, num_nests, colony_seed,
                               /*settle=*/false, faults);
    case AlgorithmKind::kOptimalSettle:
      return make_optimal_pack(num_ants, num_nests, colony_seed,
                               /*settle=*/true, faults);
  }
  return nullptr;
}

}  // namespace hh::core
