// Section 6 "Improved running time" variant of Algorithm 3.
//
// The paper observes that Algorithm 3 needs O(k log n) rounds because each
// nest starts with ~n/k ants, so ants recruit with probability only ~1/k;
// it sketches the fix: "If ants keep track of the round number, they can
// map this to an estimate k~(r) of how many competing nests remain,
// allowing them to recruit at rate O(c(i,r)/n * k~(r))", conjecturing
// O(log^c n) convergence.
//
// Instantiation. Ants know n but not k; the search round spreads the
// colony ~evenly, so an ant's first observed count c0 yields a one-shot
// estimate k^ = n / c0 of the *initial* competition. The remaining
// competition is then tracked by the round-indexed geometric decay the
// paper suggests (once rates are Theta(1), eliminating a nest takes
// Theta(log n) rounds, so survivors halve on that schedule):
//
//     k~(r) = max(1, k^ * 2^(-floor(r / tau))),   tau = 3 * log2(n)
//     P[recruit] = max(count/n, min(1/2, (count / n) * k~(r) / 8)).
//
// (The outer max keeps the variant at least as aggressive as Algorithm 3
// itself — for small k the base rate count/n is already Theta(1) and the
// conservatively-capped boost would otherwise slow the endgame down.)
//
// Why the /8 and the schedule are both needed: recruitment probabilities
// must stay *proportional* to population across competing nests (the
// positive feedback that drives consensus). The cap at 1/2 destroys
// proportionality for every nest it binds on (equal rates = neutral
// Polya regime, no drift). With the /8 scaling no nest is capped while
// k~ is within 4x of the true survivor count, and whenever eliminations
// outpace the schedule the decay catches up within tau rounds, bounding
// any neutral stall. Rates are Theta(1) throughout — Theta(k) higher than
// Algorithm 3's — giving O(log n) per elimination generation and
// O(log k * log n) total, matching the paper's polylog conjecture
// (experiment E10 measures this against Algorithm 3's linear-in-k time).
#ifndef HH_CORE_RATE_BOOSTED_ANT_HPP
#define HH_CORE_RATE_BOOSTED_ANT_HPP

#include "core/simple_ant.hpp"

namespace hh::core {

/// Algorithm 3 with the boosted recruitment rate sketched in Section 6.
class RateBoostedAnt final : public SimpleAnt {
 public:
  RateBoostedAnt(std::uint32_t num_ants, util::Rng rng);

  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] std::string_view name() const override { return "rate-boosted"; }

  /// The ant's current competition estimate k~(r); 0 before the first
  /// search lands.
  [[nodiscard]] double k_estimate() const;

 protected:
  [[nodiscard]] double recruit_probability() const override;

 private:
  double initial_k_estimate_ = 0.0;  ///< k^ from the search round
  std::uint32_t halving_period_;     ///< tau
};

}  // namespace hh::core

#endif  // HH_CORE_RATE_BOOSTED_ANT_HPP
