// Colony construction: per-ant RNG streams, algorithm selection, and the
// Section 6 fault wrappers (crashed and Byzantine ants).
#ifndef HH_CORE_COLONY_HPP
#define HH_CORE_COLONY_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ant.hpp"
#include "env/faults.hpp"
#include "util/rng.hpp"

namespace hh::core {

/// Which house-hunting algorithm a colony runs.
enum class AlgorithmKind : std::uint8_t {
  kOptimal,        ///< Algorithm 2 (Section 4)
  kOptimalSettle,  ///< Algorithm 2 + the Section 4.2 termination fix
  kSimple,         ///< Algorithm 3 (Section 5)
  kRateBoosted,    ///< Section 6 improved-running-time variant
  kQualityAware,   ///< Section 6 non-binary-quality variant
  kUniformRecruit, ///< no-feedback baseline (negative control)
  kQuorum,         ///< biology-inspired quorum-threshold baseline
};

/// Human-readable algorithm name.
[[nodiscard]] std::string_view algorithm_name(AlgorithmKind kind);

/// Tunables for the algorithms that take parameters.
struct AlgorithmParams {
  /// QuorumAnt threshold = fraction * n. Must exceed 1/k (the model's
  /// round-1 search fills every nest to ~n/k) or every good nest locks
  /// immediately and the colony splits.
  double quorum_fraction = 0.35;
  double quorum_tandem_rate = 0.5;    ///< QuorumAnt pre-quorum rate scale
  double uniform_recruit_prob = 0.5;  ///< UniformRecruitAnt constant rate
  /// Section 6 extension ("assuming ants know only an approximation of
  /// n"): each ant of the Algorithm-3 family receives a private belief
  /// n~ drawn uniformly from [n(1-e), n(1+e)] instead of the true n.
  /// 0 = exact knowledge (the paper's base model).
  double n_estimate_error = 0.0;
  /// IdleSearchAnt: probability that a passive ("idle") ant spends a
  /// recruitment round re-scouting instead of waiting at the home nest
  /// (the Afek–Gordon–Sulamy idle-ants-as-reserve rule; see
  /// core/idle_search_ant.hpp).
  double idle_search_prob = 0.25;
};

/// A set of ants plus the fault assignment they were built under.
struct Colony {
  std::vector<std::unique_ptr<Ant>> ants;
  env::FaultPlan faults;
  std::string algorithm;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(ants.size());
  }
  /// True iff ant a is correct (not crash-scheduled, not Byzantine).
  [[nodiscard]] bool correct(env::AntId a) const { return faults.correct(a); }
};

/// Builds one (correct) ant; used to assemble colonies. The Rng is the
/// ant's private stream.
using AntFactory =
    std::function<std::unique_ptr<Ant>(env::AntId, util::Rng)>;

/// Section 6 extension: an ant's private belief of the colony size, drawn
/// uniformly from [n(1-e), n(1+e)] off the ant's own stream. e = 0 returns
/// the exact n (the base model) without touching the stream. Shared by
/// the Algorithm-3 family and registered variants so believed-n draws
/// stay identical across per-object and packed engines.
[[nodiscard]] std::uint32_t believed_colony_size(std::uint32_t num_ants,
                                                 double error, util::Rng& rng);

/// Assemble a colony of `num_ants` ants from `factory`, replacing faulty
/// positions per `plan`: crash victims are wrapped in CrashProneAnt and
/// Byzantine positions are replaced by ByzantineAnt. Per-ant RNG streams
/// are derived deterministically from `seed`.
[[nodiscard]] Colony make_colony(std::uint32_t num_ants, const AntFactory& factory,
                                 env::FaultPlan plan, std::uint64_t seed,
                                 std::string algorithm);

/// Assemble a colony running a named algorithm with no faults.
[[nodiscard]] Colony make_colony(std::uint32_t num_ants, AlgorithmKind kind,
                                 std::uint64_t seed,
                                 const AlgorithmParams& params = {});

/// Assemble a colony running a named algorithm under a fault plan.
[[nodiscard]] Colony make_colony(std::uint32_t num_ants, AlgorithmKind kind,
                                 env::FaultPlan plan, std::uint64_t seed,
                                 const AlgorithmParams& params = {});

/// Crash-fault wrapper (Section 6): delegates to the wrapped ant until the
/// crash round, then idles in place forever (the strongest interpretation
/// of a crash in a model where every ant must act each round).
class CrashProneAnt final : public Ant {
 public:
  CrashProneAnt(std::unique_ptr<Ant> inner, std::uint32_t crash_round);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override {
    return inner_->committed_nest();
  }
  [[nodiscard]] bool finalized() const override { return inner_->finalized(); }
  [[nodiscard]] std::string_view name() const override { return "crash-prone"; }

  [[nodiscard]] bool crashed() const { return crashed_; }

 private:
  std::unique_ptr<Ant> inner_;
  std::uint32_t crash_round_;
  bool crashed_ = false;
};

/// How many rounds a Byzantine ant scouts before it starts recruiting —
/// and the above-any-real-quality sentinel its worst-nest tracker starts
/// from. Shared with the packed engine's fault lanes (core/ant_pack.cpp),
/// which must mirror the adversary exactly.
inline constexpr std::uint32_t kByzantineScoutRounds = 8;
inline constexpr double kByzantineNoTargetQuality = 2.0;

/// Byzantine ant (Section 6 "malicious faults"): spends a few rounds
/// searching for the worst nest it can find, then actively recruits the
/// colony toward it every round, forever, ignoring all feedback.
class ByzantineAnt final : public Ant {
 public:
  ByzantineAnt(std::uint32_t num_ants, util::Rng rng,
               std::uint32_t scout_rounds = kByzantineScoutRounds);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override { return target_; }
  [[nodiscard]] std::string_view name() const override { return "byzantine"; }

 private:
  util::Rng rng_;
  std::uint32_t scout_rounds_;
  std::uint32_t rounds_scouted_ = 0;
  env::NestId target_ = env::kHomeNest;  ///< worst nest found so far
  double target_quality_ = kByzantineNoTargetQuality;
};

}  // namespace hh::core

#endif  // HH_CORE_COLONY_HPP
