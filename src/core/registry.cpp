#include "core/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace hh::core {

const std::vector<AlgorithmKind>& all_algorithm_kinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kOptimal,        AlgorithmKind::kOptimalSettle,
      AlgorithmKind::kSimple,         AlgorithmKind::kRateBoosted,
      AlgorithmKind::kQualityAware,   AlgorithmKind::kUniformRecruit,
      AlgorithmKind::kQuorum,
  };
  return kinds;
}

std::optional<AlgorithmKind> algorithm_from_name(std::string_view name) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    if (algorithm_name(kind) == name) return kind;
  }
  return std::nullopt;
}

AlgorithmRegistry::AlgorithmRegistry() {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    factories_.emplace_back(
        std::string(algorithm_name(kind)),
        [kind](const SimulationConfig& config, const AlgorithmParams& params) {
          return std::make_unique<Simulation>(config, kind, params);
        });
  }
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::add(std::string name, SimulationFactory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, fn] : factories_) {
    if (existing == name) {
      fn = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool AlgorithmRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

std::unique_ptr<Simulation> AlgorithmRegistry::make(
    std::string_view name, const SimulationConfig& config,
    const AlgorithmParams& params) const {
  SimulationFactory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, fn] : factories_) {
      if (existing == name) {
        factory = fn;
        break;
      }
    }
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("unknown algorithm '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  // Invoke outside the lock: factories run whole colony constructions.
  return factory(config, params);
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(factories_.size());
    for (const auto& [name, fn] : factories_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Simulation> make_simulation(std::string_view algorithm,
                                            const SimulationConfig& config,
                                            const AlgorithmParams& params) {
  return AlgorithmRegistry::instance().make(algorithm, config, params);
}

}  // namespace hh::core
