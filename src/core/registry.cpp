#include "core/registry.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/ant_pack.hpp"
#include "core/idle_search_ant.hpp"
#include "core/walker_ant.hpp"

namespace hh::core {

// --- parameter schema -------------------------------------------------------

namespace {

constexpr std::array<ParamInfo, 5> kParamTable{{
    {"quorum_fraction", &AlgorithmParams::quorum_fraction, 0.0, 1.0,
     "QuorumAnt lock threshold as a fraction of n"},
    {"quorum_tandem_rate", &AlgorithmParams::quorum_tandem_rate, 0.0, 1.0,
     "QuorumAnt pre-quorum recruitment rate scale"},
    {"uniform_recruit_prob", &AlgorithmParams::uniform_recruit_prob, 0.0, 1.0,
     "UniformRecruitAnt constant recruitment probability"},
    {"n_estimate_error", &AlgorithmParams::n_estimate_error, 0.0, 1.0,
     "half-width of each ant's private colony-size belief (Section 6)"},
    {"idle_search_prob", &AlgorithmParams::idle_search_prob, 0.0, 1.0,
     "idle-search: P[a passive ant re-scouts instead of waiting at home]"},
}};

}  // namespace

std::span<const ParamInfo> algorithm_param_table() { return kParamTable; }

const ParamInfo* find_param(std::string_view key) {
  for (const ParamInfo& info : kParamTable) {
    if (info.key == key) return &info;
  }
  return nullptr;
}

// --- built-in specs ---------------------------------------------------------

const std::vector<AlgorithmKind>& all_algorithm_kinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kOptimal,        AlgorithmKind::kOptimalSettle,
      AlgorithmKind::kSimple,         AlgorithmKind::kRateBoosted,
      AlgorithmKind::kQualityAware,   AlgorithmKind::kUniformRecruit,
      AlgorithmKind::kQuorum,
  };
  return kinds;
}

std::optional<AlgorithmKind> algorithm_from_name(std::string_view name) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    if (algorithm_name(kind) == name) return kind;
  }
  return std::nullopt;
}

namespace {

std::string builtin_summary(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOptimal:
      return "Algorithm 2: O(log n) tournament of nest pairs (Section 4)";
    case AlgorithmKind::kOptimalSettle:
      return "Algorithm 2 + the Section 4.2 settle/termination extension";
    case AlgorithmKind::kSimple:
      return "Algorithm 3: population-proportional feedback, O(k log n)";
    case AlgorithmKind::kRateBoosted:
      return "Section 6 boosted-rate variant (removes the Theta(k) factor)";
    case AlgorithmKind::kQualityAware:
      return "Section 6 non-binary-quality variant";
    case AlgorithmKind::kUniformRecruit:
      return "no-feedback baseline (negative control)";
    case AlgorithmKind::kQuorum:
      return "biology-inspired quorum-threshold baseline";
  }
  return {};
}

std::vector<std::string> builtin_param_schema(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOptimal:
    case AlgorithmKind::kOptimalSettle:
      return {};
    case AlgorithmKind::kSimple:
    case AlgorithmKind::kRateBoosted:
    case AlgorithmKind::kQualityAware:
      return {"n_estimate_error"};
    case AlgorithmKind::kUniformRecruit:
      return {"uniform_recruit_prob"};
    case AlgorithmKind::kQuorum:
      return {"quorum_fraction", "quorum_tandem_rate"};
  }
  return {};
}

}  // namespace

AlgorithmSpec builtin_algorithm_spec(AlgorithmKind kind) {
  AlgorithmSpec spec;
  spec.name = std::string(algorithm_name(kind));
  spec.summary = builtin_summary(kind);
  spec.mode = default_mode(kind);
  spec.params = builtin_param_schema(kind);
  spec.colony = [kind](const SimulationConfig& config, env::FaultPlan plan,
                       std::uint64_t colony_seed,
                       const AlgorithmParams& params) {
    return make_colony(config.num_ants, kind, std::move(plan), colony_seed,
                       params);
  };
  if (packed_available(kind)) {
    spec.capabilities = packed_capabilities(kind);
    spec.pack = [kind](const SimulationConfig& config,
                       std::uint64_t colony_seed, const AlgorithmParams& params,
                       const env::FaultPlan* faults) {
      return make_ant_pack(kind, config.num_ants,
                           static_cast<std::uint32_t>(config.qualities.size()),
                           colony_seed, params, faults);
    };
  }
  return spec;
}

// --- registry ---------------------------------------------------------------

AlgorithmRegistry::AlgorithmRegistry() {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    add(builtin_algorithm_spec(kind));
  }
  // PAPERS.md variants registered through the public spec API — the same
  // door third-party algorithms use (nothing below this layer knows them).
  register_idle_search_algorithm(*this);
  register_lattice_walker_algorithm(*this);
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::add(AlgorithmSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("algorithm spec has an empty name");
  }
  if (!spec.colony && !spec.simulation) {
    throw std::invalid_argument("algorithm spec '" + spec.name +
                                "' carries neither a colony factory nor a "
                                "simulation factory");
  }
  for (const std::string& key : spec.params) {
    if (find_param(key) == nullptr) {
      throw std::invalid_argument("algorithm spec '" + spec.name +
                                  "' declares unknown parameter '" + key +
                                  "'");
    }
  }
  auto shared = std::make_shared<const AlgorithmSpec>(std::move(spec));
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& existing : specs_) {
    if (existing->name == shared->name) {
      existing = std::move(shared);  // replacement: last registration wins
      return;
    }
  }
  specs_.push_back(std::move(shared));
}

void AlgorithmRegistry::add(std::string name, SimulationFactory factory) {
  AlgorithmSpec spec;
  spec.name = std::move(name);
  spec.simulation = std::move(factory);
  add(std::move(spec));
}

bool AlgorithmRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::shared_ptr<const AlgorithmSpec> AlgorithmRegistry::find(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& spec : specs_) {
    if (spec->name == name) return spec;
  }
  return nullptr;
}

std::unique_ptr<Simulation> AlgorithmRegistry::make(
    std::string_view name, const SimulationConfig& config,
    const AlgorithmParams& params) const {
  const std::shared_ptr<const AlgorithmSpec> spec = find(name);
  if (spec == nullptr) {
    throw std::out_of_range("unknown algorithm '" + std::string(name) +
                            "' (registered: " + known_algorithms() + ")");
  }
  // Build outside the lock: factories run whole colony constructions.
  if (spec->simulation) return spec->simulation(config, params);
  return std::make_unique<Simulation>(config, *spec, params);
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(specs_.size());
    for (const auto& spec : specs_) out.push_back(spec->name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string known_algorithms() {
  std::string known;
  for (const std::string& n : AlgorithmRegistry::instance().names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return known;
}

std::string known_params() {
  std::string known;
  for (const ParamInfo& info : kParamTable) {
    if (!known.empty()) known += ", ";
    known += std::string(info.key);
  }
  return known;
}

std::unique_ptr<Simulation> make_simulation(std::string_view algorithm,
                                            const SimulationConfig& config,
                                            const AlgorithmParams& params) {
  return AlgorithmRegistry::instance().make(algorithm, config, params);
}

}  // namespace hh::core
