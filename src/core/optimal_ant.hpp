// Algorithm 2 — the asymptotically optimal O(log n) house-hunting
// algorithm (paper Section 4).
//
// Each ant is in one of four states: search, active, passive, final.
// Round 1 is the global search(); afterwards active and passive ants run
// carefully interleaved 4-round blocks (labelled R1..R4 in the paper) so
// that ants of competing nests and ants of dropped-out nests never meet at
// the home nest until a single winner remains:
//
//              R1               R2               R3             R4
//   active  recruit(1,nest)  go(nest_t)       [case 1] go     recruit(0,nest)
//                                             [case 2] recruit(0)  go(nest)
//                                             [case 3] go     go(nest)
//   passive go(nest)         recruit(0,nest)  go(nest)        go(nest)
//   final   recruit(1,nest) every round
//
// Competing nests whose population decreased drop out (their ants turn
// passive); when an active ant observes home-count == nest-count at R4 all
// remaining actives are at one nest and everyone switches to final.
//
// Faithfulness notes (see DESIGN.md §2):
//   * A passive ant recruited at R2 still finishes its block with two
//     go(new nest) calls before starting the 1-round final loop (the
//     literal reading of pseudocode lines 15-19).
//   * A final ant assigns the recruit() return value to `nest` (line 21),
//     so a poached final ant follows the crowd.
//   * With `settle` enabled (the termination fix sketched in Section 4.2),
//     a final ant that observes c(0,r) == n for two consecutive rounds —
//     only possible once every ant is final — switches to a settled state
//     and go(nest)s forever, satisfying the literal HouseHunting predicate.
#ifndef HH_CORE_OPTIMAL_ANT_HPP
#define HH_CORE_OPTIMAL_ANT_HPP

#include <cstdint>

#include "core/ant.hpp"

namespace hh::core {

/// One ant of Algorithm 2.
class OptimalAnt final : public Ant {
 public:
  /// States of the algorithm (paper pseudocode line 1), plus the optional
  /// settled terminal state of the Section 4.2 termination fix.
  enum class State : std::uint8_t {
    kSearch,
    kActive,
    kPassive,
    kFinal,
    kSettled
  };

  /// `num_ants` is the colony size n (ants know n, not k).
  /// `settle` enables the termination extension (off = literal pseudocode).
  explicit OptimalAnt(std::uint32_t num_ants, bool settle = false);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override { return nest_; }
  [[nodiscard]] bool finalized() const override {
    return state_ == State::kFinal || state_ == State::kSettled;
  }
  [[nodiscard]] std::string_view name() const override { return "optimal"; }

  /// Current FSM state (exposed for tests and metrics).
  [[nodiscard]] State state() const { return state_; }
  /// Last population count the ant holds for its nest.
  [[nodiscard]] std::uint32_t count() const { return count_; }

 private:
  // Which of the three active-case branches the R2 observation selected.
  enum class ActiveCase : std::uint8_t { kUndecided, kCase1, kCase2, kCase3 };

  [[nodiscard]] env::Action decide_active() const;
  [[nodiscard]] env::Action decide_passive() const;
  void observe_active(const env::Outcome& outcome);
  void observe_passive(const env::Outcome& outcome);

  std::uint32_t num_ants_;
  bool settle_enabled_;

  State state_ = State::kSearch;
  std::uint8_t step_ = 0;  ///< position within the current 4-round block
  env::NestId nest_ = env::kHomeNest;  ///< committed nest
  std::uint32_t count_ = 0;            ///< last accepted population count
  double quality_ = 0.0;               ///< quality from the initial search

  env::NestId nest_t_ = env::kHomeNest;  ///< R1 recruit return (nest_t)
  std::uint32_t count_t_ = 0;            ///< R2 count (count_t)
  ActiveCase case_ = ActiveCase::kUndecided;
  bool pending_passive_ = false;  ///< active ant dropping out after block
  bool pending_final_ = false;  ///< passive ant recruited, final after block
  std::uint32_t full_house_streak_ = 0;  ///< consecutive c(0,r)==n (settle)
};

}  // namespace hh::core

#endif  // HH_CORE_OPTIMAL_ANT_HPP
