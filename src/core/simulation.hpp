// The simulation driver: wires a Colony to an Environment and runs
// synchronous rounds until the colony converges (per ConvergenceDetector)
// or a round cap is hit. Supports the Section 6 extensions — noisy
// observation, crash/Byzantine faults, partial synchrony, alternative
// pairing models — each switched on through SimulationConfig.
#ifndef HH_CORE_SIMULATION_HPP
#define HH_CORE_SIMULATION_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/colony.hpp"
#include "core/convergence.hpp"
#include "env/environment.hpp"
#include "env/faults.hpp"
#include "env/lattice.hpp"
#include "env/observation.hpp"
#include "env/pairing.hpp"
#include "env/scheduler.hpp"

namespace hh::core {

class AntPack;
struct AlgorithmSpec;  // core/registry.hpp

/// Which colony engine executes the ants.
///
/// Both engines produce BIT-IDENTICAL RunResults for the same config and
/// seed (tests/test_ant_pack.cpp); they differ only in speed and
/// generality:
///   * kScalar — the per-object reference path: one polymorphic Ant per
///     ant, virtual decide()/observe() per round. Handles every extension
///     (faults, partial synchrony, custom colonies) and validates model
///     rules when enforce_model is set.
///   * kPacked — the struct-of-arrays fast path (core::AntPack): the whole
///     colony as parallel state arrays, one non-virtual pass per round,
///     zero allocations in the round loop (unless record_trajectories
///     snapshots are requested). Covers every built-in algorithm —
///     optimal's per-ant phase machine included — every crash/Byzantine
///     fault plan (pack-level fault lanes), every convergence mode, noisy
///     observation, and partial synchrony (the driver pre-draws each
///     round's awake mask and the pack idles sleepers through its per-ant
///     phase lanes); caller-built colonies are the remaining scalar-only
///     case. Skips model validation (the packed FSMs are trusted — the
///     reference path exists to validate semantics).
///   * kAuto — kPacked whenever eligible, else kScalar. The default:
///     large sweeps get the fast path, and any fallback is LOUD — the
///     engine that ran and the reason land on RunResult::engine /
///     engine_fallback.
enum class EngineKind : std::uint8_t { kAuto, kScalar, kPacked };

/// Stable engine name for reports/tables.
[[nodiscard]] std::string_view engine_name(EngineKind kind);

/// Everything needed to reproduce one execution (copyable; a simulation is
/// a deterministic function of this struct plus the algorithm choice).
struct SimulationConfig {
  /// Colony size n (>= 1).
  std::uint32_t num_ants = 0;
  /// qualities[i] is candidate nest i+1's quality; size() = k >= 1.
  std::vector<double> qualities;
  /// Master seed; environment, scheduler, fault plan, and per-ant streams
  /// are derived from it.
  std::uint64_t seed = 1;
  /// Round cap; 0 = automatic (generous multiple of the theoretical bound).
  std::uint32_t max_rounds = 0;
  /// Extra consecutive rounds the agreement must hold before convergence
  /// is declared (the HouseHunting predicate is "for all r >= T").
  std::uint32_t stability_rounds = 0;
  /// Fraction of correct ants allowed to disagree (0 = strict unanimity).
  /// Use a positive value under Byzantine faults: persistent adversaries
  /// keep a small rotating pool of correct ants kidnapped at any instant.
  double convergence_tolerance = 0.0;
  /// Validate every call against the model rules (throws ModelViolation).
  bool enforce_model = true;
  /// Record per-round trajectories (population counts, commitment census,
  /// round stats). Costs memory; off for large sweeps.
  bool record_trajectories = false;
  /// Section 6 extensions.
  double skip_probability = 0.0;  ///< partial synchrony: P[ant misses round]
  env::NoiseConfig noise;         ///< noisy perception
  env::FaultConfig faults;        ///< crash / Byzantine ants
  env::PairingKind pairing = env::PairingKind::kPermutation;
  /// Colony engine selection (see EngineKind). kAuto picks the packed
  /// fast path when the algorithm has one and the config is eligible;
  /// kPacked demands it (throws std::invalid_argument otherwise); kScalar
  /// forces the per-object reference path.
  EngineKind engine = EngineKind::kAuto;
  /// Which world the colony runs in (env/backend.hpp). The default
  /// home-nest world is the paper's model and serializes exactly as
  /// before the backend seam existed; any other backend is part of the
  /// scenario's identity (new fingerprint vocabulary — DESIGN.md §9).
  /// Algorithms gate on it through Capabilities::backends: a mismatch is
  /// a hard std::invalid_argument on BOTH engines, never a silent
  /// fallback. Faults and noise are home-nest extensions; combining them
  /// with another backend also throws.
  env::BackendKind env_backend = env::BackendKind::kHomeNest;
  /// Lattice-world geometry and motility lanes (read only when
  /// env_backend == kLattice). Lattice scenarios must declare exactly one
  /// pseudo-nest quality (`qualities == {q}`, q > 0): the target site
  /// doubles as nest 1 for convergence and winner bookkeeping.
  env::LatticeConfig lattice;

  /// Convenience: k good nests of quality 1 except `bad` nests of quality 0
  /// placed at the end.
  [[nodiscard]] static std::vector<double> binary_qualities(std::uint32_t k,
                                                            std::uint32_t bad);
};

/// Per-round recordings (only when record_trajectories is set).
struct Trajectories {
  /// counts[r][i] = physical population c(i, r+1), i in [0, k].
  std::vector<std::vector<std::uint32_t>> counts;
  /// committed[r][i] = number of correct ants committed to nest i.
  std::vector<std::vector<std::uint32_t>> committed;
  /// Environment round statistics per round.
  std::vector<env::RoundStats> round_stats;
  /// Successful recruitments per round split by the recruiter's state:
  /// tandem runs (recruiter not finalized) vs direct transports
  /// (recruiter finalized). Section 6 suggests distinguishing the two for
  /// a fine-grained runtime analysis — transports are ~3x faster [21].
  std::vector<std::uint32_t> tandem_successes;
  std::vector<std::uint32_t> transport_successes;
};

/// Outcome of a run.
struct RunResult {
  /// The engine that actually executed the run — kScalar or kPacked,
  /// never kAuto. With engine=kAuto in the config, check engine_fallback
  /// to see WHY a run landed on the reference path.
  EngineKind engine = EngineKind::kScalar;
  /// Why an engine=kAuto config fell back to the per-object path (empty
  /// when the packed engine ran, or when scalar was explicitly
  /// requested). Makes silent fallbacks observable — sweeps can assert
  /// on it instead of discovering a 3x slowdown in a profile.
  std::string engine_fallback;
  bool converged = false;
  /// Round at which the winning agreement began (valid when converged).
  std::uint32_t rounds = 0;
  /// Rounds actually executed (equals `rounds + stability_rounds` when
  /// converged; max_rounds otherwise).
  std::uint32_t rounds_executed = 0;
  env::NestId winner = env::kHomeNest;
  double winner_quality = 0.0;
  /// Total successful recruitments across the run (|M| summed).
  std::uint64_t total_recruitments = 0;
  /// Split of total_recruitments by recruiter state (see Trajectories).
  std::uint64_t total_tandem_runs = 0;
  std::uint64_t total_transports = 0;
  /// Lattice backend only: first_passage[a] = round ant a first stood on
  /// the target site (1-based; 0 = never), indexed by ant. Empty on the
  /// home-nest backend. NOT part of TrialStats or result-store records
  /// (the fixed-size cache format predates it); consume it from direct
  /// runs, e.g. through analysis::first_passage_summary.
  std::vector<std::uint32_t> first_passage;
  Trajectories trajectories;  ///< empty unless record_trajectories
};

/// One execution: a colony in an environment. Use run() for the common
/// case or step() to drive round by round (examples do this to render
/// timelines).
class Simulation {
 public:
  /// Build the environment and machinery from `config` and take ownership
  /// of `colony` (which must have config.num_ants ants). `mode` defaults
  /// to the algorithm's natural convergence notion when omitted. An
  /// explicit colony always runs on the per-object engine (the caller may
  /// have built arbitrary ants); config.engine is ignored here, and any
  /// non-kScalar request is recorded as an engine fallback on the
  /// RunResult so the substitution stays observable.
  Simulation(const SimulationConfig& config, Colony colony,
             std::optional<ConvergenceMode> mode = std::nullopt);

  /// Convenience: build the colony for `kind` internally. Sugar over the
  /// AlgorithmSpec constructor with the built-in spec for `kind` — engine
  /// selection follows config.engine through the same capability diff.
  Simulation(const SimulationConfig& config, AlgorithmKind kind,
             const AlgorithmParams& params = {});

  /// Registry-v2 path: assemble the engine from an AlgorithmSpec
  /// (core/registry.hpp). Engine selection is a data-driven diff of the
  /// config against spec.capabilities (core/capabilities.hpp): with
  /// kAuto, any gap lands the run on the spec's colony factory and the
  /// joined gap list on engine_fallback(); with kPacked, a gap throws
  /// std::invalid_argument naming the exact capabilities missing. The
  /// spec must carry a colony factory (legacy simulation-factory-only
  /// specs are the registry's business, not this constructor's).
  Simulation(const SimulationConfig& config, const AlgorithmSpec& spec,
             const AlgorithmParams& params = {});

  ~Simulation();

  /// Execute one round. Returns true once the colony has converged
  /// (sticky; further steps are allowed and keep executing rounds).
  bool step();

  /// Run until convergence (+ stability window) or the round cap.
  /// Continues from the current round if step() was called before.
  [[nodiscard]] RunResult run();

  /// Rewind this simulation to round 0 under a new master seed, reusing
  /// every buffer (environment, pack lanes, detector) instead of
  /// reconstructing — the arena-reuse path Runner workers use to amortize
  /// per-trial construction away (DESIGN.md §4). A reset simulation is
  /// BIT-IDENTICAL to a freshly constructed one with the same config and
  /// `seed` (tests/test_resume.cpp pins this). Returns false — leaving the
  /// simulation untouched — when the engine cannot reset in place (the
  /// per-object path's polymorphic ants carry no reset hook); callers
  /// reconstruct then.
  [[nodiscard]] bool reset(std::uint64_t seed);

  // --- inspection ---
  /// The world this simulation runs in (any backend).
  [[nodiscard]] const env::Backend& world() const { return *world_; }
  /// The home-nest world. HH_EXPECTS the home-nest backend — callers on
  /// other backends must use world() (the seam exists so they can).
  [[nodiscard]] const env::Environment& environment() const;
  /// The per-object colony. On the packed engine this holds no ants (the
  /// state lives in SoA arrays) — use algorithm()/num_ants()/
  /// committed_census(), which work on both engines.
  [[nodiscard]] const Colony& colony() const { return colony_; }
  /// True when this simulation runs on the packed SoA engine.
  [[nodiscard]] bool packed() const { return pack_ != nullptr; }
  /// The engine executing this simulation (kScalar or kPacked).
  [[nodiscard]] EngineKind engine_used() const {
    return packed() ? EngineKind::kPacked : EngineKind::kScalar;
  }
  /// Why an engine=kAuto config fell back to scalar ("" otherwise); also
  /// carried on every RunResult (see RunResult::engine_fallback).
  [[nodiscard]] const std::string& engine_fallback() const {
    return engine_fallback_;
  }
  /// The algorithm's registry name (valid on both engines).
  [[nodiscard]] std::string_view algorithm() const {
    return colony_.algorithm;
  }
  /// Colony size n (valid on both engines, unlike colony().size()).
  [[nodiscard]] std::uint32_t num_ants() const { return config_.num_ants; }
  [[nodiscard]] std::uint32_t round() const { return world_->round(); }
  [[nodiscard]] bool converged() const { return detector_.converged(); }
  [[nodiscard]] const ConvergenceDetector& detector() const { return detector_; }
  /// Number of correct ants committed to each nest (size k+1).
  [[nodiscard]] std::vector<std::uint32_t> committed_census() const;
  /// The effective round cap for this simulation.
  [[nodiscard]] std::uint32_t max_rounds() const { return max_rounds_; }

 private:
  static std::uint32_t auto_max_rounds(const SimulationConfig& config);

  /// Exactly one of `colony` (per-object engine) or `pack` (packed
  /// engine) is populated; built once by build_engine().
  struct EngineParts {
    Colony colony;
    std::unique_ptr<AntPack> pack;
    /// Why kAuto fell back to the per-object engine ("" = no fallback).
    std::string fallback;
  };
  static EngineParts build_engine(const SimulationConfig& config,
                                  const AlgorithmSpec& spec,
                                  const AlgorithmParams& params);

  /// Primary constructor.
  Simulation(const SimulationConfig& config, EngineParts engine,
             ConvergenceMode mode);

  bool step_scalar();
  bool step_packed();
  /// The packed lattice driver: rounds run straight off the backend's
  /// reached lanes (AntPack's kernel interface is home-nest-shaped, so
  /// the WalkerPack shell is bypassed).
  bool step_lattice_packed();
  /// Census + streak update for lattice runs (both engines); mirrors
  /// core::agreement_from_census over the {walking, reached} census.
  bool update_lattice_convergence();
  void record_round(std::uint32_t tandem, std::uint32_t transport);

  SimulationConfig config_;
  Colony colony_;
  std::unique_ptr<AntPack> pack_;  // non-null iff packed engine
  /// The world. Exactly one of the concrete pointers below aliases it —
  /// the engine hot paths devirtualize through them (both backends are
  /// final).
  std::unique_ptr<env::Backend> world_;
  env::HomeNestBackend* home_ = nullptr;   // == world_ iff home-nest
  env::LatticeBackend* lattice_ = nullptr; // == world_ iff lattice
  std::unique_ptr<env::Scheduler> scheduler_;
  util::Rng scheduler_rng_;
  ConvergenceDetector detector_;
  std::uint32_t max_rounds_;
  std::uint64_t total_recruitments_ = 0;
  std::uint64_t total_tandem_runs_ = 0;
  std::uint64_t total_transports_ = 0;
  Trajectories trajectories_;
  bool exact_observation_ = true;      // no noise: quiet rounds eligible
  std::string engine_fallback_;        // why kAuto fell back ("" = packed)
  std::vector<env::Action> actions_;   // reused per round
  std::vector<bool> awake_;            // reused per round (scalar engine)
  std::vector<std::uint8_t> awake_u8_;  // reused per round (packed psync)
  std::vector<std::uint32_t> census_;  // reused per round (packed engine)
  std::vector<env::RecruitRequest> requests_;  // reused per round (packed)
  std::vector<std::uint8_t> recruit_active_;   // reused per round (packed)
  std::vector<env::MaskedOp> masked_op_;       // reused per round (packed)
  std::vector<env::NestId> masked_targets_;    // reused per round (packed)
  // True when the previous round's fused observe already wrote this
  // round's masked lanes (AntPack::observe_masked_quiet_then_decide), so
  // step_packed skips fill_masked. Consumed (cleared) every round.
  bool masked_lanes_prefilled_ = false;
};

}  // namespace hh::core

#endif  // HH_CORE_SIMULATION_HPP
