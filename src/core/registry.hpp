// Registry v2 — the capability-driven algorithm catalog.
//
// An algorithm plugs into every sweep, bench, spec file, and example
// through ONE typed artifact: an AlgorithmSpec bundling
//   * the scalar colony factory (required — the reference path),
//   * an optional packed-engine factory plus its DECLARED capability
//     matrix (core/capabilities.hpp) — kAuto engine selection, fallback
//     messages, and engine=kPacked errors are computed as a diff of the
//     config against this declaration, never hand-coded,
//   * the algorithm's convergence mode, and
//   * its parameter schema: which AlgorithmParams fields it consults,
//     keyed into the data-driven algorithm_param_table() that the JSON
//     spec layer (analysis/spec.hpp) serializes and validates against.
//
// Scenarios reference algorithms by name, so a new variant — packed or
// not — needs exactly one add() call and zero edits to the engine
// (core/idle_search_ant.cpp registers a PAPERS.md variant this way).
#ifndef HH_CORE_REGISTRY_HPP
#define HH_CORE_REGISTRY_HPP

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/capabilities.hpp"
#include "core/colony.hpp"
#include "core/simulation.hpp"

namespace hh::core {

class AntPack;

/// One tunable of AlgorithmParams, described as data so serialization,
/// validation, and documentation never enumerate the struct by hand.
struct ParamInfo {
  std::string_view key;                 ///< stable spec-file key
  double AlgorithmParams::* field;      ///< the struct member it names
  double min_value;                     ///< inclusive valid range
  double max_value;
  std::string_view doc;                 ///< one-line description
};

/// Every AlgorithmParams field, in declaration order. THE schema the JSON
/// layer serializes params through; adding a field to AlgorithmParams
/// means adding one row here and every spec, fingerprint, and validation
/// path picks it up.
[[nodiscard]] std::span<const ParamInfo> algorithm_param_table();

/// The table row for `key`, or nullptr.
[[nodiscard]] const ParamInfo* find_param(std::string_view key);

/// Legacy factory shape: builds a whole Simulation. Kept as an escape
/// hatch (AlgorithmSpec::simulation) for callers that assemble exotic
/// simulations themselves; such algorithms bypass capability-driven
/// engine selection entirely.
using SimulationFactory = std::function<std::unique_ptr<Simulation>(
    const SimulationConfig&, const AlgorithmParams&)>;

/// Builds the per-object colony for one trial. `colony_seed` is the
/// derived colony seed (per-ant streams come from it exactly as
/// make_colony derives them); `plan` is the sampled fault assignment.
using ColonyFactory = std::function<Colony(
    const SimulationConfig&, env::FaultPlan plan, std::uint64_t colony_seed,
    const AlgorithmParams&)>;

/// Builds the packed colony for one trial. `faults`, when non-null, is
/// the sampled plan to install as pack-level fault lanes. Must reproduce
/// the colony factory's ants BIT-IDENTICALLY (the §1 equivalence
/// contract) for every configuration inside the declared capabilities.
using PackFactory = std::function<std::unique_ptr<AntPack>(
    const SimulationConfig&, std::uint64_t colony_seed,
    const AlgorithmParams&, const env::FaultPlan* faults)>;

/// Everything the engine needs to run an algorithm by name.
struct AlgorithmSpec {
  std::string name;     ///< stable registry key ("simple", "idle-search")
  std::string summary;  ///< one-liner for listings (--algorithms)

  ColonyFactory colony;           ///< required (unless `simulation` set)
  PackFactory pack;               ///< optional packed fast path
  Capabilities capabilities;      ///< declared coverage of `pack`
  /// The convergence notion the algorithm is verified under.
  ConvergenceMode mode = ConvergenceMode::kCommitment;
  /// Parameter schema: algorithm_param_table() keys this algorithm
  /// consults — documentation/listing metadata (bench_spec --algorithms)
  /// and the registry test's contract. Spec parsing validates params
  /// against the TABLE, not this list: a cross-algorithm sweep may set a
  /// knob only some of its algorithms read (the others ignore it — but
  /// note every table param is part of result-cache identity).
  std::vector<std::string> params;

  /// Legacy escape hatch: when set, make() calls this and ignores the
  /// factories above (the simulation decides its own engine).
  SimulationFactory simulation;
};

/// Process-wide name -> AlgorithmSpec table. The built-in algorithms
/// (every AlgorithmKind, keyed by algorithm_name(kind)) are registered on
/// first access. Lookups are mutex-guarded so Runner worker threads can
/// build simulations concurrently with each other (registration during a
/// running sweep is also safe, if pointless).
class AlgorithmRegistry {
 public:
  /// The process-wide instance.
  [[nodiscard]] static AlgorithmRegistry& instance();

  /// Register (or replace) an algorithm. spec.name must be non-empty and
  /// spec must carry either a colony factory or a legacy simulation
  /// factory; spec.params keys must exist in algorithm_param_table()
  /// (std::invalid_argument otherwise).
  void add(AlgorithmSpec spec);

  /// Legacy registration: wrap a bare SimulationFactory. Equivalent to an
  /// AlgorithmSpec with only `simulation` set — no capability matrix, no
  /// param schema. Prefer add(AlgorithmSpec).
  void add(std::string name, SimulationFactory factory);

  /// True iff `name` is registered.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// The registered spec for `name`, or nullptr. The returned pointer
  /// stays valid across later registrations (specs are immutable once
  /// registered; replacement installs a new object).
  [[nodiscard]] std::shared_ptr<const AlgorithmSpec> find(
      std::string_view name) const;

  /// Build a simulation for `name`. Throws std::out_of_range for an
  /// unknown name (listing the registered ones); std::invalid_argument
  /// when config.engine = kPacked demands a pack the spec's capability
  /// matrix rules out (the message names the exact gaps).
  [[nodiscard]] std::unique_ptr<Simulation> make(
      std::string_view name, const SimulationConfig& config,
      const AlgorithmParams& params = {}) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AlgorithmRegistry();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const AlgorithmSpec>> specs_;
};

/// All registered algorithm names, ", "-joined — for error messages
/// (shared by the registry and the spec parser, so unknown-name
/// diagnostics never drift).
[[nodiscard]] std::string known_algorithms();

/// The algorithm_param_table() keys, ", "-joined — for error messages.
[[nodiscard]] std::string known_params();

/// Convenience: AlgorithmRegistry::instance().make(...).
[[nodiscard]] std::unique_ptr<Simulation> make_simulation(
    std::string_view algorithm, const SimulationConfig& config,
    const AlgorithmParams& params = {});

/// The built-in AlgorithmKind whose algorithm_name() is `name`, if any.
[[nodiscard]] std::optional<AlgorithmKind> algorithm_from_name(
    std::string_view name);

/// Every built-in AlgorithmKind, in declaration order.
[[nodiscard]] const std::vector<AlgorithmKind>& all_algorithm_kinds();

/// The AlgorithmSpec registered for built-in `kind` (capability matrix
/// from packed_capabilities(), factories over make_colony/make_ant_pack).
[[nodiscard]] AlgorithmSpec builtin_algorithm_spec(AlgorithmKind kind);

}  // namespace hh::core

#endif  // HH_CORE_REGISTRY_HPP
