// String-keyed algorithm registry: maps a stable algorithm name to a
// factory that builds a ready-to-run Simulation. Scenarios (analysis layer)
// reference algorithms by name, so new variants plug in without switch
// statements — register a factory once and every sweep, bench, and example
// can select it by string.
#ifndef HH_CORE_REGISTRY_HPP
#define HH_CORE_REGISTRY_HPP

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/colony.hpp"
#include "core/simulation.hpp"

namespace hh::core {

/// Builds a Simulation for one trial. The config carries the trial's seed;
/// the factory decides everything else (colony, convergence mode, ...).
using SimulationFactory = std::function<std::unique_ptr<Simulation>(
    const SimulationConfig&, const AlgorithmParams&)>;

/// Process-wide name -> factory table. The built-in algorithms (every
/// AlgorithmKind, keyed by algorithm_name(kind)) are registered on first
/// access. Lookups are mutex-guarded so Runner worker threads can build
/// simulations concurrently with each other (registration during a running
/// sweep is also safe, if pointless).
class AlgorithmRegistry {
 public:
  /// The process-wide instance.
  [[nodiscard]] static AlgorithmRegistry& instance();

  /// Register (or replace) a factory under `name`.
  void add(std::string name, SimulationFactory factory);

  /// True iff `name` is registered.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Build a simulation for `name`. Throws std::out_of_range for an
  /// unknown name (listing the registered ones).
  [[nodiscard]] std::unique_ptr<Simulation> make(
      std::string_view name, const SimulationConfig& config,
      const AlgorithmParams& params = {}) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AlgorithmRegistry();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, SimulationFactory>> factories_;
};

/// Convenience: AlgorithmRegistry::instance().make(...).
[[nodiscard]] std::unique_ptr<Simulation> make_simulation(
    std::string_view algorithm, const SimulationConfig& config,
    const AlgorithmParams& params = {});

/// The built-in AlgorithmKind whose algorithm_name() is `name`, if any.
[[nodiscard]] std::optional<AlgorithmKind> algorithm_from_name(
    std::string_view name);

/// Every built-in AlgorithmKind, in declaration order.
[[nodiscard]] const std::vector<AlgorithmKind>& all_algorithm_kinds();

}  // namespace hh::core

#endif  // HH_CORE_REGISTRY_HPP
