// Algorithm 3 — the simple, natural O(k log n) house-hunting algorithm
// (paper Section 5).
//
// Round 1: every ant searches; ants that find a bad nest turn passive.
// Thereafter rounds alternate between recruitment (all ants at the home
// nest) and population assessment (all ants at their candidate nests):
//
//   recruitment round:  active ant:  recruit(b, nest), b ~ Bernoulli(count/n)
//                       passive ant: recruit(0, nest)
//   assessment round:   every ant:   count := go(nest)
//
// Recruitment probability proportional to nest population is the positive
// feedback that makes larger nests swamp smaller ones (a Pólya-urn-like
// dynamic); a recruited ant adopts the recruiter's nest and, if passive,
// becomes active.
#ifndef HH_CORE_SIMPLE_ANT_HPP
#define HH_CORE_SIMPLE_ANT_HPP

#include <cstdint>

#include "core/ant.hpp"
#include "util/rng.hpp"

namespace hh::core {

/// One ant of Algorithm 3.
class SimpleAnt : public Ant {
 public:
  /// `num_ants` is the colony size n; `rng` is the ant's private stream
  /// (ants are probabilistic state machines).
  SimpleAnt(std::uint32_t num_ants, util::Rng rng);

  [[nodiscard]] env::Action decide(std::uint32_t round) override;
  void observe(const env::Outcome& outcome) override;
  [[nodiscard]] env::NestId committed_nest() const override { return nest_; }
  [[nodiscard]] std::string_view name() const override { return "simple"; }

  /// Whether the ant is in the active (recruiting) state.
  [[nodiscard]] bool active() const { return active_; }
  /// The ant's latest population estimate for its nest.
  [[nodiscard]] std::uint32_t count() const { return count_; }

 protected:
  /// The probability with which an active ant chooses b = 1 this round.
  /// Algorithm 3 uses count/n (line 6); the Section 6 variants override.
  [[nodiscard]] virtual double recruit_probability() const;

  /// Colony size n (available to subclasses for their probability rules).
  [[nodiscard]] std::uint32_t num_ants() const { return num_ants_; }
  /// Perceived quality of the nest the ant last searched/assessed.
  [[nodiscard]] double quality() const { return quality_; }
  /// The round currently being decided (1-based; Section 6 notes ants may
  /// "keep track of the round number").
  [[nodiscard]] std::uint32_t current_round() const { return round_; }

 private:
  enum class Phase : std::uint8_t { kInit, kRecruit, kAssess };

  std::uint32_t num_ants_;
  util::Rng rng_;

  Phase phase_ = Phase::kInit;
  bool active_ = true;  ///< line 1: initially active
  env::NestId nest_ = env::kHomeNest;
  std::uint32_t count_ = 0;
  double quality_ = 0.0;
  std::uint32_t round_ = 0;
};

}  // namespace hh::core

#endif  // HH_CORE_SIMPLE_ANT_HPP
