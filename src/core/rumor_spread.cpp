#include "core/rumor_spread.hpp"

#include <cmath>

#include "env/environment.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hh::core {

RumorSpreadResult run_rumor_spread(const RumorSpreadConfig& config) {
  HH_EXPECTS(config.num_ants >= 1);
  HH_EXPECTS(config.num_nests >= 2);

  const std::uint32_t n = config.num_ants;
  constexpr env::NestId kWinner = 1;  // n_w: the single good nest

  env::EnvironmentConfig ec;
  ec.num_ants = n;
  ec.qualities.assign(config.num_nests, 0.0);
  ec.qualities[kWinner - 1] = 1.0;
  ec.seed = util::mix_seed(config.seed, 0x2E07);
  env::Environment environment(std::move(ec));

  util::Rng coin(util::mix_seed(config.seed, 0xC017));
  const std::uint32_t max_rounds =
      config.max_rounds
          ? config.max_rounds
          : 200 + 40 * static_cast<std::uint32_t>(
                           std::log2(static_cast<double>(n) + 1.0) + 1.0);

  std::vector<bool> informed(n, false);
  std::vector<env::Action> actions(n);
  std::uint32_t informed_count = 0;

  RumorSpreadResult result;
  for (std::uint32_t round = 1; round <= max_rounds; ++round) {
    for (env::AntId a = 0; a < n; ++a) {
      if (round == 1) {
        actions[a] = env::Action::search();  // global first-round search
      } else if (informed[a]) {
        actions[a] = env::Action::recruit(true, kWinner);
      } else {
        bool searches = false;
        switch (config.strategy) {
          case IgnorantStrategy::kWaitAtHome: searches = false; break;
          case IgnorantStrategy::kSearch: searches = true; break;
          case IgnorantStrategy::kMixed: searches = coin.bernoulli(0.5); break;
        }
        actions[a] = searches ? env::Action::search()
                              : env::Action::recruit(false, env::kHomeNest);
      }
    }

    const std::vector<env::Outcome>& outcomes = environment.step(actions);
    for (env::AntId a = 0; a < n; ++a) {
      if (informed[a]) continue;
      ++result.ignorant_exposures;
      const env::Outcome& out = outcomes[a];
      const bool learned =
          (out.kind == env::ActionKind::kSearch && out.nest == kWinner) ||
          (out.kind == env::ActionKind::kRecruit && out.nest == kWinner);
      if (learned) {
        informed[a] = true;
        ++informed_count;
      } else {
        result.stay_ignorant_rate += 1.0;  // running sum; normalized below
      }
    }
    if (config.record_curve) result.informed_per_round.push_back(informed_count);
    if (informed_count == n) {
      result.all_informed = true;
      result.rounds = round;
      break;
    }
  }

  if (result.ignorant_exposures > 0) {
    result.stay_ignorant_rate /=
        static_cast<double>(result.ignorant_exposures);
  }
  if (!result.all_informed) result.rounds = max_rounds;
  return result;
}

}  // namespace hh::core
