// The ant abstraction: a probabilistic finite state machine that makes one
// model call per round (paper Section 2: "The colony consists of n
// identical probabilistic finite state machines ... parameterized by n but
// uniform for all k").
#ifndef HH_CORE_ANT_HPP
#define HH_CORE_ANT_HPP

#include <cstdint>
#include <string_view>

#include "env/action.hpp"
#include "env/nest.hpp"

namespace hh::core {

/// Interface every house-hunting algorithm implements per ant.
///
/// Protocol per round r (driven by core::Simulation):
///   1. decide(r) returns the ant's single model call for the round;
///   2. the environment resolves all calls simultaneously;
///   3. observe(outcome) delivers the call's return value.
/// An ant must be deterministic given its constructor arguments (including
/// its private RNG stream) and its observation sequence.
class Ant {
 public:
  Ant() = default;
  Ant(const Ant&) = delete;
  Ant& operator=(const Ant&) = delete;
  virtual ~Ant();

  /// The ant's one call for round `round` (1-based, matching the paper).
  [[nodiscard]] virtual env::Action decide(std::uint32_t round) = 0;

  /// Deliver the end-of-round return value for the call from decide().
  virtual void observe(const env::Outcome& outcome) = 0;

  /// The nest this ant is currently committed to (kHomeNest = none yet).
  /// Convergence detectors compare this across the colony.
  [[nodiscard]] virtual env::NestId committed_nest() const = 0;

  /// True once the ant has durably decided (e.g. Algorithm 2's `final`
  /// state). Algorithms without such a state may keep the default (false);
  /// detectors then rely on committed_nest() stability alone.
  [[nodiscard]] virtual bool finalized() const { return false; }

  /// Stable algorithm name for reports.
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace hh::core

#endif  // HH_CORE_ANT_HPP
