// Section 6 "Non-binary nest qualities" variant of Algorithm 3.
//
// With real-valued qualities in [0,1] "ants no longer have the notion of a
// good nest"; the paper suggests "incorporat[ing] the quality of the nest
// into the recruitment probability in order [to] make the algorithm
// converge to a high-quality nest". This variant recruits with probability
//
//     (count / n) * quality
//
// where quality is the ant's latest (possibly noisy) assessment of its
// nest — taken at search time and re-taken on every go() visit. Zero-
// quality nests never recruit, and among habitable nests the effective
// growth rate scales with quality, biasing the winner toward high-quality
// nests (experiment E11 measures the winner-quality distribution).
#ifndef HH_CORE_QUALITY_AWARE_ANT_HPP
#define HH_CORE_QUALITY_AWARE_ANT_HPP

#include "core/simple_ant.hpp"

namespace hh::core {

/// Algorithm 3 with quality-weighted recruitment (Section 6).
class QualityAwareAnt final : public SimpleAnt {
 public:
  QualityAwareAnt(std::uint32_t num_ants, util::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "quality-aware"; }

 protected:
  [[nodiscard]] double recruit_probability() const override;
};

}  // namespace hh::core

#endif  // HH_CORE_QUALITY_AWARE_ANT_HPP
