// ASCII line/scatter plots so the bench binaries can emit "figures" as text.
#ifndef HH_UTIL_ASCII_PLOT_HPP
#define HH_UTIL_ASCII_PLOT_HPP

#include <string>
#include <vector>

namespace hh::util {

/// A named series of (x, y) points; all series of one plot share axes.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

/// Rendering options for plot().
struct PlotOptions {
  std::size_t width = 72;   ///< plot-area columns
  std::size_t height = 20;  ///< plot-area rows
  bool log_x = false;       ///< log2 scale on the x axis
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Render a multi-series scatter plot to a multi-line string. Series
/// markers overwrite in order so later series show on top. Requires at
/// least one non-empty series.
[[nodiscard]] std::string plot(const std::vector<Series>& series,
                               const PlotOptions& options);

/// One-line sparkline of y values (levels rendered with 8 glyph heights).
[[nodiscard]] std::string sparkline(const std::vector<double>& ys);

}  // namespace hh::util

#endif  // HH_UTIL_ASCII_PLOT_HPP
