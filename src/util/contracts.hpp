// Contract checking (C++ Core Guidelines I.6 / I.8 style Expects/Ensures).
//
// Violations throw rather than abort so that tests can assert on them and
// long experiment sweeps fail loudly with context instead of dumping core.
#ifndef HH_UTIL_CONTRACTS_HPP
#define HH_UTIL_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace hh {

/// Thrown when a function precondition or postcondition is violated.
/// Indicates a programming error in the caller (Expects) or callee (Ensures).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an ant algorithm violates a rule of the paper's model
/// (Section 2), e.g. calling go(i) for a nest it has no knowledge of.
/// Distinct from ContractViolation so model-conformance tests can target it.
class ModelViolation : public std::logic_error {
 public:
  explicit ModelViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace hh

/// Precondition check: argument/state requirements on entry.
#define HH_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond)) ::hh::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition check: guarantees on exit.
#define HH_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond)) ::hh::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Invariant check inside a body.
#define HH_ASSERT(cond)                                                      \
  do {                                                                       \
    if (!(cond)) ::hh::detail::contract_fail("assertion", #cond, __FILE__, __LINE__); \
  } while (false)

#endif  // HH_UTIL_CONTRACTS_HPP
