#include "util/rng.hpp"

#include <numeric>

namespace hh::util {

void random_permutation_into(std::vector<std::uint32_t>& out, std::size_t n,
                             Rng& rng) {
  out.resize(n);
  std::iota(out.begin(), out.end(), 0u);
  shuffle(out, rng);
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm;
  random_permutation_into(perm, n, rng);
  return perm;
}

}  // namespace hh::util
