#include "util/rng.hpp"

#include <numeric>

namespace hh::util {

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  shuffle(perm, rng);
  return perm;
}

}  // namespace hh::util
