#include "util/rng.hpp"

#include <numeric>

namespace hh::util {

void random_permutation_into(std::vector<std::uint32_t>& out, std::size_t n,
                             Rng& rng) {
  out.resize(n);
  std::iota(out.begin(), out.end(), 0u);
  // Batched Fisher–Yates: identical draws to shuffle(out, rng) — the
  // iteration for i is the (i-1)-th-from-last, so i-1 bounded draws
  // (including this one) are still guaranteed, which is what lets
  // BatchedDraws prefetch raw words in blocks.
  BatchedDraws draws(rng);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = draws.uniform(i, i - 1);
    std::swap(out[i - 1], out[j]);
  }
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm;
  random_permutation_into(perm, n, rng);
  return perm;
}

}  // namespace hh::util
