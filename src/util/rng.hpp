// Deterministic pseudo-random number generation for simulations.
//
// Every randomized component in the library takes an explicit seed; given the
// same seed a simulation is a pure function of its configuration. We use
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// SplitMix64, rather than std::mt19937_64, because
//   * its output sequence is stable across standard-library implementations,
//     so recorded experiment outputs are reproducible anywhere, and
//   * it is ~3x faster, which matters for the O(n * k log n) round loops.
#ifndef HH_UTIL_RNG_HPP
#define HH_UTIL_RNG_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "util/contracts.hpp"

namespace hh::util {

/// SplitMix64: tiny generator used to expand a 64-bit seed into the
/// xoshiro256** state. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the library's workhorse generator.
///
/// Satisfies std::uniform_random_bit_generator so it composes with <random>
/// and std::shuffle, but prefer the member helpers (uniform_u64, bernoulli,
/// ...) which are reproducible across platforms (std::distributions are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  /// Re-seed in place (resets the stream).
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 pseudo-random bits (xoshiro256** step).
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) {
    HH_EXPECTS(bound > 0);
    // Fast path covers bound << 2^64; rejection loop is O(1) expected.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HH_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? (*this)() : uniform_u64(span);
    return lo + static_cast<std::int64_t>(draw);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_double() < p;
  }

  /// Derive an independent child stream (for per-ant or per-trial streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Fisher–Yates shuffle of v using rng (reproducible across platforms,
/// unlike std::shuffle whose draw pattern is implementation-defined).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_u64(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// A uniformly random permutation of {0, 1, ..., n-1}.
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

/// Fill `out` with a uniformly random permutation of {0, 1, ..., n-1}.
/// Allocation-free once out.capacity() >= n — the hot-path form used by the
/// pairing process (see env::PairingScratch), drawing the exact same RNG
/// sequence as random_permutation().
void random_permutation_into(std::vector<std::uint32_t>& out, std::size_t n,
                             Rng& rng);

/// Stable 64-bit mix of (seed, a, b) for deriving per-entity seeds.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a,
                                               std::uint64_t b = 0) noexcept {
  SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

}  // namespace hh::util

#endif  // HH_UTIL_RNG_HPP
