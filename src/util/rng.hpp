// Deterministic pseudo-random number generation for simulations.
//
// Every randomized component in the library takes an explicit seed; given the
// same seed a simulation is a pure function of its configuration. We use
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// SplitMix64, rather than std::mt19937_64, because
//   * its output sequence is stable across standard-library implementations,
//     so recorded experiment outputs are reproducible anywhere, and
//   * it is ~3x faster, which matters for the O(n * k log n) round loops.
#ifndef HH_UTIL_RNG_HPP
#define HH_UTIL_RNG_HPP

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/contracts.hpp"

namespace hh::util {

/// SplitMix64: tiny generator used to expand a 64-bit seed into the
/// xoshiro256** state. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) via Lemire multiply-shift rejection —
  /// the same unbiased method as Rng::uniform_u64, so counter-keyed
  /// streams (env::CounterLotteryPairing) share the main generator's
  /// distribution guarantees. Requires bound > 0.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the library's workhorse generator.
///
/// Satisfies std::uniform_random_bit_generator so it composes with <random>
/// and std::shuffle, but prefer the member helpers (uniform_u64, bernoulli,
/// ...) which are reproducible across platforms (std::distributions are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  /// Re-seed in place (resets the stream).
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 pseudo-random bits (xoshiro256** step).
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) {
    HH_EXPECTS(bound > 0);
    // Fast path covers bound << 2^64; rejection loop is O(1) expected.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HH_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? (*this)() : uniform_u64(span);
    return lo + static_cast<std::int64_t>(draw);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_double() < p;
  }

  /// Fill `out` with the next out.size() raw 64-bit words — the identical
  /// values and final generator state as calling operator()() in a loop,
  /// but with the 256-bit state held in registers across the block instead
  /// of being loaded and stored per draw. The bulk-refill primitive under
  /// uniform_u64_into() and BatchedDraws.
  void fill_u64(std::span<std::uint64_t> out) noexcept {
    std::uint64_t s0 = s_[0];
    std::uint64_t s1 = s_[1];
    std::uint64_t s2 = s_[2];
    std::uint64_t s3 = s_[3];
    for (std::uint64_t& o : out) {
      o = rotl(s1 * 5, 7) * 9;
      const std::uint64_t t = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= t;
      s3 = rotl(s3, 45);
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// Fill `out` with out.size() uniform draws from [0, bound) — the exact
  /// values, in the exact order, with the exact final stream state, of
  /// out.size() sequential uniform_u64(bound) calls. Batched Lemire: the
  /// raw words are bulk-generated with fill_u64 into `out` itself and
  /// consumed in order (a rejection simply consumes the next buffered
  /// word; an exhausted tail is refilled over the already-consumed
  /// positions), so no scratch buffer and no allocation. Requires
  /// bound > 0.
  void uniform_u64_into(std::span<std::uint64_t> out, std::uint64_t bound) {
    HH_EXPECTS(bound > 0);
    if (out.empty()) return;
    fill_u64(out);
    // Rejection iff lo < threshold; threshold < bound, so the sequential
    // path's `lo < bound` fast-path test is subsumed.
    const std::uint64_t threshold = (0 - bound) % bound;
    std::size_t w = 0;  // results written
    std::size_t r = 0;  // raw words consumed
    while (w < out.size()) {
      if (r == out.size()) {
        // Rejections consumed the tail; positions >= w are dead raws.
        fill_u64(out.subspan(w));
        r = w;
      }
      const std::uint64_t x = out[r++];
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      if (static_cast<std::uint64_t>(m) < threshold) continue;  // rejected
      out[w++] = static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Derive an independent child stream (for per-ant or per-trial streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Exact-sequence batched bounded draws over an Rng, for loops whose
/// bounds vary per draw (Fisher–Yates) or whose draw count is data-
/// dependent (the Algorithm 1 pairing loop) — the cases uniform_u64_into
/// cannot serve. Raw words are prefetched with Rng::fill_u64 in blocks
/// sized by a caller-supplied LOWER bound on the number of uniform()
/// calls still to come; since every call consumes at least one word, a
/// block never outlives the promised draws, so the words consumed — and
/// therefore the generator state at every point — are exactly those of
/// the equivalent sequential uniform_u64 calls. Over-promising the floor
/// would leave prefetched words unconsumed and desynchronize the stream;
/// callers must pass a genuine lower bound (1 is always safe).
class BatchedDraws {
 public:
  explicit BatchedDraws(Rng& rng) noexcept : rng_(rng) {}

  /// The same value, and the same stream advance, as rng.uniform_u64(
  /// bound). `remaining` is a lower bound on the uniform() calls still to
  /// come, INCLUDING this one (so >= 1). Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound, std::size_t remaining) {
    std::uint64_t x = raw(remaining);
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = raw(remaining);
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::size_t kBlock = 128;

  std::uint64_t raw(std::size_t remaining) {
    if (pos_ == len_) {
      HH_EXPECTS(remaining >= 1);
      len_ = remaining < kBlock ? remaining : kBlock;
      rng_.fill_u64(std::span<std::uint64_t>(buf_, len_));
      pos_ = 0;
    }
    return buf_[pos_++];
  }

  Rng& rng_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t buf_[kBlock];
};

/// Fisher–Yates shuffle of v using rng (reproducible across platforms,
/// unlike std::shuffle whose draw pattern is implementation-defined).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_u64(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// A uniformly random permutation of {0, 1, ..., n-1}.
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

/// Fill `out` with a uniformly random permutation of {0, 1, ..., n-1}.
/// Allocation-free once out.capacity() >= n — the hot-path form used by the
/// pairing process (see env::PairingScratch), drawing the exact same RNG
/// sequence as random_permutation().
void random_permutation_into(std::vector<std::uint32_t>& out, std::size_t n,
                             Rng& rng);

/// Stable 64-bit mix of (seed, a, b) for deriving per-entity seeds.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a,
                                               std::uint64_t b = 0) noexcept {
  SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

/// The (seed, a) half of mix_seed's key, hoistable out of a loop over b:
///   mix_seed(seed, a, b) == mix_seed(mix_seed_prefix(seed, a), 0, b)
/// exactly, for every b. Used by the counter-keyed pairing loop, where
/// (seed, a) = (pairing seed, round) is loop-invariant and b is the slot.
[[nodiscard]] constexpr std::uint64_t mix_seed_prefix(std::uint64_t seed,
                                                      std::uint64_t a) noexcept {
  return seed ^ (a * 0x9e3779b97f4a7c15ULL);
}

}  // namespace hh::util

#endif  // HH_UTIL_RNG_HPP
