// Little-endian binary record codec + streaming FNV-1a hashing.
//
// The analysis layer's on-disk result store (analysis/result_store.hpp)
// persists fixed-size trial records across processes and platforms, so the
// encoding must be byte-stable: explicit little-endian integer layout,
// IEEE-754 doubles via bit_cast, no struct memcpy (padding and endianness
// would leak in). The same streaming hasher doubles as the scenario
// fingerprint function and the per-record checksum.
#ifndef HH_UTIL_BINARY_IO_HPP
#define HH_UTIL_BINARY_IO_HPP

#include <bit>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace hh::util {

// --- little-endian append encoding -----------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// --- bounds-checked sequential decoding -------------------------------------

/// Reads the encoding above back. Out-of-bounds reads flip ok() to false
/// and return 0 instead of throwing — a torn shard tail is an expected
/// condition for the result store, not an error.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!has(1)) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    if (!has(4)) return 0;
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  /// False once any read ran past the end (all reads after that return 0).
  [[nodiscard]] bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  [[nodiscard]] bool has(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- streaming FNV-1a hashing ------------------------------------------------

/// 64-bit FNV-1a over a byte range.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Streaming FNV-1a hasher with typed update helpers. Values are hashed in
/// their little-endian encoding, so a Fnv64 digest equals fnv1a64 over the
/// equivalent put_* byte stream — and is stable across platforms.
class Fnv64 {
 public:
  void bytes(std::span<const std::uint8_t> data) {
    hash_ = fnv1a64(data, hash_);
  }
  void u8(std::uint8_t v) { step(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) step(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed, so consecutive strings can't alias ("ab","c" != "a","bc").
  void str(std::string_view s) {
    u64(s.size());
    for (char c : s) step(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  void step(std::uint8_t byte) {
    hash_ ^= byte;
    hash_ *= 0x100000001b3ULL;
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// 32-bit checksum for record framing (folded 64-bit FNV-1a).
[[nodiscard]] inline std::uint32_t checksum32(
    std::span<const std::uint8_t> data) {
  const std::uint64_t h = fnv1a64(data);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace hh::util

#endif  // HH_UTIL_BINARY_IO_HPP
