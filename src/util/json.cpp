#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"

namespace hh::util {

namespace {

std::string kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  HH_ASSERT(false);
  return "?";
}

[[noreturn]] void kind_mismatch(Json::Kind want, Json::Kind got) {
  throw std::runtime_error("expected " + kind_name(want) + ", got " +
                           kind_name(got));
}

}  // namespace

JsonParseError::JsonParseError(const std::string& message, std::size_t line,
                               std::size_t column)
    : std::runtime_error("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ": " +
                         message),
      line_(line),
      column_(column) {}

bool Json::as_bool() const {
  if (!is_bool()) kind_mismatch(Kind::kBool, kind());
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) kind_mismatch(Kind::kNumber, kind());
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) kind_mismatch(Kind::kString, kind());
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) kind_mismatch(Kind::kArray, kind());
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) kind_mismatch(Kind::kObject, kind());
  return std::get<Object>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (is_null()) value_ = Object{};
  HH_EXPECTS(is_object());
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  HH_EXPECTS(is_array());
  std::get<Array>(value_).push_back(std::move(value));
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    // Derive line/column from the byte offset (errors are rare; a rescan
    // beats carrying the counters through the hot parse loop).
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonParseError(message, line, column);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    // Containers recurse; bound the depth so a hostile/degenerate
    // document throws a parse error instead of overflowing the stack.
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    Json value = parse_value_inner();
    --depth_;
    return value;
  }

  Json parse_value_inner() {
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array elements;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    const std::uint32_t code = parse_hex4();
    // Spec identifiers are ASCII in practice, but be a correct citizen:
    // encode the code point as UTF-8 (surrogate pairs included).
    std::uint32_t cp = code;
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("invalid number");
    // JSON forbids leading zeros ("0123"); accept a single leading 0 only.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      fail("number has a leading zero");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of double range");
    return Json(value);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json parse_json(std::string_view text) { return Parser(text).run(); }

// --- writer -----------------------------------------------------------------

std::string format_double(double v) {
  HH_EXPECTS(std::isfinite(v));  // JSON has no NaN/Inf encoding
  // Integral doubles (the common case: counts, seeds, binary qualities)
  // print as integers — stable, and what a human would write in a spec.
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0 /* 2^53 */) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);  // lint: allow-float-fmt (format_double impl)
    return buf;
  }
  // Shortest rendering that round-trips: try increasing precision. %.17g
  // always round-trips IEEE doubles; 15 or 16 usually suffice and read
  // better.
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);  // lint: allow-float-fmt (format_double impl)
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void dump_into(std::string& out, const Json& value, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (value.kind()) {
    case Json::Kind::kNull: out += "null"; return;
    case Json::Kind::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Json::Kind::kNumber: out += format_double(value.as_number()); return;
    case Json::Kind::kString: append_escaped(out, value.as_string()); return;
    case Json::Kind::kArray: {
      const Json::Array& elements = value.as_array();
      if (elements.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        dump_into(out, elements[i], indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      const Json::Object& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : members) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_into(out, member, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      return;
    }
  }
  HH_ASSERT(false);
}

}  // namespace

std::string dump_json(const Json& value, int indent) {
  std::string out;
  dump_into(out, value, indent, 0);
  return out;
}

}  // namespace hh::util
