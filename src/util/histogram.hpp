// Fixed-width histogram for distribution diagnostics (e.g. the distribution
// of per-block population change Y_r in Lemma 4.1's symmetry check).
#ifndef HH_UTIL_HISTOGRAM_HPP
#define HH_UTIL_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace hh::util {

/// Equal-width binning over [lo, hi); values outside are clamped into the
/// first/last bin so no observation is silently dropped.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation.
  void add(double x);

  /// Record many observations.
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const;

  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of mass in the bin (0 when empty histogram).
  [[nodiscard]] double frequency(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin with a proportional bar).
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hh::util

#endif  // HH_UTIL_HISTOGRAM_HPP
