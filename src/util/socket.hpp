// Minimal POSIX stream-socket wrapper for the sweep service: a TCP
// listener bound to localhost, an RAII connected socket, and a buffered
// newline-delimited reader — exactly what an NDJSON line protocol needs,
// nothing more. No external dependencies; Linux/POSIX only (the service
// layer is gated off on platforms without <sys/socket.h>).
//
// Error model: constructors/factories return INVALID objects on failure
// (check valid()); I/O methods return false/-1 — the service layer turns
// these into dropped sessions, never exceptions across threads. Writes
// never raise SIGPIPE (MSG_NOSIGNAL).
#ifndef HH_UTIL_SOCKET_HPP
#define HH_UTIL_SOCKET_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace hh::util::net {

/// RAII over one connected stream socket. Move-only; the destructor
/// closes. A default-constructed Socket is invalid.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  /// Connect to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  /// Invalid socket on failure.
  [[nodiscard]] static Socket connect_tcp(const std::string& host,
                                          std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Send the whole buffer, handling partial writes and EINTR. False on
  /// any error (peer gone); never raises SIGPIPE.
  /// Fault points: socket.send (fail the write), socket.send.short (force
  /// 1-byte chunks), socket.send.eintr (simulated interrupt, retried).
  bool send_all(std::string_view bytes);

  /// Read up to `len` bytes. Returns bytes read (> 0), 0 on orderly EOF,
  /// -1 on error.
  /// Fault points: socket.recv (fail the read), socket.recv.short (cap the
  /// read at 1 byte), socket.recv.eintr (simulated interrupt, retried).
  [[nodiscard]] long recv_some(char* buf, std::size_t len);

  /// Wait until the socket is readable: 1 = readable (or peer closed —
  /// the next recv resolves which), 0 = timeout, -1 = error/invalid.
  /// timeout_ms < 0 waits forever.
  [[nodiscard]] int wait_readable(int timeout_ms);

  /// Shut down both directions — unblocks a recv_some() in another
  /// thread (the fd itself stays owned until destruction/close()).
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Buffered newline-delimited reader over a Socket.
class LineReader {
 public:
  /// Outcome of one next_line_for() attempt.
  enum class Status {
    kLine,     ///< a complete line was delivered
    kTimeout,  ///< nothing arrived within the deadline (partial input kept)
    kOverflow, ///< a line exceeded max_line(); it was discarded whole
    kClosed,   ///< EOF/error with nothing left buffered
  };

  explicit LineReader(Socket& socket) : socket_(&socket) {}

  /// Next line WITHOUT its trailing '\n' ('\r\n' is tolerated and
  /// stripped). A final unterminated line is delivered at EOF. Returns
  /// false on EOF/error with nothing buffered. Oversized lines (see
  /// set_max_line) are silently discarded.
  bool next_line(std::string& line);

  /// next_line with a read deadline: waits at most timeout_ms for a
  /// complete line (-1 = forever). On kTimeout partial input stays
  /// buffered; on kOverflow the oversized line was dropped through its
  /// newline and `line` is cleared.
  [[nodiscard]] Status next_line_for(std::string& line, int timeout_ms);

  /// Cap on a single line's length in bytes (0 = unlimited, the default).
  /// The cap is approximate — it is checked per received chunk — but
  /// bounds buffer growth at max + one chunk, closing the unbounded-line
  /// memory hole for daemon-side readers.
  void set_max_line(std::size_t bytes) { max_line_ = bytes; }

  /// Repoint at `socket`, keeping buffered bytes — for owners whose
  /// Socket member moved (e.g. a move-constructed client).
  void rebind(Socket& socket) { socket_ = &socket; }

 private:
  Socket* socket_;
  std::string buffer_;
  std::size_t max_line_ = 0;
  bool eof_ = false;
  bool discarding_ = false;  // inside an oversized line, dropping bytes
};

/// Listening TCP socket. Move-constructible only (no assignment — the
/// close flag is sticky); the destructor closes.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;
  ~Listener();

  /// Bind + listen on host:port (port 0 = kernel-assigned ephemeral
  /// port, readable back via port()). Invalid listener on failure.
  [[nodiscard]] static Listener bind_tcp(const std::string& host,
                                         std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// The actually bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accept one connection. Blocks (in a poll loop) until a peer
  /// arrives or close() is called from another thread; returns an
  /// invalid Socket on close/error.
  [[nodiscard]] Socket accept();

  /// Close the listening socket; unblocks concurrent accept() calls.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace hh::util::net

#endif  // HH_UTIL_SOCKET_HPP
