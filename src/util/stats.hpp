// Descriptive statistics over samples collected from experiment trials.
#ifndef HH_UTIL_STATS_HPP
#define HH_UTIL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace hh::util {

/// Summary of a sample: central tendency, spread, order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;  ///< 5th percentile
  double p95 = 0.0;  ///< 95th percentile
};

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Percentile in [0,100] by linear interpolation between order statistics.
/// Requires a non-empty span (copies and sorts internally).
[[nodiscard]] double percentile(std::span<const double> xs, double pct);

/// Median (50th percentile). Requires a non-empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// Full summary of a sample. Requires a non-empty span.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance. Requires size >= 2.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Two-sided binomial-proportion confidence half-width (normal approximation):
/// z * sqrt(p(1-p)/n). Useful for sanity bands around empirical probabilities.
[[nodiscard]] double proportion_ci_halfwidth(double p_hat, std::size_t n, double z = 2.576);

/// Convert any numeric vector into doubles (convenience for Summary input).
template <typename T>
[[nodiscard]] std::vector<double> to_doubles(const std::vector<T>& xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(static_cast<double>(x));
  return out;
}

}  // namespace hh::util

#endif  // HH_UTIL_STATS_HPP
