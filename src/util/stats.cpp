#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace hh::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double pct) {
  HH_EXPECTS(!xs.empty());
  HH_EXPECTS(pct >= 0.0 && pct <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

Summary summarize(std::span<const double> xs) {
  HH_EXPECTS(!xs.empty());
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  s.p05 = percentile(xs, 5.0);
  s.p95 = percentile(xs, 95.0);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HH_EXPECTS(xs.size() == ys.size());
  HH_EXPECTS(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double proportion_ci_halfwidth(double p_hat, std::size_t n, double z) {
  HH_EXPECTS(n > 0);
  const double clamped = std::clamp(p_hat, 0.0, 1.0);
  return z * std::sqrt(clamped * (1.0 - clamped) / static_cast<double>(n));
}

}  // namespace hh::util
