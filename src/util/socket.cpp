#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hh::util::net {
namespace {

/// Fill a sockaddr_in for a numeric IPv4 host. False on a bad address.
bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr)) return Socket();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    ::close(fd);
    return Socket();
  }
  // The protocol is small request/event lines; don't batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

bool Socket::send_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(char* buf, std::size_t len) {
  if (fd_ < 0) return -1;
  while (true) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// LineReader

bool LineReader::next_line(std::string& line) {
  while (true) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    long n = socket_->recv_some(chunk, sizeof(chunk));
    if (n <= 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Listener

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      closed_(other.closed_.load()) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener::~Listener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr)) return Listener();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Listener();
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Listener();
  }
  // Read back the actual port (resolves port 0 to the kernel's pick).
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Listener();
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Socket Listener::accept() {
  // Poll with a short timeout so close() from another thread is seen
  // promptly (closing an fd does not reliably wake a blocked accept()).
  while (fd_ >= 0 && !closed_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if (rc == 0) continue;  // timeout: re-check closed_
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
  return Socket();
}

void Listener::close() {
  // Mark closed and shut down, but keep the fd number alive until the
  // destructor — actually closing here could let the kernel reuse the fd
  // for a new connection while another thread is still inside accept().
  bool was_closed = closed_.exchange(true, std::memory_order_acq_rel);
  if (!was_closed && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // unblock a concurrent accept()'s poll
  }
}

}  // namespace hh::util::net
