#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault_inject.hpp"

namespace hh::util::net {
namespace {

/// Fill a sockaddr_in for a numeric IPv4 host. False on a bad address.
bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr)) return Socket();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  if (fault::inject("socket.connect")) {
    ::close(fd);
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // POSIX: after EINTR the connection attempt proceeds asynchronously —
    // re-calling connect() here would get EALREADY/EISCONN unpredictably.
    // Wait for writability and read the final status from SO_ERROR.
    if (errno != EINTR) {
      ::close(fd);
      return Socket();
    }
    while (true) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int rc = ::poll(&pfd, 1, -1);
      if (rc > 0) break;
      if (rc < 0 && errno == EINTR) continue;
      ::close(fd);
      return Socket();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Socket();
    }
  }
  // The protocol is small request/event lines; don't batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

bool Socket::send_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    if (fault::inject("socket.send")) return false;
    if (fault::inject("socket.send.eintr")) continue;  // simulated EINTR
    std::size_t chunk = left;
    if (left > 1 && fault::inject("socket.send.short")) chunk = 1;
    ssize_t n = ::send(fd_, data, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(char* buf, std::size_t len) {
  if (fd_ < 0) return -1;
  if (fault::inject("socket.recv")) return -1;
  while (true) {
    if (fault::inject("socket.recv.eintr")) continue;  // simulated EINTR
    std::size_t cap = len;
    if (len > 1 && fault::inject("socket.recv.short")) cap = 1;
    ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

int Socket::wait_readable(int timeout_ms) {
  if (fd_ < 0) return -1;
  while (true) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;  // restarts the full timeout; fine here
      return -1;
    }
    // POLLHUP/POLLERR also count as readable: the next recv resolves them.
    return rc == 0 ? 0 : 1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// LineReader

bool LineReader::next_line(std::string& line) {
  while (true) {
    const Status status = next_line_for(line, -1);
    if (status == Status::kOverflow) continue;  // skip oversized lines
    return status == Status::kLine;
  }
}

LineReader::Status LineReader::next_line_for(std::string& line,
                                             int timeout_ms) {
  while (true) {
    std::size_t nl = buffer_.find('\n');
    if (discarding_) {
      // Inside an oversized line: drop bytes until its newline passes.
      if (nl != std::string::npos) {
        buffer_.erase(0, nl + 1);
        discarding_ = false;
        line.clear();
        return Status::kOverflow;
      }
      buffer_.clear();
    } else if (nl != std::string::npos) {
      if (max_line_ > 0 && nl > max_line_) {
        // Oversized line that arrived whole (newline and all) in one recv
        // batch — it must be rejected exactly like one that trickled in.
        buffer_.erase(0, nl + 1);
        line.clear();
        return Status::kOverflow;
      }
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Status::kLine;
    } else if (max_line_ > 0 && buffer_.size() > max_line_) {
      buffer_.clear();
      discarding_ = true;
      continue;  // keep draining this line's bytes
    }
    if (eof_) {
      if (discarding_) {
        discarding_ = false;
        line.clear();
        return Status::kOverflow;  // oversized final line; next call: kClosed
      }
      if (buffer_.empty()) return Status::kClosed;
      line = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Status::kLine;
    }
    if (timeout_ms >= 0) {
      const int ready = socket_->wait_readable(timeout_ms);
      if (ready == 0) return Status::kTimeout;
      if (ready < 0) {
        eof_ = true;
        continue;
      }
    }
    char chunk[4096];
    long n = socket_->recv_some(chunk, sizeof(chunk));
    if (n <= 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Listener

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      closed_(other.closed_.load()) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener::~Listener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!make_addr(host, port, addr)) return Listener();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Listener();
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Listener();
  }
  // Read back the actual port (resolves port 0 to the kernel's pick).
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Listener();
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Socket Listener::accept() {
  // Poll with a short timeout so close() from another thread is seen
  // promptly (closing an fd does not reliably wake a blocked accept()).
  while (fd_ >= 0 && !closed_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if (rc == 0) continue;  // timeout: re-check closed_
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    if (fault::inject("socket.accept")) {
      // Simulate a peer that vanished between accept and handshake.
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
  return Socket();
}

void Listener::close() {
  // Mark closed and shut down, but keep the fd number alive until the
  // destructor — actually closing here could let the kernel reuse the fd
  // for a new connection while another thread is still inside accept().
  bool was_closed = closed_.exchange(true, std::memory_order_acq_rel);
  if (!was_closed && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // unblock a concurrent accept()'s poll
  }
}

}  // namespace hh::util::net
