// Deterministic fault injection for chaos testing.
//
// Production code marks *fault points* — named places where an I/O operation
// may be forced to fail, stall, or crash the process — by calling
// `fault::inject("store.append.torn")` and honoring a `true` return as "this
// operation failed here". With nothing armed the call is a single relaxed
// atomic load, cheap enough to leave in release builds, which is the whole
// point: the exact binaries that ship are the ones the chaos harness breaks.
//
// Faults are armed either programmatically (`fault::arm(spec, seed)`) or by
// environment variable, so any anthill binary can be run under fault without
// recompilation:
//
//   ANTHILL_FAULTS="socket.recv=fail@6;store.flush.skip=fail@1+" ./anthill-serve
//
// Spec grammar (clauses separated by ';'):
//
//   clause  := point '=' action
//   action  := 'fail@' N ['+']          fire on the Nth hit (or every hit
//                                       from the Nth on, with '+')
//            | 'fail~' P                fire each hit with probability P,
//                                       seeded and deterministic
//            | 'delay@' N ['+'] ':' MS  sleep MS milliseconds instead of
//                                       failing (operation then proceeds)
//            | 'delay~' P ':' MS        probabilistic delay
//            | 'crash@' N               dump the fault report to stderr and
//                                       _Exit(137) on the Nth hit
//
// Hit indices are 1-based and count every call to inject() for that point
// process-wide. Probabilistic draws hash (seed, point, hit#) so a given
// ANTHILL_FAULT_SEED reproduces the same firing pattern at any thread count
// where hit order is deterministic. `ANTHILL_FAULT_REPORT=-` (or a path)
// dumps per-point hit/fired counters at process exit.
//
// Caveat: an always-on fail for a retried-in-place fault point (e.g.
// `socket.send.eintr=fail@1+`) livelocks the retry loop by design — use
// fail@N or fail~P for points the caller retries.
#ifndef HH_UTIL_FAULT_INJECT_HPP
#define HH_UTIL_FAULT_INJECT_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hh::util::fault {

namespace detail {
// 0 = not yet initialized (first inject() parses the environment),
// 1 = disarmed (fast path: every inject() is one atomic load),
// 2 = armed.
//
// Memory-model contract (the reason TSan is clean with inject() called
// from every thread while a test re-arms — see DESIGN.md §8/§10):
//
//   * g_state is the publication flag. Arming builds a fully immutable
//     Config, installs it under g_config's mutex, and only THEN does a
//     release store of 2; inject() starts with an acquire load, so any
//     thread that observes "armed" also observes the Config that arming
//     published (release/acquire pairing — the config install
//     happens-before every hit that sees state 2).
//   * The Config is frozen after publication — points are never added,
//     removed, or re-actioned in place; re-arming swaps in a NEW Config
//     while in-flight readers keep the old one alive via shared_ptr.
//   * Per-point hit/fired counters are the only mutable fields, and they
//     are std::atomic with relaxed ordering: they are monotonic tallies
//     read for reports, never used to publish other data, so no
//     happens-before edge is needed — only atomicity.
extern std::atomic<int> g_state;
bool inject_slow(const char* point);
}  // namespace detail

/// Returns true if the named fault point should report failure for this hit.
/// Delay actions sleep and return false (the operation proceeds); crash
/// actions never return.
inline bool inject(const char* point) {
  if (detail::g_state.load(std::memory_order_acquire) == 1) return false;
  return detail::inject_slow(point);
}

/// Arm from a spec string (same grammar as ANTHILL_FAULTS). Replaces any
/// previous arming and resets all counters. Throws std::runtime_error on a
/// malformed spec. Thread-safe, but arming while other threads are inside
/// inject() applies the new config only to subsequent hits.
void arm(const std::string& spec, std::uint64_t seed = 1);

/// Disarm all fault points (inject() returns to the one-load fast path).
void disarm();

/// True if any fault point is currently armed.
[[nodiscard]] bool armed();

/// The spec string currently armed ("" when disarmed).
[[nodiscard]] std::string armed_spec();

/// Per-point counters since arming.
struct PointStats {
  std::string point;          ///< fault-point name
  std::string action;         ///< action text as written in the spec
  std::uint64_t hits = 0;     ///< times inject() was reached
  std::uint64_t fired = 0;    ///< times the action triggered
};
[[nodiscard]] std::vector<PointStats> stats();

/// Human-readable multi-line counter dump (what crash and
/// ANTHILL_FAULT_REPORT emit).
[[nodiscard]] std::string report();

}  // namespace hh::util::fault

#endif  // HH_UTIL_FAULT_INJECT_HPP
