#include "util/fault_inject.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace hh::util::fault {

namespace {

struct Action {
  enum class Verb { kFail, kDelay, kCrash };
  Verb verb = Verb::kFail;
  std::uint64_t nth = 0;     // 1-based hit index; 0 = probabilistic mode
  bool sticky = false;       // '+': fire on every hit from the Nth on
  double prob = 0.0;         // probabilistic mode firing probability
  std::uint32_t delay_ms = 0;
  std::string text;          // action as written, for reports
};

struct Point {
  Action action;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

// One arming = one immutable Config; inject() readers hold a shared_ptr so
// re-arming never races with in-flight hits. Point counters are atomic.
struct Config {
  std::string spec;
  std::uint64_t seed = 1;
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points;
};

std::mutex g_arm_mutex;
std::mutex g_config_mutex;
std::shared_ptr<const Config> g_config;  // guarded by g_config_mutex

// Readers copy the shared_ptr under a short lock; the Config itself is
// immutable (counters are atomic), so hits proceed lock-free afterwards.
// Armed-mode hits are chaos-test-only, so the lock is not a hot path.
std::shared_ptr<const Config> load_config() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return g_config;
}

// Publication order matters: the Config must be fully installed before the
// release store of g_state, so an inject() whose acquire load sees "armed"
// is guaranteed to load this Config (or a newer one) — never a stale null.
// See the contract comment on detail::g_state in the header.
void store_config(std::shared_ptr<const Config> config, int state) {
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_config = std::move(config);
  }
  detail::g_state.store(state, std::memory_order_release);
}

[[noreturn]] void spec_error(const std::string& spec, const std::string& what) {
  throw std::runtime_error("fault spec \"" + spec + "\": " + what);
}

std::uint64_t parse_u64(const std::string& spec, std::string_view text,
                        std::size_t* consumed) {
  std::uint64_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  if (i == 0) spec_error(spec, "expected a number at \"" + std::string(text) + "\"");
  *consumed = i;
  return value;
}

Action parse_action(const std::string& spec, std::string_view text) {
  Action action;
  action.text = std::string(text);
  Action::Verb verb;
  std::string_view rest;
  if (text.starts_with("fail")) {
    verb = Action::Verb::kFail;
    rest = text.substr(4);
  } else if (text.starts_with("delay")) {
    verb = Action::Verb::kDelay;
    rest = text.substr(5);
  } else if (text.starts_with("crash")) {
    verb = Action::Verb::kCrash;
    rest = text.substr(5);
  } else {
    spec_error(spec, "unknown action \"" + std::string(text) + "\"");
  }
  action.verb = verb;
  if (rest.empty()) spec_error(spec, "action \"" + std::string(text) + "\" needs @N or ~P");
  const char mode = rest.front();
  rest.remove_prefix(1);
  std::size_t used = 0;
  if (mode == '@') {
    action.nth = parse_u64(spec, rest, &used);
    if (action.nth == 0) spec_error(spec, "hit indices are 1-based");
    rest.remove_prefix(used);
    if (!rest.empty() && rest.front() == '+') {
      action.sticky = true;
      rest.remove_prefix(1);
    }
  } else if (mode == '~') {
    if (verb == Action::Verb::kCrash) {
      spec_error(spec, "crash supports only crash@N (deterministic)");
    }
    // P is a decimal in [0,1]; parse integer and fractional digits by hand
    // to avoid locale-dependent strtod behavior.
    std::uint64_t whole = parse_u64(spec, rest, &used);
    rest.remove_prefix(used);
    double prob = static_cast<double>(whole);
    if (!rest.empty() && rest.front() == '.') {
      rest.remove_prefix(1);
      std::uint64_t frac = parse_u64(spec, rest, &used);
      double scale = 1.0;
      for (std::size_t i = 0; i < used; ++i) scale *= 10.0;
      prob += static_cast<double>(frac) / scale;
      rest.remove_prefix(used);
    }
    if (prob < 0.0 || prob > 1.0) spec_error(spec, "probability must be in [0,1]");
    action.prob = prob;
  } else {
    spec_error(spec, "action \"" + std::string(text) + "\" needs @N or ~P");
  }
  if (verb == Action::Verb::kDelay) {
    if (rest.empty() || rest.front() != ':') {
      spec_error(spec, "delay needs a :MS suffix");
    }
    rest.remove_prefix(1);
    action.delay_ms =
        static_cast<std::uint32_t>(parse_u64(spec, rest, &used));
    rest.remove_prefix(used);
  }
  if (!rest.empty()) {
    spec_error(spec, "trailing garbage \"" + std::string(rest) + "\" after action");
  }
  return action;
}

std::shared_ptr<Config> parse_spec(const std::string& spec, std::uint64_t seed) {
  auto config = std::make_shared<Config>();
  config->spec = spec;
  config->seed = seed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace so multi-line env values compose.
    while (!clause.empty() && (clause.front() == ' ' || clause.front() == '\n' ||
                               clause.front() == '\t')) {
      clause.erase(clause.begin());
    }
    while (!clause.empty() && (clause.back() == ' ' || clause.back() == '\n' ||
                               clause.back() == '\t')) {
      clause.pop_back();
    }
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      spec_error(spec, "clause \"" + clause + "\" is not point=action");
    }
    const std::string point = clause.substr(0, eq);
    auto p = std::make_unique<Point>();
    p->action = parse_action(spec, std::string_view(clause).substr(eq + 1));
    if (!config->points.emplace(point, std::move(p)).second) {
      spec_error(spec, "fault point \"" + point + "\" armed twice");
    }
  }
  return config;
}

std::uint64_t fnv1a(const char* text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* c = text; *c != '\0'; ++c) {
    h ^= static_cast<unsigned char>(*c);
    h *= 1099511628211ULL;
  }
  return h;
}

void write_report_to(std::FILE* out, const Config& config) {
  std::fputs("=== anthill fault report ===\n", out);
  std::fprintf(out, "spec: %s\nseed: %llu\n", config.spec.c_str(),
               static_cast<unsigned long long>(config.seed));
  for (const auto& [name, point] : config.points) {
    std::fprintf(out, "%-28s %-16s hits=%llu fired=%llu\n", name.c_str(),
                 point->action.text.c_str(),
                 static_cast<unsigned long long>(point->hits.load()),
                 static_cast<unsigned long long>(point->fired.load()));
  }
  std::fflush(out);
}

void report_at_exit() {
  const char* where = std::getenv("ANTHILL_FAULT_REPORT");
  if (where == nullptr || where[0] == '\0') return;
  auto config = load_config();
  if (config == nullptr) return;
  if (where[0] == '-' && where[1] == '\0') {
    write_report_to(stderr, *config);
    return;
  }
  std::FILE* out = std::fopen(where, "w");
  if (out == nullptr) return;
  write_report_to(out, *config);
  std::fclose(out);
}

// First inject() in a process with ANTHILL_FAULTS set arms from the
// environment; a malformed env spec is a loud, immediate exit so chaos CI
// never silently runs fault-free.
void init_from_env() {
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  if (detail::g_state.load(std::memory_order_acquire) != 0) return;
  const char* spec = std::getenv("ANTHILL_FAULTS");
  if (spec == nullptr || spec[0] == '\0') {
    store_config(nullptr, 1);
    return;
  }
  std::uint64_t seed = 1;
  if (const char* seed_text = std::getenv("ANTHILL_FAULT_SEED")) {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  std::shared_ptr<Config> config;
  try {
    config = parse_spec(spec, seed);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ANTHILL_FAULTS: %s\n", error.what());
    std::_Exit(2);
  }
  std::atexit(report_at_exit);
  store_config(std::move(config), 2);
  std::fprintf(stderr, "fault injection armed: %s\n", spec);
}

}  // namespace

namespace detail {

std::atomic<int> g_state{0};

bool inject_slow(const char* point) {
  if (g_state.load(std::memory_order_acquire) == 0) init_from_env();
  if (g_state.load(std::memory_order_acquire) == 1) return false;
  auto config = load_config();
  if (config == nullptr) return false;
  const auto it = config->points.find(std::string_view(point));
  if (it == config->points.end()) return false;
  Point& p = *it->second;
  const Action& action = p.action;
  const std::uint64_t hit = p.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire;
  if (action.nth > 0) {
    fire = action.sticky ? hit >= action.nth : hit == action.nth;
  } else {
    // Deterministic per-hit draw: same (seed, point, hit#) → same decision,
    // independent of what other points do.
    const std::uint64_t bits = mix_seed(config->seed ^ fnv1a(point), hit);
    fire = static_cast<double>(bits >> 11) * 0x1.0p-53 < action.prob;
  }
  if (!fire) return false;
  p.fired.fetch_add(1, std::memory_order_relaxed);
  switch (action.verb) {
    case Action::Verb::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return false;
    case Action::Verb::kCrash:
      std::fprintf(stderr, "fault crash at point \"%s\" (hit %llu)\n", point,
                   static_cast<unsigned long long>(hit));
      write_report_to(stderr, *config);
      std::_Exit(137);
    case Action::Verb::kFail:
      return true;
  }
  return true;  // unreachable; placates -Werror=return-type
}

}  // namespace detail

void arm(const std::string& spec, std::uint64_t seed) {
  auto config = parse_spec(spec, seed);  // throws before any state change
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  store_config(std::move(config), 2);
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  store_config(nullptr, 1);
}

bool armed() {
  if (detail::g_state.load(std::memory_order_acquire) == 0) init_from_env();
  return detail::g_state.load(std::memory_order_acquire) == 2;
}

std::string armed_spec() {
  if (!armed()) return {};
  auto config = load_config();
  return config == nullptr ? std::string{} : config->spec;
}

std::vector<PointStats> stats() {
  std::vector<PointStats> out;
  auto config = load_config();
  if (config == nullptr) return out;
  out.reserve(config->points.size());
  for (const auto& [name, point] : config->points) {
    out.push_back({name, point->action.text, point->hits.load(),
                   point->fired.load()});
  }
  return out;
}

std::string report() {
  auto config = load_config();
  if (config == nullptr) return "fault injection disarmed\n";
  std::string text = "=== anthill fault report ===\nspec: " + config->spec + "\n";
  for (const auto& [name, point] : config->points) {
    text += name + " " + point->action.text +
            " hits=" + std::to_string(point->hits.load()) +
            " fired=" + std::to_string(point->fired.load()) + "\n";
  }
  return text;
}

}  // namespace hh::util::fault
