#include "util/fit.hpp"

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace hh::util {

Fit fit_linear(std::span<const double> x, std::span<const double> y) {
  HH_EXPECTS(x.size() == y.size());
  HH_EXPECTS(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  Fit f;
  f.slope = (sxx == 0.0) ? 0.0 : sxy / sxx;
  f.intercept = my - f.slope * mx;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = f.predict(x[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  f.r_squared = (ss_tot == 0.0) ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

Fit fit_logarithmic(std::span<const double> x, std::span<const double> y) {
  std::vector<double> logx;
  logx.reserve(x.size());
  for (double v : x) {
    HH_EXPECTS(v > 0.0);
    logx.push_back(std::log2(v));
  }
  return fit_linear(logx, y);
}

Fit fit_klogn(std::span<const double> n, std::span<const double> k,
              std::span<const double> y) {
  HH_EXPECTS(n.size() == k.size());
  std::vector<double> feature;
  feature.reserve(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    HH_EXPECTS(n[i] > 0.0);
    feature.push_back(k[i] * std::log2(n[i]));
  }
  return fit_linear(feature, y);
}

std::string describe(const Fit& fit, const std::string& feature_name) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "y = %.3f*%s %c %.3f  (R^2=%.4f)", fit.slope,
                feature_name.c_str(), fit.intercept >= 0 ? '+' : '-',
                std::abs(fit.intercept), fit.r_squared);
  return buf;
}

}  // namespace hh::util
