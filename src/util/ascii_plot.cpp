#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/contracts.hpp"

namespace hh::util {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  [[nodiscard]] double span() const { return hi - lo; }
};

double transform_x(double x, bool log_x) { return log_x ? std::log2(x) : x; }

}  // namespace

std::string plot(const std::vector<Series>& series, const PlotOptions& options) {
  HH_EXPECTS(!series.empty());
  HH_EXPECTS(options.width >= 8 && options.height >= 4);

  Range xr;
  Range yr;
  bool any_point = false;
  for (const auto& s : series) {
    HH_EXPECTS(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options.log_x) HH_EXPECTS(s.x[i] > 0.0);
      xr.include(transform_x(s.x[i], options.log_x));
      yr.include(s.y[i]);
      any_point = true;
    }
  }
  HH_EXPECTS(any_point);
  if (xr.span() == 0.0) xr.hi = xr.lo + 1.0;
  if (yr.span() == 0.0) yr.hi = yr.lo + 1.0;

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double fx =
          (transform_x(s.x[i], options.log_x) - xr.lo) / xr.span();
      const double fy = (s.y[i] - yr.lo) / yr.span();
      const auto col = static_cast<std::size_t>(
          std::round(fx * static_cast<double>(options.width - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(
          std::round(fy * static_cast<double>(options.height - 1)));
      const std::size_t row = options.height - 1 - row_from_bottom;
      grid[row][col] = s.marker;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  char buf[64];
  for (std::size_t r = 0; r < options.height; ++r) {
    const double y_at_row =
        yr.hi - yr.span() * static_cast<double>(r) /
                    static_cast<double>(options.height - 1);
    std::snprintf(buf, sizeof(buf), "%10.2f |", y_at_row);
    out += buf;
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(options.width, '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%10.2f", options.log_x ? std::exp2(xr.lo) : xr.lo);
  out += std::string(12, ' ') + buf;
  std::snprintf(buf, sizeof(buf), "%10.2f", options.log_x ? std::exp2(xr.hi) : xr.hi);
  const std::string right = buf;
  const std::size_t pad =
      options.width > 10 + right.size() ? options.width - 10 - right.size() : 1;
  out += std::string(pad, ' ') + right + "  [" + options.x_label +
         (options.log_x ? ", log scale]" : "]") + '\n';
  out += "  legend: ";
  for (const auto& s : series) {
    out += '\'';
    out += s.marker;
    out += "'=" + s.name + "  ";
  }
  out += "  y: " + options.y_label + '\n';
  return out;
}

std::string sparkline(const std::vector<double>& ys) {
  static const char* kLevels = " .:-=+*#@";
  if (ys.empty()) return "";
  Range r;
  for (double y : ys) r.include(y);
  const double span = r.span() == 0.0 ? 1.0 : r.span();
  std::string out;
  out.reserve(ys.size());
  for (double y : ys) {
    const auto level =
        static_cast<std::size_t>(std::round((y - r.lo) / span * 8.0));
    out += kLevels[level];
  }
  return out;
}

}  // namespace hh::util
