// Minimal JSON value type, parser, and writer — the substrate of the
// serializable experiment-description layer (analysis/spec.hpp). No
// external dependencies, by design: spec files must parse identically on
// every machine a sweep resumes on.
//
// Scope (deliberately narrow):
//   * values: null, bool, double, string, array, object;
//   * objects preserve INSERTION order (canonical emission depends on it);
//   * numbers are IEEE doubles, formatted with the shortest decimal
//     rendering that parses back bit-identically (format_double) — so
//     dump(parse(dump(x))) == dump(x), the fixed-point property the spec
//     round-trip tests pin;
//   * parse errors carry line/column; spec-level errors add a key path.
#ifndef HH_UTIL_JSON_HPP
#define HH_UTIL_JSON_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace hh::util {

/// Parse failure: what went wrong and where (1-based line/column).
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t line,
                 std::size_t column);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// One JSON value. Cheap to move; objects keep key insertion order.
class Json {
 public:
  using Array = std::vector<Json>;
  /// Ordered key -> value pairs (no de-duplication: last set() wins on
  /// lookup, the parser rejects duplicate keys outright).
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                    // NOLINT
  Json(bool b) : value_(b) {}                                  // NOLINT
  Json(double v) : value_(v) {}                                // NOLINT
  Json(int v) : value_(static_cast<double>(v)) {}              // NOLINT
  Json(unsigned v) : value_(static_cast<double>(v)) {}         // NOLINT
  Json(std::string s) : value_(std::move(s)) {}                // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}         // NOLINT
  Json(const char* s) : value_(std::string(s)) {}              // NOLINT
  Json(Array a) : value_(std::move(a)) {}                      // NOLINT
  Json(Object o) : value_(std::move(o)) {}                     // NOLINT

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(value_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind() == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind() == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind() == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind() == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch (the
  /// spec layer wraps these with path-qualified diagnostics).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Append/overwrite an object member (value stays ordered by first
  /// insertion). Converts a null value to an empty object first.
  void set(std::string key, Json value);

  /// Append an array element (converts null to an empty array first).
  void push_back(Json value);

  [[nodiscard]] bool operator==(const Json& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parse one JSON document (must consume the whole input). Throws
/// JsonParseError. Duplicate object keys are rejected.
[[nodiscard]] Json parse_json(std::string_view text);

/// Serialize. indent <= 0 emits the compact canonical form (no
/// whitespace); indent > 0 pretty-prints with that many spaces per level.
/// Either way, doubles go through format_double, so equal values always
/// serialize to equal bytes.
[[nodiscard]] std::string dump_json(const Json& value, int indent = 0);

/// The shortest decimal rendering of `v` that strtod parses back to
/// exactly `v`. Integral values within 2^53 render without a decimal
/// point ("42", not "4.2e1"). `v` must be finite (JSON has no NaN/Inf).
[[nodiscard]] std::string format_double(double v);

}  // namespace hh::util

#endif  // HH_UTIL_JSON_HPP
