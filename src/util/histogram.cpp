#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace hh::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  HH_EXPECTS(lo < hi);
  HH_EXPECTS(bins >= 1);
}

void Histogram::add(double x) {
  const auto raw = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  const auto clamped = std::clamp<std::ptrdiff_t>(
      raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  HH_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  HH_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::frequency(std::size_t bin) const {
  HH_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  const std::size_t max_count = counts_.empty()
                                    ? 0
                                    : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[b] * bar_width / max_count;
    std::snprintf(line, sizeof(line), "[%9.3f, %9.3f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hh::util
