#include "util/csv.hpp"

#include <charconv>

#include "util/contracts.hpp"

namespace hh::util {

void CsvWriter::header(const std::vector<std::string>& columns) {
  HH_EXPECTS(!header_written_ && !row_open_ && rows_ == 0);
  begin_row();
  for (const auto& c : columns) cell(c);
  end_row();
  header_written_ = true;
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::begin_row() {
  HH_EXPECTS(!row_open_);
  row_open_ = true;
  cell_written_ = false;
}

void CsvWriter::separator() {
  if (cell_written_) *out_ << ',';
  cell_written_ = true;
}

std::string CsvWriter::escape(const std::string& value) {
  const bool needs_quote =
      value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::cell(const std::string& value) {
  HH_EXPECTS(row_open_);
  separator();
  *out_ << escape(value);
}

void CsvWriter::number(double value) {
  HH_EXPECTS(row_open_);
  separator();
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  HH_ASSERT(ec == std::errc());
  out_->write(buf, ptr - buf);
}

void CsvWriter::number(std::int64_t value) {
  HH_EXPECTS(row_open_);
  separator();
  *out_ << value;
}

void CsvWriter::number(std::uint64_t value) {
  HH_EXPECTS(row_open_);
  separator();
  *out_ << value;
}

void CsvWriter::end_row() {
  HH_EXPECTS(row_open_);
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  begin_row();
  for (double v : values) number(v);
  end_row();
}

}  // namespace hh::util
