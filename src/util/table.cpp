#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace hh::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HH_EXPECTS(!headers_.empty());
}

Table& Table::begin_row() {
  if (!rows_.empty()) {
    HH_EXPECTS(rows_.back().size() == headers_.size());
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  HH_EXPECTS(!rows_.empty());
  HH_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back({value, false});
  return *this;
}

Table& Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  HH_EXPECTS(!rows_.empty());
  HH_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back({buf, true});
  return *this;
}

Table& Table::num(std::int64_t value) {
  HH_EXPECTS(!rows_.empty());
  HH_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back({std::to_string(value), true});
  return *this;
}

Table& Table::num(std::uint64_t value) {
  HH_EXPECTS(!rows_.empty());
  HH_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back({std::to_string(value), true});
  return *this;
}

std::string Table::render() const {
  if (!rows_.empty()) {
    HH_EXPECTS(rows_.back().size() == headers_.size());
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].text.size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w, bool right) {
    const std::string fill(w - s.size(), ' ');
    return right ? fill + s : s + fill;
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c], false);
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c].text, widths[c], row[c].right_align);
      out += (c + 1 < headers_.size()) ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

}  // namespace hh::util
