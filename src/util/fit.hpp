// Least-squares model fits used to check asymptotic scaling claims
// empirically: rounds ~ a*log2(n) + b (Theorems 3.2, 4.3) and
// rounds ~ a*k*log2(n) + b (Theorem 5.11).
#ifndef HH_UTIL_FIT_HPP
#define HH_UTIL_FIT_HPP

#include <span>
#include <string>

namespace hh::util {

/// Result of an ordinary least-squares fit y = slope * f(x) + intercept.
struct Fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]

  /// Predicted y at the (already transformed) feature value.
  [[nodiscard]] double predict(double feature) const {
    return slope * feature + intercept;
  }
};

/// OLS fit of y against x. Requires equal sizes, size >= 2.
[[nodiscard]] Fit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fit y ~ a*log2(x) + b. Requires all x > 0.
[[nodiscard]] Fit fit_logarithmic(std::span<const double> x, std::span<const double> y);

/// Fit y ~ a * (k*log2(n)) + b given per-point (n, k) pairs.
[[nodiscard]] Fit fit_klogn(std::span<const double> n, std::span<const double> k,
                            std::span<const double> y);

/// Human-readable one-line description, e.g. "y = 3.21*log2(n) + 1.5 (R^2=0.997)".
[[nodiscard]] std::string describe(const Fit& fit, const std::string& feature_name);

}  // namespace hh::util

#endif  // HH_UTIL_FIT_HPP
