// Minimal CSV writer for experiment outputs (RFC 4180 quoting).
#ifndef HH_UTIL_CSV_HPP
#define HH_UTIL_CSV_HPP

#include <ostream>
#include <string>
#include <vector>

namespace hh::util {

/// Streams rows of mixed string/numeric cells as CSV to any std::ostream.
/// The writer does not own the stream; keep the stream alive while writing.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write the header row. Call at most once, before any data row.
  void header(const std::vector<std::string>& columns);

  /// Begin a new row; cells are appended with cell()/number().
  void begin_row();

  /// Append a string cell (quoted if it contains a delimiter/quote/newline).
  void cell(const std::string& value);

  /// Append a numeric cell with full round-trip precision.
  void number(double value);
  void number(std::int64_t value);
  void number(std::uint64_t value);
  void number(int value) { number(static_cast<std::int64_t>(value)); }
  void number(unsigned value) { number(static_cast<std::uint64_t>(value)); }

  /// Finish the current row (writes the newline).
  void end_row();

  /// Convenience: write a full row of doubles at once.
  void row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void separator();
  static std::string escape(const std::string& value);

  std::ostream* out_;
  bool row_open_ = false;
  bool cell_written_ = false;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace hh::util

#endif  // HH_UTIL_CSV_HPP
