// Aligned console tables — the bench binaries print their "paper table"
// rows through this so the output is readable and diffable.
#ifndef HH_UTIL_TABLE_HPP
#define HH_UTIL_TABLE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace hh::util {

/// Column-aligned text table. Collects rows, then renders with each column
/// padded to its widest cell. Numeric cells are right-aligned.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; must be filled with exactly one cell per column.
  Table& begin_row();

  /// Append a string cell (left-aligned).
  Table& cell(const std::string& value);

  /// Append numeric cells (right-aligned). `digits` controls precision.
  Table& num(double value, int digits = 2);
  Table& num(std::int64_t value);
  Table& num(std::uint64_t value);
  Table& num(int value) { return num(static_cast<std::int64_t>(value)); }
  Table& num(unsigned value) { return num(static_cast<std::uint64_t>(value)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the full table (header, separator, rows) as a string.
  [[nodiscard]] std::string render() const;

 private:
  struct Cell {
    std::string text;
    bool right_align = false;
  };

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace hh::util

#endif  // HH_UTIL_TABLE_HPP
