#include "util/binary_io.hpp"

namespace hh::util {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace hh::util
