// Sweep-service benchmark + CI artifact: an in-process anthill-serve
// instance exercised over real TCP by the streaming client, measuring
//   1. submit-to-first-result latency — wall time from sending the
//      submit line to the accepted event and to the first progress event
//      (the first completed work block);
//   2. cold vs warm wall time — the same spec submitted twice; the warm
//      job must be served entirely from the shared ResultStore;
//   3. dedup hit rate — cached/total on the warm submission (1.0 or the
//      bench fails);
//   4. reconnect overhead — a clean warm submit on a fresh connection vs
//      a client that died right after acceptance and reattached by job id
//      (the DESIGN.md §8 recovery path), both warm so the delta is pure
//      transport + replay overhead.
// Also pins the service's core contract: the warm job's CSV bytes equal
// the cold job's. Emits bench_out/BENCH_service.json (CI artifact).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "anthill.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

hh::analysis::ExperimentSpec workload() {
  hh::analysis::SweepEntry entry;
  entry.name = "service-load";
  entry.trials = 150;
  entry.base_seed = 0x5EED;
  entry.sweep = hh::analysis::SweepSpec("service-load")
                    .base([] {
                      hh::core::SimulationConfig cfg;
                      cfg.num_ants = 256;
                      return cfg;
                    }())
                    .algorithms({hh::core::AlgorithmKind::kSimple,
                                 hh::core::AlgorithmKind::kQuorum})
                    .nest_counts({4, 8}, 0.5);
  hh::analysis::ExperimentSpec spec;
  spec.name = "bench-service";
  spec.sweeps.push_back(std::move(entry));
  return spec;
}

struct SubmitTiming {
  double wall_s = 0.0;
  double first_progress_s = -1.0;  ///< -1 when no progress event arrived
  hh::service::JobOutcome outcome;
};

SubmitTiming timed_submit(hh::service::Client& client,
                          const hh::analysis::ExperimentSpec& spec) {
  SubmitTiming t;
  const auto start = Clock::now();
  t.outcome = client.submit(spec, [&](const hh::util::Json&) {
    if (t.first_progress_s < 0.0) t.first_progress_s = seconds_since(start);
  });
  t.wall_s = seconds_since(start);
  return t;
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "service — resident sweep daemon: latency, warm reuse, dedup",
      "a resubmitted spec must be 100% cache-served and byte-identical");

  const std::filesystem::path store_dir = "bench_out/service_store";
  std::filesystem::remove_all(store_dir);
  hh::service::Server server(hh::service::ServerOptions{
      .store_dir = store_dir.string(),
  });
  server.start();

  hh::service::Client client =
      hh::service::Client::connect("127.0.0.1", server.port());
  if (!client.connected()) {
    std::fprintf(stderr, "connect failed: %s\n", client.error().c_str());
    return 1;
  }

  const hh::analysis::ExperimentSpec spec = workload();
  const SubmitTiming cold = timed_submit(client, spec);
  if (!cold.outcome.ok) {
    std::fprintf(stderr, "cold job failed: %s\n", cold.outcome.error.c_str());
    return 1;
  }
  const SubmitTiming warm = timed_submit(client, spec);
  if (!warm.outcome.ok) {
    std::fprintf(stderr, "warm job failed: %s\n", warm.outcome.error.c_str());
    return 1;
  }

  // 4a. Clean path: fresh connection + warm submit, timed end to end.
  double clean_connect_s = 0.0;
  {
    const auto start = Clock::now();
    hh::service::Client fresh =
        hh::service::Client::connect("127.0.0.1", server.port());
    if (!fresh.connected()) {
      std::fprintf(stderr, "reconnect failed: %s\n", fresh.error().c_str());
      return 1;
    }
    const hh::service::JobOutcome outcome = fresh.submit(spec);
    if (!outcome.ok) {
      std::fprintf(stderr, "clean warm job failed: %s\n",
                   outcome.error.c_str());
      return 1;
    }
    clean_connect_s = seconds_since(start);
  }

  // 4b. Crash path: a raw client submits, reads "accepted", and vanishes
  // (what a killed process looks like to the daemon); a new connection
  // then reattaches by job id and tails the replayed stream.
  std::string dropped_job;
  {
    hh::util::net::Socket raw =
        hh::util::net::Socket::connect_tcp("127.0.0.1", server.port());
    if (!raw.valid()) {
      std::fprintf(stderr, "raw connect failed\n");
      return 1;
    }
    hh::util::net::LineReader reader(raw);
    std::string line;
    if (!reader.next_line(line)) return 1;  // hello
    hh::service::Request request;
    request.op = hh::service::Request::Op::kSubmit;
    request.spec = spec;
    if (!raw.send_all(hh::service::encode_request(request) + "\n")) return 1;
    if (!reader.next_line(line)) return 1;
    const hh::service::Event accepted = hh::service::parse_event(line);
    if (accepted.kind != "accepted") {
      std::fprintf(stderr, "expected accepted, got %s\n",
                   accepted.kind.c_str());
      return 1;
    }
    dropped_job = accepted.body.find("job")->as_string();
  }  // the raw socket closes here — the daemon's sink goes dead mid-job
  double reattach_s = 0.0;
  {
    const auto start = Clock::now();
    hh::service::Client survivor =
        hh::service::Client::connect("127.0.0.1", server.port());
    if (!survivor.connected()) {
      std::fprintf(stderr, "reattach connect failed: %s\n",
                   survivor.error().c_str());
      return 1;
    }
    const hh::service::JobOutcome outcome = survivor.reattach(dropped_job);
    if (!outcome.ok) {
      std::fprintf(stderr, "reattach failed: %s\n", outcome.error.c_str());
      return 1;
    }
    reattach_s = seconds_since(start);
  }

  if (!client.shutdown_server()) {
    std::fprintf(stderr, "shutdown failed: %s\n", client.error().c_str());
    return 1;
  }
  server.wait();

  const double hit_rate =
      warm.outcome.cells_total == 0
          ? 0.0
          : static_cast<double>(warm.outcome.cached) /
                static_cast<double>(warm.outcome.cells_total);
  const bool identical =
      cold.outcome.sweeps.size() == warm.outcome.sweeps.size() &&
      cold.outcome.sweeps[0].rows == warm.outcome.sweeps[0].rows &&
      cold.outcome.sweeps[0].csv_header == warm.outcome.sweeps[0].csv_header;
  const bool hit_ok = hit_rate >= 1.0;

  hh::util::Table table({"phase", "wall s", "first progress s", "cells run",
                         "cells cached"});
  table.begin_row()
      .cell("cold")
      .num(cold.wall_s, 3)
      .num(cold.first_progress_s, 3)
      .num(static_cast<std::uint64_t>(cold.outcome.run))
      .num(static_cast<std::uint64_t>(cold.outcome.cached));
  table.begin_row()
      .cell("warm")
      .num(warm.wall_s, 3)
      .num(warm.first_progress_s, 3)
      .num(static_cast<std::uint64_t>(warm.outcome.run))
      .num(static_cast<std::uint64_t>(warm.outcome.cached));
  std::printf("served sweep (%zu cells, TCP localhost):\n",
              cold.outcome.cells_total);
  std::cout << table.render();
  std::printf("\ndedup hit rate (warm): %.4f (1.0 required: %s)\n", hit_rate,
              hit_ok ? "yes" : "NO");
  std::printf("warm rows identical to cold: %s\n", identical ? "yes" : "NO");
  std::printf(
      "reconnect overhead: clean connect+warm %.3fs, drop+reattach %.3fs "
      "(delta %.3fs)\n",
      clean_connect_s, reattach_s, reattach_s - clean_connect_s);

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::filesystem::remove_all(store_dir);
  const char* path = "bench_out/BENCH_service.json";
  std::ofstream out(path);
  if (out) {
    out << "{\n  \"benchmark\": \"service\",\n";
    out << "  \"cells_total\": " << cold.outcome.cells_total << ",\n";
    out << "  \"cold_wall_seconds\": " << cold.wall_s << ",\n";
    out << "  \"cold_first_progress_seconds\": " << cold.first_progress_s
        << ",\n";
    out << "  \"warm_wall_seconds\": " << warm.wall_s << ",\n";
    out << "  \"warm_first_progress_seconds\": " << warm.first_progress_s
        << ",\n";
    out << "  \"warm_dedup_hit_rate\": " << hit_rate << ",\n";
    out << "  \"warm_identical\": " << (identical ? "true" : "false") << ",\n";
    out << "  \"clean_connect_warm_seconds\": " << clean_connect_s << ",\n";
    out << "  \"reattach_after_drop_seconds\": " << reattach_s << ",\n";
    out << "  \"reconnect_overhead_seconds\": " << (reattach_s - clean_connect_s)
        << "\n";
    out << "}\n";
    std::printf("json: %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }
  return identical && hit_ok ? 0 : 1;
}
