// E12 + E13 + E14 (Section 6): Algorithm 3's robustness to noisy
// perception, crash/Byzantine faults, and partial synchrony — the three
// perturbations the paper conjectures it tolerates, contrasted with
// Algorithm 2, which the paper expects to be fragile ("relies heavily on
// the synchrony in the execution and the precise counting of the number
// of ants").
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;
constexpr std::uint32_t kN = 1024;
constexpr std::uint32_t kK = 4;

hh::analysis::Aggregate measure(hh::core::AlgorithmKind kind,
                                const hh::core::SimulationConfig& base,
                                std::uint64_t salt) {
  hh::core::SimulationConfig cfg = base;
  // Cap the cost of non-converging (fragile) configurations.
  cfg.max_rounds = 4000;
  return hh::analysis::run_algorithm_trials(cfg, kind, kTrials, 0x612 + salt);
}

hh::core::SimulationConfig base_config() {
  hh::core::SimulationConfig cfg;
  cfg.num_ants = kN;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(kK, kK / 2);
  return cfg;
}

void emit_row(hh::util::Table& table, const char* sweep, double level,
              const hh::analysis::Aggregate& simple,
              const hh::analysis::Aggregate& optimal,
              std::vector<std::vector<double>>& csv_rows, double sweep_id) {
  table.begin_row()
      .cell(sweep)
      .num(level, 2)
      .num(100.0 * simple.convergence_rate, 1)
      .num(simple.converged ? simple.rounds.median : 0.0, 1)
      .num(100.0 * optimal.convergence_rate, 1)
      .num(optimal.converged ? optimal.rounds.median : 0.0, 1);
  csv_rows.push_back({sweep_id, level, simple.convergence_rate,
                      simple.converged ? simple.rounds.median : 0.0,
                      optimal.convergence_rate,
                      optimal.converged ? optimal.rounds.median : 0.0});
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E12-E14 / Section 6 — robustness: noise, faults, asynchrony",
      "Algorithm 3 tolerates unbiased noise, a small number of faults, and "
      "partial synchrony; Algorithm 2 is fragile by design");

  // NOTE: the right-hand column pair is Algorithm 2 for the noise/fault/
  // asynchrony sweeps and the rate-boosted variant for the n-estimate
  // sweep (Algorithm 2 does not consult n before its settle extension).
  hh::util::Table table({"sweep", "level", "simple conv%", "simple med",
                         "other conv%", "other med"});
  std::vector<std::vector<double>> csv_rows;

  // E12: unbiased multiplicative count noise.
  for (double sigma : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    auto cfg = base_config();
    cfg.noise.count_sigma = sigma;
    emit_row(table, "count-noise sigma", sigma,
             measure(hh::core::AlgorithmKind::kSimple, cfg, 1),
             measure(hh::core::AlgorithmKind::kOptimal, cfg, 2), csv_rows, 0);
  }
  // E12b: binary quality misperception.
  for (double flip : {0.02, 0.05, 0.10}) {
    auto cfg = base_config();
    cfg.noise.quality_flip_prob = flip;
    emit_row(table, "quality-flip prob", flip,
             measure(hh::core::AlgorithmKind::kSimple, cfg, 3),
             measure(hh::core::AlgorithmKind::kOptimal, cfg, 4), csv_rows, 1);
  }
  // E13: crash faults.
  for (double crash : {0.05, 0.10, 0.20, 0.30}) {
    auto cfg = base_config();
    cfg.faults.crash_fraction = crash;
    emit_row(table, "crash fraction", crash,
             measure(hh::core::AlgorithmKind::kSimple, cfg, 5),
             measure(hh::core::AlgorithmKind::kOptimal, cfg, 6), csv_rows, 2);
  }
  // E13b: Byzantine recruiters (epsilon-agreement; see convergence docs).
  for (double byz : {0.02, 0.05, 0.10}) {
    auto cfg = base_config();
    cfg.faults.byzantine_fraction = byz;
    cfg.convergence_tolerance = 3.0 * byz;
    cfg.stability_rounds = 10;
    emit_row(table, "byzantine fraction", byz,
             measure(hh::core::AlgorithmKind::kSimple, cfg, 7),
             measure(hh::core::AlgorithmKind::kOptimal, cfg, 8), csv_rows, 3);
  }
  // E14: partial synchrony.
  for (double skip : {0.1, 0.2, 0.3, 0.5}) {
    auto cfg = base_config();
    cfg.skip_probability = skip;
    emit_row(table, "round-skip prob", skip,
             measure(hh::core::AlgorithmKind::kSimple, cfg, 9),
             measure(hh::core::AlgorithmKind::kOptimal, cfg, 10), csv_rows, 4);
  }
  // Section 6 bullet 1: ants knowing only an approximation of n. The
  // optimal column keeps exact knowledge (the perturbation applies to the
  // Algorithm-3 family; see AlgorithmParams::n_estimate_error).
  for (double err : {0.25, 0.5, 0.75}) {
    auto cfg = base_config();
    cfg.max_rounds = 4000;
    hh::core::AlgorithmParams params;
    params.n_estimate_error = err;
    const auto simple = hh::analysis::run_algorithm_trials(
        cfg, hh::core::AlgorithmKind::kSimple, kTrials, 0x612 + 11, params);
    const auto boosted = hh::analysis::run_algorithm_trials(
        cfg, hh::core::AlgorithmKind::kRateBoosted, kTrials, 0x612 + 12,
        params);
    emit_row(table, "n-estimate error", err, simple, boosted, csv_rows, 5);
  }

  std::printf("\nn = %u, k = %u (half good), %d trials per cell, round cap "
              "4000:\n",
              kN, kK, kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: the 'simple' columns stay near 100%% with "
      "gracefully growing round counts; the 'optimal' columns collapse "
      "under asynchrony and degrade under noise/faults (its 4-round "
      "schedule and exact-count comparisons break)\n");

  const auto path = hh::analysis::write_csv(
      "sec6_robustness",
      {"sweep", "level", "simple_conv", "simple_median", "optimal_conv",
       "optimal_median"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
