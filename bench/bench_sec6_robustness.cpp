// E12 + E13 + E14 (Section 6): Algorithm 3's robustness to noisy
// perception, crash/Byzantine faults, and partial synchrony — the three
// perturbations the paper conjectures it tolerates, contrasted with
// Algorithm 2, which the paper expects to be fragile ("relies heavily on
// the synchrony in the execution and the precise counting of the number
// of ants").
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;
constexpr std::uint32_t kN = 1024;
constexpr std::uint32_t kK = 4;

hh::core::SimulationConfig base_config() {
  hh::core::SimulationConfig cfg;
  cfg.num_ants = kN;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(kK, kK / 2);
  // Cap the cost of non-converging (fragile) configurations.
  cfg.max_rounds = 4000;
  return cfg;
}

/// One perturbation sweep: `levels` of one knob x {simple, other}. The
/// level axis is outermost, so results come in (simple, other) pairs.
struct Perturbation {
  const char* sweep;
  hh::core::AlgorithmKind other;
  std::uint64_t seed;
  std::vector<double> levels;
  std::function<void(hh::analysis::Scenario&, double)> apply;
  double sweep_id;
};

std::vector<Perturbation> perturbations() {
  using hh::analysis::Scenario;
  constexpr auto kOptimal = hh::core::AlgorithmKind::kOptimal;
  return {
      // E12: unbiased multiplicative count noise.
      {"count-noise sigma", kOptimal, 0x612,
       {0.0, 0.25, 0.5, 0.75, 1.0, 1.5},
       [](Scenario& sc, double sigma) { sc.config.noise.count_sigma = sigma; },
       0},
      // E12b: binary quality misperception.
      {"quality-flip prob", kOptimal, 0x613, {0.02, 0.05, 0.10},
       [](Scenario& sc, double flip) {
         sc.config.noise.quality_flip_prob = flip;
       },
       1},
      // E13: crash faults.
      {"crash fraction", kOptimal, 0x614, {0.05, 0.10, 0.20, 0.30},
       [](Scenario& sc, double crash) {
         sc.config.faults.crash_fraction = crash;
       },
       2},
      // E13b: Byzantine recruiters (epsilon-agreement; see convergence
      // docs).
      {"byzantine fraction", kOptimal, 0x615, {0.02, 0.05, 0.10},
       [](Scenario& sc, double byz) {
         sc.config.faults.byzantine_fraction = byz;
         sc.config.convergence_tolerance = 3.0 * byz;
         sc.config.stability_rounds = 10;
       },
       3},
      // E14: partial synchrony.
      {"round-skip prob", kOptimal, 0x616, {0.1, 0.2, 0.3, 0.5},
       [](Scenario& sc, double skip) { sc.config.skip_probability = skip; },
       4},
      // Section 6 bullet 1: ants knowing only an approximation of n. The
      // other column is the rate-boosted variant (the perturbation
      // applies to the Algorithm-3 family; see
      // AlgorithmParams::n_estimate_error).
      {"n-estimate error", hh::core::AlgorithmKind::kRateBoosted, 0x617,
       {0.25, 0.5, 0.75},
       [](Scenario& sc, double err) { sc.params.n_estimate_error = err; },
       5},
  };
}

}  // namespace

int main(int argc, char** argv) {
  // Standard driver flags; --resume-dir checkpoints all six perturbation
  // sweeps into one store, so the slow non-converging (fragile) cells
  // never recompute.
  hh::analysis::cli::Experiment exp("sec6_robustness", argc, argv);

  const std::vector<Perturbation> sweeps = perturbations();
  for (const Perturbation& p : sweeps) {
    exp.declare(p.sweep,
                hh::analysis::SweepSpec(p.sweep)
                    .base(base_config())
                    .axis("level", p.levels, p.apply)
                    .algorithms({hh::core::AlgorithmKind::kSimple, p.other}),
                kTrials, p.seed);
  }
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E12-E14 / Section 6 — robustness: noise, faults, asynchrony",
      "Algorithm 3 tolerates unbiased noise, a small number of faults, and "
      "partial synchrony; Algorithm 2 is fragile by design");

  // NOTE: the right-hand column pair is Algorithm 2 for the noise/fault/
  // asynchrony sweeps and the rate-boosted variant for the n-estimate
  // sweep (Algorithm 2 does not consult n before its settle extension).
  hh::util::Table table({"sweep", "level", "simple conv%", "simple med",
                         "other conv%", "other med"});
  std::vector<std::vector<double>> csv_rows;
  for (const Perturbation& p : sweeps) {
    const auto batch = exp.run(p.sweep);
    // A --spec file may reshape the sweep; the pairing below assumes the
    // in-code (level x {simple, other}) structure, so demand it.
    HH_EXPECTS(batch.results.size() == 2 * p.levels.size());
    for (std::size_t i = 0; i < p.levels.size(); ++i) {
      // Guard the stride pairing against axis reordering in the spec.
      HH_EXPECTS(batch.results[2 * i].scenario.algorithm == "simple");
      HH_EXPECTS(batch.results[2 * i].scenario.axis_value("level") ==
                 p.levels[i]);
      const auto& simple = batch.results[2 * i].aggregate;
      const auto& other_agg = batch.results[2 * i + 1].aggregate;
      table.begin_row()
          .cell(p.sweep)
          .num(p.levels[i], 2)
          .num(100.0 * simple.convergence_rate, 1)
          .num(simple.converged ? simple.rounds.median : 0.0, 1)
          .num(100.0 * other_agg.convergence_rate, 1)
          .num(other_agg.converged ? other_agg.rounds.median : 0.0, 1);
      csv_rows.push_back({p.sweep_id, p.levels[i], simple.convergence_rate,
                          simple.converged ? simple.rounds.median : 0.0,
                          other_agg.convergence_rate,
                          other_agg.converged ? other_agg.rounds.median
                                              : 0.0});
    }
  }

  std::printf("\nn = %u, k = %u (half good), %d trials per cell, round cap "
              "4000, %u runner threads:\n",
              kN, kK, kTrials, exp.runner().threads());
  std::cout << table.render();
  std::printf(
      "\nexpected shape: the 'simple' columns stay near 100%% with "
      "gracefully growing round counts; the 'optimal' columns collapse "
      "under asynchrony and degrade under noise/faults (its 4-round "
      "schedule and exact-count comparisons break)\n");

  const auto path = hh::analysis::write_csv(
      "sec6_robustness",
      {"sweep", "level", "simple_conv", "simple_median", "optimal_conv",
       "optimal_median"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
