// E4 (Theorem 4.3): Algorithm 2 solves HouseHunting in O(log n) rounds
// with high probability.
//
// Sweeps: rounds vs n at several k (fit against log2 n), and rounds vs k
// at fixed n (the dependence on k must be weak — O(log k) block
// eliminations inside the same O(log n) envelope).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;

hh::analysis::Aggregate measure(std::uint32_t n, std::uint32_t k) {
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(k, k / 2);
  return hh::analysis::run_algorithm_trials(
      cfg, hh::core::AlgorithmKind::kOptimal, kTrials, 0x43 + n * 31 + k);
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E4 / Theorem 4.3 — Algorithm 2 (optimal) scaling",
      "solves HouseHunting in O(log n) rounds w.h.p.");

  const std::vector<std::uint32_t> ns = {1u << 7,  1u << 9,  1u << 11,
                                         1u << 13, 1u << 15, 1u << 17};
  const std::vector<std::uint32_t> ks = {2, 8, 32};

  std::vector<hh::util::Series> series;
  std::vector<std::vector<double>> csv_rows;
  char marker = '2';
  for (std::uint32_t k : ks) {
    hh::util::Table table({"n", "log2(n)", "trials", "conv%", "rounds(med)",
                           "rounds(mean)", "rounds(p95)"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::uint32_t n : ns) {
      if (n / k < 16) continue;  // stay inside the theorem's k = O(n/log n)
      const auto agg = measure(n, k);
      table.begin_row()
          .num(n)
          .num(std::log2(static_cast<double>(n)), 1)
          .num(agg.trials)
          .num(100.0 * agg.convergence_rate, 1)
          .num(agg.rounds.median, 1)
          .num(agg.rounds.mean, 1)
          .num(agg.rounds.p95, 1);
      xs.push_back(n);
      ys.push_back(agg.rounds.median);
      csv_rows.push_back({static_cast<double>(n), static_cast<double>(k),
                          agg.rounds.median, agg.rounds.mean,
                          agg.convergence_rate});
    }
    std::printf("\n[n sweep] k = %u (half the nests good):\n", k);
    std::cout << table.render();
    const auto fit = hh::util::fit_logarithmic(xs, ys);
    hh::analysis::print_fit(fit, "log2(n)", "O(log n) rounds");
    series.push_back({"k=" + std::to_string(k), xs, ys, marker});
    marker = marker == '2' ? '8' : '3';
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "n (ants)";
  opt.y_label = "median rounds";
  opt.title = "\nFigure E4a: Algorithm 2 rounds vs n";
  std::cout << hh::util::plot(series, opt);

  // k sweep at fixed n: growth must be much slower than linear in k.
  constexpr std::uint32_t kFixedN = 1 << 14;
  hh::util::Table ktable(
      {"k", "trials", "conv%", "rounds(med)", "rounds(mean)", "rounds(p95)"});
  std::vector<double> kxs;
  std::vector<double> kys;
  for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto agg = measure(kFixedN, k);
    ktable.begin_row()
        .num(k)
        .num(agg.trials)
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.mean, 1)
        .num(agg.rounds.p95, 1);
    kxs.push_back(k);
    kys.push_back(agg.rounds.median);
    csv_rows.push_back({static_cast<double>(kFixedN), static_cast<double>(k),
                        agg.rounds.median, agg.rounds.mean,
                        agg.convergence_rate});
  }
  std::printf("\n[k sweep] n = %u:\n", kFixedN);
  std::cout << ktable.render();
  const auto kfit = hh::util::fit_logarithmic(kxs, kys);
  hh::analysis::print_fit(
      kfit, "log2(k)",
      "k enters only through an O(log k) nest-elimination phase");

  const auto path = hh::analysis::write_csv(
      "thm_4_3_optimal", {"n", "k", "median", "mean", "conv_rate"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
