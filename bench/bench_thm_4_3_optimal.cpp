// E4 (Theorem 4.3): Algorithm 2 solves HouseHunting in O(log n) rounds
// with high probability.
//
// Sweeps: rounds vs n at several k (fit against log2 n), and rounds vs k
// at fixed n (the dependence on k must be weak — O(log k) block
// eliminations inside the same O(log n) envelope).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;

/// The "rounds vs n at fixed k" scenario list, filtered to the theorem's
/// k = O(n / log n) regime (a custom filter, so the sweep is declared as
/// its concrete scenarios; --dump-spec emits the filtered list).
std::vector<hh::analysis::Scenario> n_scenarios(
    std::uint32_t k, const std::vector<std::uint32_t>& ns) {
  auto scenarios = hh::analysis::SweepSpec("thm43/k=" + std::to_string(k))
                       .algorithm(hh::core::AlgorithmKind::kOptimal)
                       .colony_sizes(ns)
                       .nest_counts({k}, 0.5)
                       .expand();
  std::erase_if(scenarios, [&](const hh::analysis::Scenario& sc) {
    return sc.config.num_ants / k < 16;
  });
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("thm_4_3_optimal", argc, argv);

  const std::vector<std::uint32_t> ns = {1u << 7,  1u << 9,  1u << 11,
                                         1u << 13, 1u << 15, 1u << 17};
  const std::vector<std::uint32_t> ks = {2, 8, 32};
  constexpr std::uint32_t kFixedN = 1 << 14;

  for (std::uint32_t k : ks) {
    exp.declare("k=" + std::to_string(k), n_scenarios(k, ns), kTrials,
                0x43 + k);
  }
  exp.declare("ksweep",
              hh::analysis::SweepSpec("thm43/ksweep")
                  .algorithm(hh::core::AlgorithmKind::kOptimal)
                  .colony_sizes({kFixedN})
                  .nest_counts({2, 4, 8, 16, 32, 64}, 0.5),
              kTrials, 0x43F);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E4 / Theorem 4.3 — Algorithm 2 (optimal) scaling",
      "solves HouseHunting in O(log n) rounds w.h.p.");

  std::vector<hh::util::Series> series;
  std::vector<std::vector<double>> csv_rows;
  char marker = '2';
  for (std::uint32_t k : ks) {
    hh::util::Table table({"n", "log2(n)", "trials", "conv%", "rounds(med)",
                           "rounds(mean)", "rounds(p95)"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& result :
         exp.run("k=" + std::to_string(k)).results) {
      const auto& agg = result.aggregate;
      const double n = result.scenario.axis_value("n");
      table.begin_row()
          .num(n, 0)
          .num(std::log2(n), 1)
          .num(static_cast<std::uint64_t>(agg.trials))
          .num(100.0 * agg.convergence_rate, 1)
          .num(agg.rounds.median, 1)
          .num(agg.rounds.mean, 1)
          .num(agg.rounds.p95, 1);
      xs.push_back(n);
      ys.push_back(agg.rounds.median);
      csv_rows.push_back({n, static_cast<double>(k), agg.rounds.median,
                          agg.rounds.mean, agg.convergence_rate});
    }
    std::printf("\n[n sweep] k = %u (half the nests good):\n", k);
    std::cout << table.render();
    const auto fit = hh::util::fit_logarithmic(xs, ys);
    hh::analysis::print_fit(fit, "log2(n)", "O(log n) rounds");
    series.push_back({"k=" + std::to_string(k), xs, ys, marker});
    marker = marker == '2' ? '8' : '3';
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "n (ants)";
  opt.y_label = "median rounds";
  opt.title = "\nFigure E4a: Algorithm 2 rounds vs n";
  std::cout << hh::util::plot(series, opt);

  // k sweep at fixed n: growth must be much slower than linear in k.
  const auto kbatch = exp.run("ksweep");
  hh::util::Table ktable(
      {"k", "trials", "conv%", "rounds(med)", "rounds(mean)", "rounds(p95)"});
  std::vector<double> kxs;
  std::vector<double> kys;
  for (const auto& result : kbatch.results) {
    const auto& agg = result.aggregate;
    const double k = result.scenario.axis_value("k");
    ktable.begin_row()
        .num(k, 0)
        .num(static_cast<std::uint64_t>(agg.trials))
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.mean, 1)
        .num(agg.rounds.p95, 1);
    kxs.push_back(k);
    kys.push_back(agg.rounds.median);
    csv_rows.push_back({static_cast<double>(kFixedN), k, agg.rounds.median,
                        agg.rounds.mean, agg.convergence_rate});
  }
  std::printf("\n[k sweep] n = %u:\n", kFixedN);
  std::cout << ktable.render();
  const auto kfit = hh::util::fit_logarithmic(kxs, kys);
  hh::analysis::print_fit(
      kfit, "log2(k)",
      "k enters only through an O(log k) nest-elimination phase");

  const auto path = hh::analysis::write_csv(
      "thm_4_3_optimal", {"n", "k", "median", "mean", "conv_rate"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
