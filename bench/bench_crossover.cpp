// E9 (Section 4 vs Section 5): the crossover between Algorithm 2
// (optimal, O(log n)) and Algorithm 3 (simple, O(k log n)).
//
// At small k the simple algorithm's lower constants win; as k grows its
// linear-in-k factor loses to the optimal algorithm's flat O(log n).
// The paper's qualitative claim: Algorithm 3 "is not optimal, except when
// k is assumed to be constant".
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;

hh::analysis::Aggregate measure(hh::core::AlgorithmKind kind, std::uint32_t n,
                                std::uint32_t k) {
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(k, k / 2);
  return hh::analysis::run_algorithm_trials(cfg, kind, kTrials,
                                            0x90 + n * 17 + k);
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E9 — crossover: Algorithm 2 (optimal) vs Algorithm 3 (simple)",
      "simple wins at constant k; optimal wins as k grows (O(log n) vs "
      "O(k log n))");

  constexpr std::uint32_t kN = 1 << 14;
  const std::vector<std::uint32_t> ks = {2, 4, 8, 16, 32, 64};

  hh::util::Table table({"k", "simple med", "optimal med", "ratio s/o",
                         "winner"});
  std::vector<double> xs;
  std::vector<double> simple_med;
  std::vector<double> optimal_med;
  std::vector<std::vector<double>> csv_rows;
  std::uint32_t crossover_k = 0;
  for (std::uint32_t k : ks) {
    const auto simple = measure(hh::core::AlgorithmKind::kSimple, kN, k);
    const auto optimal = measure(hh::core::AlgorithmKind::kOptimal, kN, k);
    const double ratio = simple.rounds.median / optimal.rounds.median;
    if (crossover_k == 0 && ratio > 1.0) crossover_k = k;
    table.begin_row()
        .num(k)
        .num(simple.rounds.median, 1)
        .num(optimal.rounds.median, 1)
        .num(ratio, 2)
        .cell(ratio < 1.0 ? "simple" : "optimal");
    xs.push_back(k);
    simple_med.push_back(simple.rounds.median);
    optimal_med.push_back(optimal.rounds.median);
    csv_rows.push_back({static_cast<double>(k), simple.rounds.median,
                        optimal.rounds.median, ratio});
  }
  std::printf("\nn = %u, half the nests good, %d trials per cell:\n", kN,
              kTrials);
  std::cout << table.render();
  if (crossover_k != 0) {
    std::printf("\ncrossover: optimal first beats simple at k = %u\n",
                crossover_k);
  } else {
    std::printf("\nno crossover within the swept k range\n");
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "k (candidate nests)";
  opt.y_label = "median rounds";
  opt.title = "\nFigure E9: rounds vs k at n = 2^14";
  std::cout << hh::util::plot(
      {{"simple", xs, simple_med, 's'}, {"optimal", xs, optimal_med, 'o'}},
      opt);

  const auto path = hh::analysis::write_csv(
      "crossover", {"k", "simple_median", "optimal_median", "ratio"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
