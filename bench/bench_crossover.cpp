// E9 (Section 4 vs Section 5): the crossover between Algorithm 2
// (optimal, O(log n)) and Algorithm 3 (simple, O(k log n)).
//
// At small k the simple algorithm's lower constants win; as k grows its
// linear-in-k factor loses to the optimal algorithm's flat O(log n).
// The paper's qualitative claim: Algorithm 3 "is not optimal, except when
// k is assumed to be constant".
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("crossover", argc, argv);

  constexpr int kTrials = 20;
  constexpr std::uint32_t kN = 1 << 14;
  const std::vector<std::uint32_t> ks = {2, 4, 8, 16, 32, 64};

  hh::core::SimulationConfig base;
  base.num_ants = kN;
  exp.declare("crossover",
              hh::analysis::SweepSpec("crossover")
                  .base(base)
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kOptimal})
                  .nest_counts(ks, 0.5),
              kTrials, 0x90);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E9 — crossover: Algorithm 2 (optimal) vs Algorithm 3 (simple)",
      "simple wins at constant k; optimal wins as k grows (O(log n) vs "
      "O(k log n))");
  const auto batch = exp.run("crossover");
  // Expansion order: algorithm varies slowest — simple block, then optimal.
  const auto& results = batch.results;
  // A --spec file may reshape the sweep; the stride pairing assumes the
  // in-code ({simple, optimal} x k) grid, so demand the shape.
  HH_EXPECTS(results.size() == 2 * ks.size());

  hh::util::Table table({"k", "simple med", "optimal med", "ratio s/o",
                         "winner"});
  std::vector<double> xs;
  std::vector<double> simple_med;
  std::vector<double> optimal_med;
  std::vector<std::vector<double>> csv_rows;
  std::uint32_t crossover_k = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    // Guard the stride pairing against axis reordering in the spec.
    HH_EXPECTS(results[i].scenario.algorithm == "simple");
    HH_EXPECTS(results[ks.size() + i].scenario.algorithm == "optimal");
    HH_EXPECTS(results[i].scenario.axis_value("k") == ks[i]);
    const auto& simple = results[i].aggregate;
    const auto& optimal = results[ks.size() + i].aggregate;
    const double ratio = simple.rounds.median / optimal.rounds.median;
    if (crossover_k == 0 && ratio > 1.0) crossover_k = ks[i];
    table.begin_row()
        .num(ks[i])
        .num(simple.rounds.median, 1)
        .num(optimal.rounds.median, 1)
        .num(ratio, 2)
        .cell(ratio < 1.0 ? "simple" : "optimal");
    xs.push_back(ks[i]);
    simple_med.push_back(simple.rounds.median);
    optimal_med.push_back(optimal.rounds.median);
    csv_rows.push_back({static_cast<double>(ks[i]), simple.rounds.median,
                        optimal.rounds.median, ratio});
  }
  std::printf("\nn = %u, half the nests good, %d trials per cell, %u runner "
              "threads:\n",
              kN, kTrials, exp.runner().threads());
  std::cout << table.render();
  if (crossover_k != 0) {
    std::printf("\ncrossover: optimal first beats simple at k = %u\n",
                crossover_k);
  } else {
    std::printf("\nno crossover within the swept k range\n");
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "k (candidate nests)";
  opt.y_label = "median rounds";
  opt.title = "\nFigure E9: rounds vs k at n = 2^14";
  std::cout << hh::util::plot(
      {{"simple", xs, simple_med, 's'}, {"optimal", xs, optimal_med, 'o'}},
      opt);

  const auto path = hh::analysis::write_csv(
      "crossover", {"k", "simple_median", "optimal_median", "ratio"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
