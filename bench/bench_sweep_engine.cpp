// Sweep-engine microbenchmark: trials/second through analysis::Runner at
// 1 thread vs N threads on a fixed workload, plus a determinism check
// (the parallel batch must be bit-identical to the serial one).
//
// Emits a console table and bench_out/BENCH_sweep_engine.json so the
// perf trajectory of the batch engine is machine-readable across PRs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr std::size_t kTrials = 96;
constexpr std::uint64_t kSeed = 0x5EEE;

hh::analysis::SweepSpec workload() {
  hh::core::SimulationConfig base;
  base.num_ants = 512;
  return hh::analysis::SweepSpec("engine-load")
      .base(base)
      .algorithms({hh::core::AlgorithmKind::kSimple,
                   hh::core::AlgorithmKind::kOptimal})
      .nest_counts({4, 8}, 0.5);
}

struct Measurement {
  unsigned threads = 0;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  hh::analysis::BatchResult batch;
};

Measurement measure(unsigned threads,
                    const std::vector<hh::analysis::Scenario>& scenarios,
                    std::size_t trials, std::uint64_t seed) {
  Measurement m;
  m.threads = threads;
  const hh::analysis::Runner runner(hh::analysis::RunnerOptions{threads});
  const auto start = std::chrono::steady_clock::now();
  m.batch = runner.run(scenarios, trials, seed);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  m.seconds = elapsed.count();
  m.trials_per_sec =
      static_cast<double>(scenarios.size() * trials) / m.seconds;
  return m;
}

bool identical(const hh::analysis::BatchResult& a,
               const hh::analysis::BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t s = 0; s < a.results.size(); ++s) {
    const auto& ta = a.results[s].trials;
    const auto& tb = b.results[s].trials;
    if (ta.size() != tb.size()) return false;
    for (std::size_t t = 0; t < ta.size(); ++t) {
      if (ta[t].converged != tb[t].converged || ta[t].rounds != tb[t].rounds ||
          ta[t].winner != tb[t].winner ||
          ta[t].recruitments != tb[t].recruitments) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("sweep_engine", argc, argv);
  exp.declare("engine-load", workload(), kTrials, kSeed);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "sweep-engine — Runner throughput at 1 vs N threads",
      "the batch engine must scale with cores and stay bit-identical");

  const auto& scenarios = exp.scenarios("engine-load");
  const std::size_t trials = exp.trials("engine-load");
  const std::uint64_t seed = exp.base_seed("engine-load");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1};
  if (hw > 1) thread_counts.push_back(hw);
  thread_counts.push_back(2 * hw);  // oversubscription sanity point

  std::vector<Measurement> measurements;
  for (unsigned threads : thread_counts) {
    measurements.push_back(measure(threads, scenarios, trials, seed));
  }

  bool deterministic = true;
  for (std::size_t i = 1; i < measurements.size(); ++i) {
    deterministic =
        deterministic && identical(measurements[0].batch, measurements[i].batch);
  }

  hh::util::Table table({"threads", "seconds", "trials/sec", "speedup"});
  for (const Measurement& m : measurements) {
    table.begin_row()
        .num(m.threads)
        .num(m.seconds, 3)
        .num(m.trials_per_sec, 1)
        .num(m.trials_per_sec / measurements[0].trials_per_sec, 2);
  }
  std::printf("%zu scenarios x %zu trials, n = 512, hardware threads = %u:\n",
              scenarios.size(), trials, hw);
  std::cout << table.render();
  std::printf("\nbit-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");

  // Machine-readable perf record.
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const char* path = "bench_out/BENCH_sweep_engine.json";
  std::ofstream out(path);
  if (out) {
    out << "{\n  \"benchmark\": \"sweep_engine\",\n";
    out << "  \"scenarios\": " << scenarios.size()
        << ",\n  \"trials_per_scenario\": " << trials << ",\n";
    out << "  \"deterministic\": " << (deterministic ? "true" : "false")
        << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const Measurement& m = measurements[i];
      out << "    {\"threads\": " << m.threads
          << ", \"seconds\": " << m.seconds
          << ", \"trials_per_sec\": " << m.trials_per_sec << "}"
          << (i + 1 < measurements.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("json: %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }
  return deterministic ? 0 : 1;
}
