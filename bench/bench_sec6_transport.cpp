// E18 (Section 6): "Distinguishing between direct transport and tandem
// runs may also be interesting, paired with a more fine-grained runtime
// analysis."
//
// The model charges one round per action; in nature tandem runs are ~3x
// slower than direct transports (Section 2, citing [21]). Under a
// synchronous-barrier reading (a round lasts as long as its slowest
// action: 3 units if any tandem run happened, 1 otherwise) algorithms
// that shift recruitment into a committed transport phase — Algorithm 2's
// final state, the quorum rule's post-quorum stage — close part of their
// round-count gap to Algorithm 3, whose recruitment is tandem throughout.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

/// Per-trial digest: decision round, barrier-weighted duration, and the
/// recruitment-mode split.
struct TransportTrial {
  bool converged = false;
  double rounds = 0.0;
  double weighted = 0.0;
  double tandem = 0.0;
  double transports = 0.0;
};

TransportTrial measure(const hh::analysis::Scenario& scenario,
                       std::uint64_t seed) {
  auto sim = scenario.make_simulation(seed);
  const auto result = sim->run();
  TransportTrial out;
  out.converged = result.converged;
  if (!result.converged) return out;
  out.rounds = static_cast<double>(result.rounds);
  out.weighted = hh::analysis::weighted_duration(result);
  out.tandem = static_cast<double>(result.total_tandem_runs);
  out.transports = static_cast<double>(result.total_transports);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("sec6_transport", argc, argv);

  constexpr int kTrials = 20;
  auto base = hh::core::SimulationConfig{};
  base.record_trajectories = true;
  exp.declare("transport",
              hh::analysis::SweepSpec("transport")
                  .base(base)
                  .colony_nest_pairs({{1024, 4}, {4096, 8}}, 0.5)
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kOptimal,
                               hh::core::AlgorithmKind::kQuorum}),
              kTrials, 0x618);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E18 / Section 6 — tandem runs vs direct transports",
      "a fine-grained runtime analysis distinguishing the two recruitment "
      "modes (transports ~3x faster [21])");

  const auto& scenarios = exp.scenarios("transport");
  const auto digests = exp.runner().map(
      scenarios, exp.trials("transport"), exp.base_seed("transport"),
      measure);

  hh::util::Table table({"algorithm", "n", "k", "conv%", "rounds(med)",
                         "time(med, 3:1)", "time/round", "tandem runs",
                         "transports"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    std::vector<double> rounds;
    std::vector<double> weighted;
    double tandem = 0.0;
    double transports = 0.0;
    std::uint32_t converged = 0;
    for (const TransportTrial& t : digests[s]) {
      if (!t.converged) continue;
      ++converged;
      rounds.push_back(t.rounds);
      weighted.push_back(t.weighted);
      tandem += t.tandem;
      transports += t.transports;
    }
    const double conv_rate = static_cast<double>(converged) /
                             static_cast<double>(exp.trials("transport"));
    const double med_rounds = converged ? hh::util::median(rounds) : 0.0;
    const double med_weighted = converged ? hh::util::median(weighted) : 0.0;
    const double mean_tandem = converged ? tandem / converged : 0.0;
    const double mean_transports = converged ? transports / converged : 0.0;
    table.begin_row()
        .cell(scenarios[s].algorithm)
        .num(scenarios[s].axis_value("n"), 0)
        .num(scenarios[s].axis_value("k"), 0)
        .num(100.0 * conv_rate, 1)
        .num(med_rounds, 1)
        .num(med_weighted, 1)
        .num(med_rounds > 0 ? med_weighted / med_rounds : 0.0, 2)
        .num(mean_tandem, 0)
        .num(mean_transports, 0);
    csv_rows.push_back({scenarios[s].axis_value("n"),
                        scenarios[s].axis_value("k"), med_rounds,
                        med_weighted, mean_tandem, mean_transports});
  }
  std::cout << table.render();
  std::printf(
      "\nexpected shape: simple never leaves the tandem mode (zero "
      "transports; every other round carries a tandem run, so time/round "
      "~= 2). Optimal's strict phase separation gives it a pure-transport "
      "endgame (time/round ~= 1), closing the wall-clock gap to simple "
      "even where its round count is higher. Quorum transports heavily "
      "but tandem runs persist alongside until the end, so its barrier "
      "cost stays at the tandem rate\n");

  const auto path = hh::analysis::write_csv(
      "sec6_transport",
      {"n", "k", "median_rounds", "median_weighted", "tandem", "transports"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
