// E18 (Section 6): "Distinguishing between direct transport and tandem
// runs may also be interesting, paired with a more fine-grained runtime
// analysis."
//
// The model charges one round per action; in nature tandem runs are ~3x
// slower than direct transports (Section 2, citing [21]). Under a
// synchronous-barrier reading (a round lasts as long as its slowest
// action: 3 units if any tandem run happened, 1 otherwise) algorithms
// that shift recruitment into a committed transport phase — Algorithm 2's
// final state, the quorum rule's post-quorum stage — close part of their
// round-count gap to Algorithm 3, whose recruitment is tandem throughout.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 20;

struct TransportStats {
  double median_rounds = 0.0;
  double median_weighted = 0.0;
  double tandem = 0.0;
  double transports = 0.0;
  double convergence_rate = 0.0;
};

TransportStats measure(hh::core::AlgorithmKind kind, std::uint32_t n,
                       std::uint32_t k) {
  std::vector<double> rounds;
  std::vector<double> weighted;
  double tandem = 0.0;
  double transports = 0.0;
  std::uint32_t converged = 0;
  for (int t = 0; t < kTrials; ++t) {
    hh::core::SimulationConfig cfg;
    cfg.num_ants = n;
    cfg.qualities = hh::core::SimulationConfig::binary_qualities(k, k / 2);
    cfg.seed = 0x618 + t * 43;
    cfg.record_trajectories = true;
    hh::core::Simulation sim(cfg, kind);
    const auto result = sim.run();
    if (!result.converged) continue;
    ++converged;
    rounds.push_back(result.rounds);
    weighted.push_back(hh::analysis::weighted_duration(result));
    tandem += static_cast<double>(result.total_tandem_runs);
    transports += static_cast<double>(result.total_transports);
  }
  TransportStats out;
  out.convergence_rate = static_cast<double>(converged) / kTrials;
  if (converged > 0) {
    out.median_rounds = hh::util::median(rounds);
    out.median_weighted = hh::util::median(weighted);
    out.tandem = tandem / converged;
    out.transports = transports / converged;
  }
  return out;
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E18 / Section 6 — tandem runs vs direct transports",
      "a fine-grained runtime analysis distinguishing the two recruitment "
      "modes (transports ~3x faster [21])");

  hh::util::Table table({"algorithm", "n", "k", "conv%", "rounds(med)",
                         "time(med, 3:1)", "time/round", "tandem runs",
                         "transports"});
  std::vector<std::vector<double>> csv_rows;
  for (const auto& [n, k] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1024, 4}, {4096, 8}}) {
    for (auto kind :
         {hh::core::AlgorithmKind::kSimple, hh::core::AlgorithmKind::kOptimal,
          hh::core::AlgorithmKind::kQuorum}) {
      const auto stats = measure(kind, n, k);
      table.begin_row()
          .cell(std::string(hh::core::algorithm_name(kind)))
          .num(n)
          .num(k)
          .num(100.0 * stats.convergence_rate, 1)
          .num(stats.median_rounds, 1)
          .num(stats.median_weighted, 1)
          .num(stats.median_rounds > 0
                   ? stats.median_weighted / stats.median_rounds
                   : 0.0,
               2)
          .num(stats.tandem, 0)
          .num(stats.transports, 0);
      csv_rows.push_back({static_cast<double>(n), static_cast<double>(k),
                          stats.median_rounds, stats.median_weighted,
                          stats.tandem, stats.transports});
    }
  }
  std::cout << table.render();
  std::printf(
      "\nexpected shape: simple never leaves the tandem mode (zero "
      "transports; every other round carries a tandem run, so time/round "
      "~= 2). Optimal's strict phase separation gives it a pure-transport "
      "endgame (time/round ~= 1), closing the wall-clock gap to simple "
      "even where its round count is higher. Quorum transports heavily "
      "but tandem runs persist alongside until the end, so its barrier "
      "cost stays at the tandem rate\n");

  const auto path = hh::analysis::write_csv(
      "sec6_transport",
      {"n", "k", "median_rounds", "median_weighted", "tandem", "transports"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
