// E11 (Section 6, "Non-binary nest qualities"): weighting the recruitment
// probability by a real-valued nest quality makes the colony converge to
// a high-quality nest "without significantly effecting runtime".
//
// Measurement: nests with qualities spread over (0, 1]; compare the
// winner-quality distribution and running time of the quality-aware
// variant against plain Algorithm 3 (which treats every positive-quality
// nest as equally good).
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

/// P[the single best nest wins | converged], from per-trial winners.
double best_win_rate(const hh::analysis::ScenarioResult& result) {
  const auto& qualities = result.scenario.config.qualities;
  std::size_t best = 0;
  for (std::size_t i = 1; i < qualities.size(); ++i) {
    if (qualities[i] > qualities[best]) best = i;
  }
  const auto best_nest = static_cast<hh::env::NestId>(best + 1);
  std::uint32_t wins = 0;
  for (const auto& trial : result.trials) {
    wins += (trial.converged && trial.winner == best_nest) ? 1 : 0;
  }
  return result.aggregate.converged == 0
             ? 0.0
             : static_cast<double>(wins) /
                   static_cast<double>(result.aggregate.converged);
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("sec6_quality", argc, argv);

  constexpr int kTrials = 40;
  constexpr std::uint32_t kN = 1024;

  exp.declare(
      "non-binary-quality",
      hh::analysis::SweepSpec("non-binary-quality")
          .base([] {
            hh::core::SimulationConfig cfg;
            cfg.num_ants = kN;
            return cfg;
          }())
          .quality_sets(
              {{"spread", {1.0, 0.8, 0.6, 0.4, 0.2, 0.1}},
               {"one-clear-best", {1.0, 0.3, 0.3, 0.3}},
               {"close-call", {1.0, 0.9, 0.5, 0.5}},
               {"many-poor",
                {0.9, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15}}})
          .algorithms({hh::core::AlgorithmKind::kQualityAware,
                       hh::core::AlgorithmKind::kSimple}),
      kTrials, 0x611);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E11 / Section 6 — non-binary nest qualities",
      "quality-weighted recruitment converges to a high-quality nest "
      "without significantly affecting runtime");
  const auto batch = exp.run("non-binary-quality");

  hh::util::Table table({"scenario", "algorithm", "conv%", "E[winner q]",
                         "P[best wins]", "rounds(med)"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    // Quality set is the outer axis; algorithm alternates within it.
    const auto& result = batch.results[i];
    const auto& agg = result.aggregate;
    const bool aware = result.scenario.algorithm == "quality-aware";
    const double wins = best_win_rate(result);
    table.begin_row()
        .cell(std::string(result.scenario.axis_label("qualities")))
        .cell(aware ? "quality-aware" : "simple (blind)")
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.mean_winner_quality, 3)
        .num(wins, 2)
        .num(agg.rounds.median, 1);
    csv_rows.push_back({result.scenario.axis_value("qualities"),
                        aware ? 1.0 : 0.0, agg.mean_winner_quality, wins,
                        agg.rounds.median});
  }
  std::printf("\nn = %u, %d trials per cell:\n", kN, kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: quality-aware lifts E[winner quality] and P[best "
      "wins] well above the blind baseline at comparable round counts\n");

  const auto path = hh::analysis::write_csv(
      "sec6_quality",
      {"scenario", "aware", "mean_winner_quality", "best_win_rate",
       "median_rounds"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
