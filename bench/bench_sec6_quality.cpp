// E11 (Section 6, "Non-binary nest qualities"): weighting the recruitment
// probability by a real-valued nest quality makes the colony converge to
// a high-quality nest "without significantly effecting runtime".
//
// Measurement: nests with qualities spread over (0, 1]; compare the
// winner-quality distribution and running time of the quality-aware
// variant against plain Algorithm 3 (which treats every positive-quality
// nest as equally good).
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 40;
constexpr std::uint32_t kN = 1024;

struct QualityOutcome {
  double mean_winner_quality = 0.0;
  double best_win_rate = 0.0;
  double median_rounds = 0.0;
  double convergence_rate = 0.0;
};

QualityOutcome run(hh::core::AlgorithmKind kind,
                   const std::vector<double>& qualities) {
  // Identify the best nest for the win-rate statistic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < qualities.size(); ++i) {
    if (qualities[i] > qualities[best]) best = i;
  }
  const auto best_nest = static_cast<hh::env::NestId>(best + 1);

  double quality_sum = 0.0;
  std::uint32_t best_wins = 0;
  std::uint32_t converged = 0;
  std::vector<double> rounds;
  for (int t = 0; t < kTrials; ++t) {
    hh::core::SimulationConfig cfg;
    cfg.num_ants = kN;
    cfg.qualities = qualities;
    cfg.seed = 0x611 + t * 41;
    hh::core::Simulation sim(cfg, kind);
    const auto result = sim.run();
    if (!result.converged) continue;
    ++converged;
    quality_sum += result.winner_quality;
    best_wins += result.winner == best_nest ? 1 : 0;
    rounds.push_back(result.rounds);
  }
  QualityOutcome out;
  out.convergence_rate = static_cast<double>(converged) / kTrials;
  if (converged > 0) {
    out.mean_winner_quality = quality_sum / converged;
    out.best_win_rate = static_cast<double>(best_wins) / converged;
    out.median_rounds = hh::util::median(rounds);
  }
  return out;
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E11 / Section 6 — non-binary nest qualities",
      "quality-weighted recruitment converges to a high-quality nest "
      "without significantly affecting runtime");

  const std::vector<std::pair<const char*, std::vector<double>>> scenarios = {
      {"spread", {1.0, 0.8, 0.6, 0.4, 0.2, 0.1}},
      {"one-clear-best", {1.0, 0.3, 0.3, 0.3}},
      {"close-call", {1.0, 0.9, 0.5, 0.5}},
      {"many-poor", {0.9, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15}}};

  hh::util::Table table({"scenario", "algorithm", "conv%", "E[winner q]",
                         "P[best wins]", "rounds(med)"});
  std::vector<std::vector<double>> csv_rows;
  double scenario_id = 0.0;
  for (const auto& [name, qualities] : scenarios) {
    const auto aware = run(hh::core::AlgorithmKind::kQualityAware, qualities);
    const auto plain = run(hh::core::AlgorithmKind::kSimple, qualities);
    table.begin_row()
        .cell(name)
        .cell("quality-aware")
        .num(100.0 * aware.convergence_rate, 1)
        .num(aware.mean_winner_quality, 3)
        .num(aware.best_win_rate, 2)
        .num(aware.median_rounds, 1);
    table.begin_row()
        .cell(name)
        .cell("simple (blind)")
        .num(100.0 * plain.convergence_rate, 1)
        .num(plain.mean_winner_quality, 3)
        .num(plain.best_win_rate, 2)
        .num(plain.median_rounds, 1);
    csv_rows.push_back({scenario_id, 1.0, aware.mean_winner_quality,
                        aware.best_win_rate, aware.median_rounds});
    csv_rows.push_back({scenario_id, 0.0, plain.mean_winner_quality,
                        plain.best_win_rate, plain.median_rounds});
    scenario_id += 1.0;
  }
  std::printf("\nn = %u, %d trials per cell:\n", kN, kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: quality-aware lifts E[winner quality] and P[best "
      "wins] well above the blind baseline at comparable round counts\n");

  const auto path = hh::analysis::write_csv(
      "sec6_quality",
      {"scenario", "aware", "mean_winner_quality", "best_win_rate",
       "median_rounds"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
