// E10 (Section 6, "Improved running time"): recruiting at a boosted rate
// ~ c(i,r)/n * k~(r) removes the Theta(k) factor from Algorithm 3's
// running time, conjectured to give O(log^c n) convergence.
//
// Measurement: rounds vs k at fixed n (simple grows ~linearly, boosted
// stays nearly flat) and rounds vs n at large k (both ~log n but with a
// ~k-fold constant separation).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("sec6_rate_boosted", argc, argv);

  constexpr int kTrials = 20;
  constexpr std::uint32_t kN = 1 << 14;
  constexpr std::uint32_t kK = 32;
  const std::vector<std::uint32_t> ks = {2, 4, 8, 16, 32, 64};

  exp.declare("ksweep",
              hh::analysis::SweepSpec("rate-boosted/ksweep")
                  .base([] {
                    hh::core::SimulationConfig cfg;
                    cfg.num_ants = kN;
                    return cfg;
                  }())
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kRateBoosted})
                  .nest_counts(ks, 0.5),
              kTrials, 0x610);
  exp.declare("nsweep",
              hh::analysis::SweepSpec("rate-boosted/nsweep")
                  .algorithm(hh::core::AlgorithmKind::kRateBoosted)
                  .nest_counts({kK}, 0.5)
                  .colony_sizes({1u << 11, 1u << 13, 1u << 15, 1u << 17}),
              kTrials, 0x611);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E10 / Section 6 — rate-boosted recruitment vs Algorithm 3",
      "recruiting at rate ~ (c/n)*k~(r) removes the Theta(k) factor "
      "(conjectured O(log^c n))");
  const auto batch = exp.run("ksweep");

  hh::util::Table ktable(
      {"k", "simple med", "boosted med", "speedup", "boosted conv%"});
  // The stride pairing assumes the in-code ({simple, boosted} x k) grid.
  HH_EXPECTS(batch.results.size() == 2 * ks.size());
  std::vector<double> xs;
  std::vector<double> simple_med;
  std::vector<double> boosted_med;
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    // Algorithm is the outer axis: simple block first, then boosted.
    HH_EXPECTS(batch.results[i].scenario.algorithm == "simple");
    HH_EXPECTS(batch.results[ks.size() + i].scenario.algorithm ==
               "rate-boosted");
    const auto& simple = batch.results[i].aggregate;
    const auto& boosted = batch.results[ks.size() + i].aggregate;
    ktable.begin_row()
        .num(ks[i])
        .num(simple.rounds.median, 1)
        .num(boosted.rounds.median, 1)
        .num(simple.rounds.median / boosted.rounds.median, 2)
        .num(100.0 * boosted.convergence_rate, 1);
    xs.push_back(ks[i]);
    simple_med.push_back(simple.rounds.median);
    boosted_med.push_back(boosted.rounds.median);
    csv_rows.push_back({static_cast<double>(ks[i]), simple.rounds.median,
                        boosted.rounds.median});
  }
  std::printf("\n[k sweep] n = %u:\n", kN);
  std::cout << ktable.render();
  const auto simple_fit = hh::util::fit_linear(xs, simple_med);
  const auto boosted_fit = hh::util::fit_linear(xs, boosted_med);
  std::printf("per-k slope: simple %.2f rounds/nest, boosted %.2f rounds/nest\n",
              simple_fit.slope, boosted_fit.slope);

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "k (candidate nests)";
  opt.y_label = "median rounds";
  opt.title = "\nFigure E10: boosted vs simple as k grows (n = 2^14)";
  std::cout << hh::util::plot(
      {{"simple", xs, simple_med, 's'}, {"boosted", xs, boosted_med, 'b'}},
      opt);

  // n sweep at large k: the boosted variant should scale ~polylog n.
  const auto nbatch = exp.run("nsweep");
  hh::util::Table ntable({"n", "log2(n)", "boosted med", "boosted p95"});
  std::vector<double> nsv;
  std::vector<double> meds;
  for (const auto& result : nbatch.results) {
    const auto& agg = result.aggregate;
    const double n = result.scenario.axis_value("n");
    ntable.begin_row()
        .num(n, 0)
        .num(std::log2(n), 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.p95, 1);
    nsv.push_back(n);
    meds.push_back(agg.rounds.median);
    csv_rows.push_back({n + 0.5, 0.0, agg.rounds.median});
  }
  std::printf("\n[n sweep] k = %u:\n", kK);
  std::cout << ntable.render();
  const auto nfit = hh::util::fit_logarithmic(nsv, meds);
  hh::analysis::print_fit(nfit, "log2(n)", "polylog-n rounds at large k");

  const auto path = hh::analysis::write_csv(
      "sec6_rate_boosted", {"k_or_n", "simple_median", "boosted_median"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
