// Resumable-sweep benchmark + CI smoke driver.
//
// Default mode measures the two levers the checkpointed engine adds on
// top of the PR-1 Runner and the PR-2 packed hot path:
//   1. arena reuse — reset-and-rerun vs reconstruct-per-trial at small n,
//      where construction is the biggest relative cost, and
//   2. warm resume — a second run_resumable over a completed store must
//      serve >= 99% of cells from disk and produce a bit-identical batch.
// Emits a console table and bench_out/BENCH_resume.json (uploaded as a CI
// artifact alongside BENCH_hotpath.json).
//
// Smoke mode (the CI resume job drives this):
//   bench_resume sweep --store DIR --csv PATH [--threads N] [--trials N]
// runs a fixed workload resumably into DIR and writes the tidy CSV to
// PATH. CI runs it once under `timeout -s KILL` (a real mid-run kill),
// again to completion, then cold into a fresh store at a different thread
// count, and byte-compares the CSVs.
//
// Compact mode (the chaos smoke drives this to crash inside compaction
// via the store.compact.* fault points):
//   bench_resume compact --store DIR
// opens DIR, merges every indexed record into one shard, and prints the
// before/after shard and record counts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "anthill.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string tidy_csv(const hh::analysis::BatchResult& batch) {
  std::ostringstream out;
  hh::util::CsvWriter csv(out);
  csv.header(batch.tidy_csv_header());
  for (const auto& row : batch.tidy_rows()) csv.row(row);
  return out.str();
}

// --- smoke mode --------------------------------------------------------------

/// The smoke workload is deliberately heavy enough (seconds, not
/// milliseconds) that CI's `timeout -s KILL` lands mid-run.
hh::analysis::SweepSpec smoke_workload() {
  hh::core::SimulationConfig base;
  base.num_ants = 1024;
  return hh::analysis::SweepSpec("smoke")
      .base(base)
      .algorithms({hh::core::AlgorithmKind::kSimple,
                   hh::core::AlgorithmKind::kQuorum})
      .nest_counts({4, 8}, 0.5);
}

int run_smoke(int argc, char** argv) {
  std::string store_dir;
  std::string csv_path;
  unsigned threads = 0;
  std::size_t trials = 400;
  for (int i = 2; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--store") == 0) {
      store_dir = next("--store");
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = next("--csv");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(std::stoul(next("--threads")));
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      trials = std::stoul(next("--trials"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (store_dir.empty() || csv_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_resume sweep --store DIR --csv PATH "
                 "[--threads N] [--trials N]\n");
    return 2;
  }
  const auto scenarios = smoke_workload().expand();
  hh::analysis::ResultStore store(store_dir);
  std::printf("store: %s (%zu cached records, %zu dropped)\n",
              store.directory().string().c_str(), store.size(),
              store.dropped_records());
  const hh::analysis::Runner runner(hh::analysis::RunnerOptions{threads});
  hh::analysis::ResumeReport report;
  const auto start = Clock::now();
  const auto batch =
      runner.run_resumable(scenarios, trials, /*base_seed=*/0x5E5, store,
                           &report);
  std::printf("cells: %zu total, %zu cached, %zu run in %.2fs at %u threads\n",
              report.cells_total, report.cells_cached, report.cells_run,
              seconds_since(start), runner.threads());
  std::ofstream out(csv_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  out << tidy_csv(batch);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}

// --- compact mode ------------------------------------------------------------

int run_compact(int argc, char** argv) {
  std::string store_dir;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (store_dir.empty()) {
    std::fprintf(stderr, "usage: bench_resume compact --store DIR\n");
    return 2;
  }
  hh::analysis::ResultStore store(store_dir);
  const std::size_t shards_before = store.shard_files();
  std::printf("before: %zu records in %zu shards (%zu dropped)\n",
              store.size(), shards_before, store.dropped_records());
  const auto report = store.compact();
  std::printf("compacted: %zu records merged, %zu old shards removed\n",
              report.records, report.removed_files);
  return 0;
}

// --- benchmark mode ----------------------------------------------------------

struct ArenaMeasurement {
  std::uint32_t n = 0;
  double rebuild_trials_per_sec = 0.0;
  double arena_trials_per_sec = 0.0;
  double speedup = 0.0;
};

/// Reconstruct-per-trial vs reset-and-rerun, single-threaded, same seeds.
ArenaMeasurement measure_arena(std::uint32_t n, std::size_t trials) {
  ArenaMeasurement m;
  m.n = n;
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(4, 2);
  const auto scenario = hh::analysis::Scenario::of(
      "arena", hh::core::AlgorithmKind::kSimple, cfg);

  double sink = 0.0;
  auto start = Clock::now();
  for (std::size_t t = 0; t < trials; ++t) {
    sink += hh::analysis::run_scenario_trial(
                scenario, hh::analysis::trial_seed(1, 0, t))
                .rounds;
  }
  const double rebuild_s = seconds_since(start);

  hh::analysis::TrialArena arena;
  double arena_sink = 0.0;
  start = Clock::now();
  for (std::size_t t = 0; t < trials; ++t) {
    arena_sink +=
        arena.run(scenario, hh::analysis::trial_seed(1, 0, t)).rounds;
  }
  const double arena_s = seconds_since(start);
  if (sink != arena_sink) {
    std::fprintf(stderr, "arena diverged from rebuild at n=%u!\n", n);
    std::exit(1);
  }
  m.rebuild_trials_per_sec = static_cast<double>(trials) / rebuild_s;
  m.arena_trials_per_sec = static_cast<double>(trials) / arena_s;
  m.speedup = m.arena_trials_per_sec / m.rebuild_trials_per_sec;
  return m;
}

int run_bench() {
  hh::analysis::print_banner(
      "resume — checkpointed sweeps: arena reuse + warm-resume skip rate",
      "resume must skip completed cells; reset-and-rerun must beat "
      "reconstruction at small n");

  // 1. Arena reuse at small n (construction amortization).
  constexpr std::size_t kArenaTrials = 3000;
  std::vector<ArenaMeasurement> arena;
  for (const std::uint32_t n : {32u, 128u, 512u}) {
    arena.push_back(measure_arena(n, kArenaTrials));
  }
  hh::util::Table arena_table(
      {"n", "rebuild trials/s", "arena trials/s", "speedup"});
  for (const ArenaMeasurement& m : arena) {
    arena_table.begin_row()
        .num(m.n)
        .num(m.rebuild_trials_per_sec, 0)
        .num(m.arena_trials_per_sec, 0)
        .num(m.speedup, 3);
  }
  std::printf("arena reuse (simple, k=4, %zu trials, 1 thread):\n",
              kArenaTrials);
  std::cout << arena_table.render();

  // 2. Cold vs warm resumable run.
  const auto scenarios = hh::analysis::SweepSpec("resume-load")
                             .base([] {
                               hh::core::SimulationConfig cfg;
                               cfg.num_ants = 256;
                               return cfg;
                             }())
                             .algorithms({hh::core::AlgorithmKind::kSimple,
                                          hh::core::AlgorithmKind::kQuorum})
                             .nest_counts({4, 8}, 0.5)
                             .expand();
  constexpr std::size_t kTrials = 300;
  constexpr std::uint64_t kSeed = 0x5EED;
  const std::filesystem::path store_dir = "bench_out/resume_store";
  std::filesystem::remove_all(store_dir);
  const hh::analysis::Runner runner;

  hh::analysis::ResumeReport cold_report;
  auto start = Clock::now();
  std::string cold_csv;
  {
    hh::analysis::ResultStore store(store_dir);
    cold_csv = tidy_csv(runner.run_resumable(scenarios, kTrials, kSeed, store,
                                             &cold_report));
  }
  const double cold_s = seconds_since(start);

  hh::analysis::ResumeReport warm_report;
  start = Clock::now();
  std::string warm_csv;
  {
    hh::analysis::ResultStore store(store_dir);
    warm_csv = tidy_csv(runner.run_resumable(scenarios, kTrials, kSeed, store,
                                             &warm_report));
  }
  const double warm_s = seconds_since(start);
  std::filesystem::remove_all(store_dir);

  const double skip_fraction =
      warm_report.cells_total == 0
          ? 0.0
          : static_cast<double>(warm_report.cells_cached) /
                static_cast<double>(warm_report.cells_total);
  const bool identical = cold_csv == warm_csv;
  const bool skip_ok = skip_fraction >= 0.99;

  hh::util::Table resume_table(
      {"phase", "seconds", "cells run", "cells cached"});
  resume_table.begin_row()
      .cell("cold")
      .num(cold_s, 3)
      .num(static_cast<std::uint64_t>(cold_report.cells_run))
      .num(static_cast<std::uint64_t>(cold_report.cells_cached));
  resume_table.begin_row()
      .cell("warm")
      .num(warm_s, 3)
      .num(static_cast<std::uint64_t>(warm_report.cells_run))
      .num(static_cast<std::uint64_t>(warm_report.cells_cached));
  std::printf("\nresumable run (%zu scenarios x %zu trials, %u threads):\n",
              scenarios.size(), kTrials, runner.threads());
  std::cout << resume_table.render();
  std::printf("\nwarm skip fraction: %.4f (>= 0.99 required: %s)\n",
              skip_fraction, skip_ok ? "yes" : "NO");
  std::printf("warm CSV bit-identical to cold: %s\n", identical ? "yes" : "NO");

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const char* path = "bench_out/BENCH_resume.json";
  std::ofstream out(path);
  if (out) {
    out << "{\n  \"benchmark\": \"resume\",\n";
    out << "  \"arena_reuse\": [\n";
    for (std::size_t i = 0; i < arena.size(); ++i) {
      const ArenaMeasurement& m = arena[i];
      out << "    {\"n\": " << m.n
          << ", \"rebuild_trials_per_sec\": " << m.rebuild_trials_per_sec
          << ", \"arena_trials_per_sec\": " << m.arena_trials_per_sec
          << ", \"speedup\": " << m.speedup << "}"
          << (i + 1 < arena.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"cells_total\": " << warm_report.cells_total << ",\n";
    out << "  \"cold_seconds\": " << cold_s << ",\n";
    out << "  \"warm_seconds\": " << warm_s << ",\n";
    out << "  \"warm_cells_run\": " << warm_report.cells_run << ",\n";
    out << "  \"warm_skip_fraction\": " << skip_fraction << ",\n";
    out << "  \"warm_identical\": " << (identical ? "true" : "false") << "\n";
    out << "}\n";
    std::printf("json: %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }
  return identical && skip_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0) {
    return run_smoke(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "compact") == 0) {
    return run_compact(argc, argv);
  }
  return run_bench();
}
