// Lattice walker workload: first-passage times on the honeycomb lattice
// backend, swept over the fast/slow motility mix.
//
// The colony's decision layer is trivial here (walk until the target,
// then idle) — the point of the workload is the BACKEND seam: the same
// Simulation driver, registry door, sweep spec layer, scheduler, and
// packed/scalar engine pair run a world that shares no geometry with the
// paper's home-nest model. The swept knob is lattice.fast_fraction — the
// share of ants on the high-persistence motility lane — and the readout
// is rounds until (1 - tolerance) of the colony has hit the target site,
// plus per-ant first-passage statistics from a representative run.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("lattice_walkers", argc, argv);

  constexpr int kTrials = 8;
  constexpr std::uint32_t kN = 256;
  const std::vector<double> fast_fractions = {0.0, 0.25, 0.5, 0.75, 1.0};

  hh::core::SimulationConfig base;
  base.num_ants = kN;
  base.qualities = {1.0};  // the single pseudo-nest: "reached the target"
  base.env_backend = hh::env::BackendKind::kLattice;
  base.lattice.width = 16;
  base.lattice.height = 16;
  base.lattice.persist_fast = 0.9;
  base.lattice.persist_slow = 0.3;
  base.convergence_tolerance = 0.05;  // converged once 95% have arrived

  // A custom axis is not declaratively serializable, so --dump-spec
  // emits the EXPANDED concrete scenario list — still a loss-free round
  // trip through bench_spec --spec.
  exp.declare(
      "lattice_walkers",
      hh::analysis::SweepSpec("lattice_walkers")
          .base(base)
          .algorithm(std::string(hh::core::kLatticeWalkerAlgorithmName))
          .axis("fast_fraction", fast_fractions,
                [](hh::analysis::Scenario& s, double v) {
                  s.config.lattice.fast_fraction = v;
                }),
      kTrials, 0x1A771CE);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "lattice walkers — first passage vs motility mix",
      "honeycomb torus, persistent walkers; fast_fraction of the colony "
      "on the high-persistence lane");
  const auto batch = exp.run("lattice_walkers");
  const auto& results = batch.results;
  HH_EXPECTS(results.size() == fast_fractions.size());

  hh::util::Table table({"fast frac", "rounds med", "rounds p95",
                         "fpt mean", "fpt median", "fpt max", "unreached"});
  std::vector<double> xs;
  std::vector<double> med;
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    HH_EXPECTS(results[i].scenario.axis_value("fast_fraction") ==
               fast_fractions[i]);
    const auto& agg = results[i].aggregate;

    // First-passage detail is per-run data (RunResult::first_passage),
    // deliberately outside the fixed-size TrialStats records — rerun one
    // representative trial of this cell through the public spec.
    hh::core::SimulationConfig cfg = results[i].scenario.config;
    cfg.seed = batch.base_seed;
    const auto spec = hh::core::AlgorithmRegistry::instance().find(
        results[i].scenario.algorithm);
    HH_EXPECTS(spec != nullptr);
    hh::core::Simulation sim(cfg, *spec, results[i].scenario.params);
    const hh::core::RunResult run = sim.run();
    const auto fpt =
        hh::analysis::first_passage_summary(run.first_passage);

    table.begin_row()
        .num(fast_fractions[i], 2)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.p95, 1)
        .num(fpt.mean, 1)
        .num(fpt.median, 1)
        .num(static_cast<double>(fpt.max), 0)
        .num(static_cast<double>(fpt.unreached), 0);
    xs.push_back(fast_fractions[i]);
    med.push_back(agg.rounds.median);
    csv_rows.push_back({fast_fractions[i], agg.rounds.median,
                        agg.rounds.p95, fpt.mean, fpt.median,
                        static_cast<double>(fpt.max),
                        static_cast<double>(fpt.unreached)});
  }
  std::printf("\nn = %u on a %ux%u torus, %d trials per cell, %u runner "
              "threads:\n",
              kN, base.lattice.width, base.lattice.height, kTrials,
              exp.runner().threads());
  std::cout << table.render();

  hh::util::PlotOptions opt;
  opt.x_label = "fast_fraction";
  opt.y_label = "median rounds to 95% arrival";
  opt.title = "\nlattice walkers: arrival time vs motility mix";
  std::cout << hh::util::plot({{"rounds", xs, med, 'w'}}, opt);

  const auto path = hh::analysis::write_csv(
      "lattice_walkers",
      {"fast_fraction", "rounds_median", "rounds_p95", "fpt_mean",
       "fpt_median", "fpt_max", "fpt_unreached"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
