// E17 — engine microbenchmarks (google-benchmark): cost of the pairing
// process, of a full environment round, and of end-to-end simulation.
#include <benchmark/benchmark.h>

#include "anthill.hpp"

namespace {

void BM_PermutationPairing(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<hh::env::RecruitRequest> requests;
  for (std::size_t i = 0; i < m; ++i) {
    requests.push_back({static_cast<hh::env::AntId>(i), i % 2 == 0, 1});
  }
  hh::env::PermutationPairing model;
  hh::util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.pair(requests, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_PermutationPairing)->Range(64, 1 << 16);

void BM_UniformProposalPairing(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<hh::env::RecruitRequest> requests;
  for (std::size_t i = 0; i < m; ++i) {
    requests.push_back({static_cast<hh::env::AntId>(i), i % 2 == 0, 1});
  }
  hh::env::UniformProposalPairing model;
  hh::util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.pair(requests, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_UniformProposalPairing)->Range(64, 1 << 16);

void BM_EnvironmentRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::env::EnvironmentConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = {1.0, 1.0, 0.0, 0.0};
  cfg.seed = 3;
  hh::env::Environment environment(std::move(cfg));
  std::vector<hh::env::Action> search(n, hh::env::Action::search());
  environment.step(search);
  std::vector<hh::env::Action> recruit(n, hh::env::Action::recruit(true, 1));
  // Legalize: everyone must know nest 1; search granted knowledge of a
  // random nest only, so disable enforcement-sensitive targets by having
  // each ant advertise the nest it found.
  for (hh::env::AntId a = 0; a < n; ++a) {
    recruit[a] = hh::env::Action::recruit(a % 2 == 0,
                                          environment.location(a));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(environment.step(recruit));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EnvironmentRound)->Range(256, 1 << 17);

/// End-to-end simulation through the Scenario + registry path (the same
/// construction Runner::run performs per trial).
void BM_AlgorithmEndToEnd(benchmark::State& state, const char* algorithm) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(4, 2);
  const auto scenario = hh::analysis::Scenario{
      .name = algorithm, .algorithm = algorithm, .config = cfg};
  std::uint64_t seed = 1;
  std::uint64_t total_rounds = 0;
  for (auto _ : state) {
    const auto result = scenario.make_simulation(seed++)->run();
    total_rounds += result.rounds_executed;
    benchmark::DoNotOptimize(result);
  }
  state.counters["ant_rounds/s"] = benchmark::Counter(
      static_cast<double>(total_rounds) * n, benchmark::Counter::kIsRate);
}

void BM_SimpleAlgorithmEndToEnd(benchmark::State& state) {
  BM_AlgorithmEndToEnd(state, "simple");
}
BENCHMARK(BM_SimpleAlgorithmEndToEnd)->Range(256, 1 << 14);

void BM_OptimalAlgorithmEndToEnd(benchmark::State& state) {
  BM_AlgorithmEndToEnd(state, "optimal");
}
BENCHMARK(BM_OptimalAlgorithmEndToEnd)->Range(256, 1 << 14);

void BM_RumorSpread(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    hh::core::RumorSpreadConfig cfg;
    cfg.num_ants = n;
    cfg.num_nests = 4;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(hh::core::run_rumor_spread(cfg));
  }
}
BENCHMARK(BM_RumorSpread)->Range(1 << 10, 1 << 18);

}  // namespace
