// E17 — the hot-path benchmark suite (google-benchmark): steady-state cost
// of the pairing process, of an environment round, of the packed vs
// per-object engine round, and end-to-end trial throughput per engine.
//
// Emits bench_out/BENCH_hotpath.json (google-benchmark JSON) so the perf
// trajectory of the hot path is machine-readable across PRs. Headline
// numbers to watch:
//   * BM_TrialThroughput_simple_{scalar,packed}/4096 — the packed engine
//     must sustain >= 3x the per-object trial throughput (the
//     BM_PackedSpeedup_* entries report the ratio directly as a counter);
//   * allocs_per_round == 0 on every steady-state round benchmark — the
//     zero-allocation invariant of Environment::step().
//
// CI runs this with a small --benchmark_min_time; run without flags for
// full precision.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "anthill.hpp"
// Counting allocator hooks (replaces global new/delete for this binary):
// the allocs_per_round counters measure the zero-allocation invariant,
// not just speed.
#include "counting_alloc.hpp"

namespace {

using hh::testing::allocation_count;

// ---------------------------------------------------------------------------
// Pairing process, steady state (scratch reused across rounds).

void BM_Pairing(benchmark::State& state, hh::env::PairingKind kind) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<hh::env::RecruitRequest> requests;
  for (std::size_t i = 0; i < m; ++i) {
    requests.push_back({static_cast<hh::env::AntId>(i), i % 2 == 0, 1});
  }
  const auto model = hh::env::make_pairing_model(kind);
  hh::util::Rng rng(1);
  hh::env::PairingScratch scratch;
  scratch.reserve(m);
  model->pair_into(requests, rng, scratch);  // warm the workspace
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    model->pair_into(requests, rng, scratch);
    allocs += allocation_count() - before;
    benchmark::DoNotOptimize(scratch.recruited_by.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_Pairing, permutation, hh::env::PairingKind::kPermutation)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);
BENCHMARK_CAPTURE(BM_Pairing, uniform_proposal,
                  hh::env::PairingKind::kUniformProposal)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);
BENCHMARK_CAPTURE(BM_Pairing, counter_lottery, hh::env::PairingKind::kCounter)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);

// The engine-facing pairing round: the keyed SoA call every recruit-bearing
// round makes (counter models draw from per-slot streams keyed on
// (seed, round, slot); sequential models from the shared rng). This is the
// per-round cost the packed optimal engine pays from round 2 on, isolated
// from the rest of the environment. allocs_per_round must be 0 for ALL
// models — tools/bench_diff --require-zero-allocs gates these rows.
void BM_PairingRound(benchmark::State& state, hh::env::PairingKind kind) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> active(m);
  for (std::size_t i = 0; i < m; ++i) active[i] = i % 2 == 0 ? 1 : 0;
  const auto model = hh::env::make_pairing_model(kind);
  hh::util::Rng rng(1);
  hh::env::PairingScratch scratch;
  scratch.reserve(m);
  std::uint32_t round = 0;
  model->pair_active(active, hh::env::PairingCtx{rng, 0xABCD, ++round},
                     scratch);  // warm the workspace
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    model->pair_active(active, hh::env::PairingCtx{rng, 0xABCD, ++round},
                       scratch);
    allocs += allocation_count() - before;
    benchmark::DoNotOptimize(scratch.recruited_by.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PairingRound, permutation,
                  hh::env::PairingKind::kPermutation)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_PairingRound, uniform_proposal,
                  hh::env::PairingKind::kUniformProposal)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_PairingRound, counter_lottery,
                  hh::env::PairingKind::kCounter)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_RandomPermutationInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> perm;
  perm.reserve(n);
  hh::util::Rng rng(1);
  for (auto _ : state) {
    hh::util::random_permutation_into(perm, n, rng);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RandomPermutationInto)->RangeMultiplier(8)->Range(64, 1 << 16);

// ---------------------------------------------------------------------------
// One environment round, steady state.
//
// Earlier versions of this benchmark measured a drifting distribution: the
// environment mutated across iterations (knowledge spread, counts moved),
// so late iterations timed different work than early ones. The fixture now
// runs warm-up rounds first: with a fixed all-recruit action vector the
// per-round state is stationary once the knowledge table reaches its fixed
// point (locations reset to the home nest every round, counts repeat, and
// knowledge growth is monotone and bounded), so every timed iteration
// draws from the same distribution.

void BM_EnvironmentRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::env::EnvironmentConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = {1.0, 1.0, 0.0, 0.0};
  cfg.seed = 3;
  hh::env::Environment environment(std::move(cfg));
  std::vector<hh::env::Action> search(n, hh::env::Action::search());
  environment.step(search);
  // Legalize: each ant advertises the nest it found in round 1 (go/recruit
  // require knowledge of the target).
  std::vector<hh::env::Action> recruit(n);
  for (hh::env::AntId a = 0; a < n; ++a) {
    recruit[a] =
        hh::env::Action::recruit(a % 2 == 0, environment.location(a));
  }
  for (int warmup = 0; warmup < 64; ++warmup) environment.step(recruit);

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    benchmark::DoNotOptimize(environment.step(recruit));
    allocs += allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EnvironmentRound)->RangeMultiplier(8)->Range(256, 1 << 17);

// ---------------------------------------------------------------------------
// One lattice-backend round, steady state (the second env::Backend): an
// all-search round is stationary by construction — walker positions move,
// but every iteration does the same per-ant work. allocs_per_round == 0
// extends the zero-allocation invariant to the new world.

void BM_LatticeRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::env::LatticeConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  hh::env::LatticeBackend world(n, cfg, 3);
  std::vector<hh::env::MaskedOp> op(n, hh::env::MaskedOp::kSearch);
  const std::vector<hh::env::NestId> targets(n, 0);
  world.step_masked_go_quiet(op, targets);  // warm-up round

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    world.step_masked_go_quiet(op, targets);
    allocs += allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LatticeRound)->RangeMultiplier(8)->Range(256, 1 << 17);

// One ENGINE round on the lattice, per engine, through the Simulation
// driver (scheduler consult + masked dispatch + convergence mirror).
// reset(seed) is allocation-free, so periodic resets keep the workload
// from saturating (every walker parked on the target would time idles).

void BM_LatticeEngineRound(benchmark::State& state,
                           hh::core::EngineKind engine) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = {1.0};
  cfg.seed = 5;
  cfg.max_rounds = ~0u;
  cfg.engine = engine;
  cfg.lattice.width = 32;
  cfg.lattice.height = 32;
  cfg.env_backend = hh::env::BackendKind::kLattice;
  const auto spec = hh::core::AlgorithmRegistry::instance().find(
      hh::core::kLatticeWalkerAlgorithmName);
  auto sim = std::make_unique<hh::core::Simulation>(cfg, *spec);
  for (int warmup = 0; warmup < 8; ++warmup) sim->step();

  std::uint64_t allocs = 0;
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    // Rewind outside the alloc accounting — the reset itself is not part
    // of a round's cost. The per-object engine cannot reset in place
    // (reset() returns false); reconstruct it instead.
    if ((++iteration & 1023u) == 0 && !sim->reset(iteration)) {
      sim = std::make_unique<hh::core::Simulation>(cfg, *spec);
    }
    const std::uint64_t before = allocation_count();
    benchmark::DoNotOptimize(sim->step());
    allocs += allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_LatticeEngineRound, scalar, hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(256, 1 << 16);
BENCHMARK_CAPTURE(BM_LatticeEngineRound, packed, hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(256, 1 << 16);

// ---------------------------------------------------------------------------
// One engine round, steady state: the per-object ant loop (virtual
// decide/observe per ant) against the packed SoA pass, identical
// simulations otherwise. Runs keep stepping past convergence, which is
// exactly the steady state we want to time.

void BM_EngineRound(benchmark::State& state, hh::core::EngineKind engine) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(4, 2);
  cfg.seed = 5;
  cfg.max_rounds = ~0u;
  cfg.engine = engine;
  hh::core::Simulation sim(cfg, hh::core::AlgorithmKind::kSimple);
  for (int warmup = 0; warmup < 8; ++warmup) sim.step();

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    benchmark::DoNotOptimize(sim.step());
    allocs += allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EngineRound, scalar, hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);
BENCHMARK_CAPTURE(BM_EngineRound, packed, hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);

// ---------------------------------------------------------------------------
// One FAULT-INJECTED engine round, steady state: crash + Byzantine lanes
// force every round through the masked SoA path (packed) vs the wrapper
// chain (scalar). allocs_per_round must stay 0 on the packed rows — the
// masked entry points extend the zero-allocation invariant to mixed
// rounds.

void BM_FaultedEngineRound(benchmark::State& state,
                           hh::core::EngineKind engine) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(4, 2);
  cfg.seed = 7;
  cfg.max_rounds = ~0u;
  cfg.engine = engine;
  cfg.faults.crash_fraction = 0.1;
  cfg.faults.byzantine_fraction = 0.05;
  cfg.convergence_tolerance = 0.25;
  hh::core::Simulation sim(cfg, hh::core::AlgorithmKind::kSimple);
  for (int warmup = 0; warmup < 16; ++warmup) sim.step();

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    benchmark::DoNotOptimize(sim.step());
    allocs += allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_FaultedEngineRound, scalar, hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);
BENCHMARK_CAPTURE(BM_FaultedEngineRound, packed, hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);

// ---------------------------------------------------------------------------
// End-to-end trial throughput through the Scenario + registry path (the
// same construction Runner::run performs per trial), per engine.

void BM_TrialThroughput(benchmark::State& state, const char* algorithm,
                        hh::core::EngineKind engine) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(8, 4);
  cfg.engine = engine;
  const auto scenario = hh::analysis::Scenario{
      .name = algorithm, .algorithm = algorithm, .config = cfg};
  // Cycle a FIXED seed set: trial lengths are heavy-tailed (a split colony
  // runs to the round cap), so engines must sample identical workloads
  // regardless of how many iterations the harness grants each of them.
  std::uint64_t iteration = 0;
  std::uint64_t total_rounds = 0;
  for (auto _ : state) {
    const auto result =
        scenario.make_simulation(1 + (iteration++ % 16))->run();
    total_rounds += result.rounds_executed;
    benchmark::DoNotOptimize(result);
  }
  state.counters["trials_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["ant_rounds_per_s"] = benchmark::Counter(
      static_cast<double>(total_rounds) * n, benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_TrialThroughput, simple_scalar, "simple",
                  hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);
BENCHMARK_CAPTURE(BM_TrialThroughput, simple_packed, "simple",
                  hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 16);
BENCHMARK_CAPTURE(BM_TrialThroughput, quorum_scalar, "quorum",
                  hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);
BENCHMARK_CAPTURE(BM_TrialThroughput, quorum_packed, "quorum",
                  hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);
BENCHMARK_CAPTURE(BM_TrialThroughput, optimal_scalar, "optimal",
                  hh::core::EngineKind::kScalar)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);
BENCHMARK_CAPTURE(BM_TrialThroughput, optimal_packed, "optimal",
                  hh::core::EngineKind::kPacked)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14);

// ---------------------------------------------------------------------------
// The headline ratio, measured in one place so the JSON carries it
// directly: interleaved scalar/packed trials (same seeds), counter
// "speedup" = scalar time / packed time.

void BM_PackedSpeedup(benchmark::State& state, const char* algorithm,
                      std::uint32_t k, double crash_fraction = 0.0,
                      double byzantine_fraction = 0.0,
                      hh::env::PairingKind pairing =
                          hh::env::PairingKind::kPermutation) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(k, k / 2);
  cfg.faults.crash_fraction = crash_fraction;
  cfg.faults.byzantine_fraction = byzantine_fraction;
  cfg.pairing = pairing;
  if (byzantine_fraction > 0.0) cfg.convergence_tolerance = 0.25;
  auto scenario = hh::analysis::Scenario{
      .name = algorithm, .algorithm = algorithm, .config = cfg};
  std::uint64_t iteration = 0;
  double scalar_seconds = 0.0;
  double packed_seconds = 0.0;
  using clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const std::uint64_t seed = 1 + (iteration++ % 16);
    scenario.config.engine = hh::core::EngineKind::kScalar;
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(scenario.make_simulation(seed)->run());
    const auto t1 = clock::now();
    scenario.config.engine = hh::core::EngineKind::kPacked;
    benchmark::DoNotOptimize(scenario.make_simulation(seed)->run());
    const auto t2 = clock::now();
    scalar_seconds += std::chrono::duration<double>(t1 - t0).count();
    packed_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  state.counters["speedup"] =
      benchmark::Counter(scalar_seconds / packed_seconds);
}
BENCHMARK_CAPTURE(BM_PackedSpeedup, simple_k8, "simple", 8u)->Arg(4096);
BENCHMARK_CAPTURE(BM_PackedSpeedup, simple_k4, "simple", 4u)->Arg(4096);
BENCHMARK_CAPTURE(BM_PackedSpeedup, quorum_k8, "quorum", 8u)->Arg(4096);

// The end-to-end headline for Algorithm 2 (optimal), settle on and off,
// through the masked per-ant-phase path. The *_counter rows rerun the same
// workload under counter-lottery pairing: pairing happens every round >= 2
// of Algorithm 2, so a draw-free O(m) pairing round is where the packed
// engine's serial-RNG bottleneck breaks (the acceptance bar is speedup
// >= 2.2 on optimal_k8_counter at n=4096).
void BM_PackedOptimalSpeedup(benchmark::State& state, const char* algorithm,
                             std::uint32_t k,
                             hh::env::PairingKind pairing =
                                 hh::env::PairingKind::kPermutation) {
  BM_PackedSpeedup(state, algorithm, k, 0.0, 0.0, pairing);
}
BENCHMARK_CAPTURE(BM_PackedOptimalSpeedup, optimal_k8, "optimal", 8u)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_PackedOptimalSpeedup, optimal_settle_k8,
                  "optimal+settle", 8u)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_PackedOptimalSpeedup, optimal_k8_counter, "optimal", 8u,
                  hh::env::PairingKind::kCounter)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_PackedOptimalSpeedup, optimal_settle_k8_counter,
                  "optimal+settle", 8u, hh::env::PairingKind::kCounter)
    ->Arg(4096);

// Faulted end-to-end ratio: the fault lanes must not give the speedup
// back.
BENCHMARK_CAPTURE(BM_PackedSpeedup, faulted_simple_k4, "simple", 4u, 0.1,
                  0.05)
    ->Arg(4096);

}  // namespace

// Custom main: always emit the machine-readable perf record (benchmark
// refuses a file reporter without --benchmark_out, so inject the flag when
// the caller didn't pass one).
int main(int argc, char** argv) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=bench_out/BENCH_hotpath.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
