// E7 (Lemma 5.4): after the initial search round, the expected relative
// population gap between any two good nests satisfies
// E[epsilon(i, j, 1)] >= 1/(3(n-1)).
//
// The gap seeds Algorithm 3's positive feedback; this bench measures its
// distribution across colony sizes — 4000 environment trials per (n, k)
// cell, fanned out by the sweep runner.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

/// epsilon(1, 2, 1) of one environment trial.
double one_gap(const hh::analysis::Scenario& scenario, std::uint64_t seed) {
  const std::uint32_t n = scenario.config.num_ants;
  hh::env::EnvironmentConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = scenario.config.qualities;
  cfg.seed = seed;
  hh::env::Environment environment(std::move(cfg));
  std::vector<hh::env::Action> search(n, hh::env::Action::search());
  environment.step(search);
  const double hi = std::max(environment.count(1), environment.count(2));
  const double lo = std::min(environment.count(1), environment.count(2));
  // An empty smaller nest makes epsilon unbounded; clamp to n (the largest
  // meaningful relative gap), as in the analysis where epsilon <= n - 1.
  return lo == 0.0 ? static_cast<double>(n) : hi / lo - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("lemma_5_4_initial_gap", argc, argv);

  constexpr int kTrials = 4000;
  exp.declare("gaps",
              hh::analysis::SweepSpec("lemma54")
                  .colony_nest_pairs({{64, 2},
                                      {256, 2},
                                      {1024, 2},
                                      {4096, 2},
                                      {1024, 8},
                                      {4096, 16}},
                                     0.0),  // all nests good
              kTrials, 0x54);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E7 / Lemma 5.4 — initial population gap after the search round",
      "E[epsilon(i,j,1)] >= 1/(3(n-1)) for any two good nests");

  const auto& scenarios = exp.scenarios("gaps");
  const std::size_t trials = exp.trials("gaps");
  const auto gaps =
      exp.runner().map(scenarios, trials, exp.base_seed("gaps"), one_gap);

  hh::util::Table table({"n", "k", "E[eps]", "median eps", "P[eps=0]",
                         "1/(3(n-1))", "bound ok?"});
  std::vector<std::vector<double>> csv_rows;
  bool all_hold = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const double n = scenarios[i].axis_value("n");
    int zero = 0;
    for (double g : gaps[i]) zero += g == 0.0;
    const double bound = 1.0 / (3.0 * (n - 1.0));
    const double mean_gap = hh::util::mean(gaps[i]);
    const bool holds = mean_gap >= bound;
    all_hold = all_hold && holds;
    table.begin_row()
        .num(n, 0)
        .num(scenarios[i].axis_value("k"), 0)
        .num(mean_gap, 5)
        .num(hh::util::median(gaps[i]), 5)
        .num(static_cast<double>(zero) / static_cast<double>(trials), 4)
        .num(bound, 6)
        .cell(holds ? "yes" : "NO");
    csv_rows.push_back({n, scenarios[i].axis_value("k"), mean_gap, bound});
  }
  std::cout << table.render();
  std::printf("\nbound holds for all configurations: %s\n",
              all_hold ? "yes" : "NO");
  std::printf(
      "(the measured E[eps] ~ Theta(sqrt(k/n)) is far above the paper's "
      "1/(3(n-1)) floor, as expected from binomial fluctuations)\n");

  const auto path = hh::analysis::write_csv(
      "lemma_5_4_initial_gap", {"n", "k", "mean_eps", "bound"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return all_hold ? 0 : 1;
}
