// E15 (Section 2): "We believe our results also hold under other natural
// models for randomly pairing ants."
//
// Ablation: run both algorithms under the paper's Algorithm 1 pairing
// (permutation precedence) and under the uniform-proposal lottery model;
// convergence rates and round distributions should be statistically
// indistinguishable in shape.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 25;

hh::analysis::Aggregate measure(hh::core::AlgorithmKind kind,
                                hh::env::PairingKind pairing, std::uint32_t n,
                                std::uint32_t k) {
  hh::core::SimulationConfig cfg;
  cfg.num_ants = n;
  cfg.qualities = hh::core::SimulationConfig::binary_qualities(k, k / 2);
  cfg.pairing = pairing;
  return hh::analysis::run_algorithm_trials(cfg, kind, kTrials,
                                            0x615 + n * 29 + k);
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E15 / Section 2 — pairing-model ablation",
      "the results are believed to hold under other natural random-pairing "
      "models");

  hh::util::Table table({"algorithm", "n", "k", "pairing", "conv%",
                         "rounds(med)", "rounds(p95)"});
  std::vector<std::vector<double>> csv_rows;
  for (auto kind :
       {hh::core::AlgorithmKind::kSimple, hh::core::AlgorithmKind::kOptimal}) {
    for (const auto& [n, k] :
         std::vector<std::pair<std::uint32_t, std::uint32_t>>{
             {1024, 4}, {4096, 8}, {16384, 8}}) {
      for (auto pairing : {hh::env::PairingKind::kPermutation,
                           hh::env::PairingKind::kUniformProposal}) {
        const auto agg = measure(kind, pairing, n, k);
        table.begin_row()
            .cell(std::string(hh::core::algorithm_name(kind)))
            .num(n)
            .num(k)
            .cell(pairing == hh::env::PairingKind::kPermutation
                      ? "permutation (Alg 1)"
                      : "uniform-proposal")
            .num(100.0 * agg.convergence_rate, 1)
            .num(agg.rounds.median, 1)
            .num(agg.rounds.p95, 1);
        csv_rows.push_back(
            {kind == hh::core::AlgorithmKind::kSimple ? 0.0 : 1.0,
             static_cast<double>(n), static_cast<double>(k),
             pairing == hh::env::PairingKind::kPermutation ? 0.0 : 1.0,
             agg.convergence_rate, agg.rounds.median});
      }
    }
  }
  std::printf("\n%d trials per cell:\n", kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: per (algorithm, n, k) row pair, both pairing "
      "models converge at ~100%% with round medians within noise of each "
      "other — supporting the paper's model-robustness remark\n");

  const auto path = hh::analysis::write_csv(
      "ablation_pairing",
      {"algorithm", "n", "k", "pairing", "conv_rate", "median"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
