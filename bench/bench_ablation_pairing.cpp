// E15 (Section 2): "We believe our results also hold under other natural
// models for randomly pairing ants."
//
// Ablation: run both algorithms under the paper's Algorithm 1 pairing
// (permutation precedence) and under the uniform-proposal lottery model;
// convergence rates and round distributions should be statistically
// indistinguishable in shape.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("ablation_pairing", argc, argv);

  constexpr int kTrials = 25;
  exp.declare("pairing-ablation",
              hh::analysis::SweepSpec("pairing-ablation")
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kOptimal})
                  .colony_nest_pairs({{1024, 4}, {4096, 8}, {16384, 8}}, 0.5)
                  .pairings({hh::env::PairingKind::kPermutation,
                             hh::env::PairingKind::kUniformProposal}),
              kTrials, 0x615);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E15 / Section 2 — pairing-model ablation",
      "the results are believed to hold under other natural random-pairing "
      "models");
  const auto batch = exp.run("pairing-ablation");

  hh::util::Table table({"algorithm", "n", "k", "pairing", "conv%",
                         "rounds(med)", "rounds(p95)"});
  std::vector<std::vector<double>> csv_rows;
  for (const auto& result : batch.results) {
    const auto& sc = result.scenario;
    const auto& agg = result.aggregate;
    const bool permutation =
        sc.config.pairing == hh::env::PairingKind::kPermutation;
    table.begin_row()
        .cell(sc.algorithm)
        .num(sc.axis_value("n"), 0)
        .num(sc.axis_value("k"), 0)
        .cell(permutation ? "permutation (Alg 1)" : "uniform-proposal")
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.p95, 1);
    csv_rows.push_back({sc.algorithm == "simple" ? 0.0 : 1.0,
                        sc.axis_value("n"), sc.axis_value("k"),
                        permutation ? 0.0 : 1.0, agg.convergence_rate,
                        agg.rounds.median});
  }
  std::printf("\n%d trials per cell:\n", kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: per (algorithm, n, k) row pair, both pairing "
      "models converge at ~100%% with round medians within noise of each "
      "other — supporting the paper's model-robustness remark\n");

  const auto path = hh::analysis::write_csv(
      "ablation_pairing",
      {"algorithm", "n", "k", "pairing", "conv_rate", "median"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
