// E15 (Section 2): "We believe our results also hold under other natural
// models for randomly pairing ants."
//
// Ablation: run both algorithms under the paper's Algorithm 1 pairing
// (permutation precedence), the uniform-proposal lottery model, and the
// counter-lottery model (per-slot keyed streams; the packed engines' fast
// pairing); convergence rates and round distributions should be
// statistically indistinguishable in shape. The driver ASSERTS the band:
// each alternative model's cell must match the permutation cell of the
// same (algorithm, n, k) within tolerance, and exits nonzero otherwise.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "anthill.hpp"

namespace {

/// Tolerance band vs the permutation baseline of the same cell:
/// convergence rate within 15 percentage points; median rounds within
/// max(25%, 3 rounds) — generous enough for 25-trial sampling noise,
/// tight enough to flag a broken lottery (which shifts medians by 2x+).
bool within_band(double conv, double conv_base, double med, double med_base) {
  if (std::abs(conv - conv_base) > 0.15) return false;
  const double med_tol = std::max(0.25 * med_base, 3.0);
  return std::abs(med - med_base) <= med_tol;
}

double pairing_code(hh::env::PairingKind kind) {
  switch (kind) {
    case hh::env::PairingKind::kPermutation: return 0.0;
    case hh::env::PairingKind::kUniformProposal: return 1.0;
    case hh::env::PairingKind::kCounter: return 2.0;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("ablation_pairing", argc, argv);

  constexpr int kTrials = 25;
  exp.declare("pairing-ablation",
              hh::analysis::SweepSpec("pairing-ablation")
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kOptimal})
                  .colony_nest_pairs({{1024, 4}, {4096, 8}, {16384, 8}}, 0.5)
                  .pairings({hh::env::PairingKind::kPermutation,
                             hh::env::PairingKind::kUniformProposal,
                             hh::env::PairingKind::kCounter}),
              kTrials, 0x615);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E15 / Section 2 — pairing-model ablation",
      "the results are believed to hold under other natural random-pairing "
      "models");
  const auto batch = exp.run("pairing-ablation");

  // Permutation baselines per (algorithm, n, k) cell, for the band check.
  std::map<std::tuple<std::string, double, double>, std::pair<double, double>>
      baseline;
  for (const auto& result : batch.results) {
    const auto& sc = result.scenario;
    if (sc.config.pairing != hh::env::PairingKind::kPermutation) continue;
    baseline[{sc.algorithm, sc.axis_value("n"), sc.axis_value("k")}] = {
        result.aggregate.convergence_rate, result.aggregate.rounds.median};
  }

  hh::util::Table table({"algorithm", "n", "k", "pairing", "conv%",
                         "rounds(med)", "rounds(p95)", "band"});
  std::vector<std::vector<double>> csv_rows;
  int violations = 0;
  for (const auto& result : batch.results) {
    const auto& sc = result.scenario;
    const auto& agg = result.aggregate;
    const auto kind = sc.config.pairing;
    const bool is_baseline = kind == hh::env::PairingKind::kPermutation;
    const auto base =
        baseline.at({sc.algorithm, sc.axis_value("n"), sc.axis_value("k")});
    const bool ok = is_baseline ||
                    within_band(agg.convergence_rate, base.first,
                                agg.rounds.median, base.second);
    if (!ok) ++violations;
    std::string label{hh::env::pairing_name(kind)};
    if (is_baseline) label += " (Alg 1)";
    table.begin_row()
        .cell(sc.algorithm)
        .num(sc.axis_value("n"), 0)
        .num(sc.axis_value("k"), 0)
        .cell(label)
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.rounds.median, 1)
        .num(agg.rounds.p95, 1)
        .cell(is_baseline ? "base" : (ok ? "PASS" : "FAIL"));
    csv_rows.push_back({sc.algorithm == "simple" ? 0.0 : 1.0,
                        sc.axis_value("n"), sc.axis_value("k"),
                        pairing_code(kind), agg.convergence_rate,
                        agg.rounds.median, ok ? 1.0 : 0.0});
  }
  std::printf("\n%d trials per cell:\n", kTrials);
  std::cout << table.render();
  std::printf(
      "\nexpected shape: per (algorithm, n, k) cell, all three pairing "
      "models converge at ~100%% with round medians within noise of the "
      "permutation baseline (band: conv within 15pp, median within "
      "max(25%%, 3 rounds)) — supporting the paper's model-robustness "
      "remark\n");
  if (violations > 0) {
    std::printf("BAND VIOLATIONS: %d cell(s) outside the permutation "
                "tolerance band\n",
                violations);
  } else {
    std::printf("band check: all alternative-pairing cells within "
                "tolerance of permutation\n");
  }

  const auto path = hh::analysis::write_csv(
      "ablation_pairing",
      {"algorithm", "n", "k", "pairing", "conv_rate", "median", "within_band"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return violations > 0 ? 1 : 0;
}
