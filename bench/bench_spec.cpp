// The generic file-driven sweep runner: executes ANY serialized
// ExperimentSpec — including specs for algorithms registered through
// registry v2 that no hand-written driver knows about (e.g. the
// idle-search variant; see examples/idle_search_sweep.json):
//
//   ./bench_spec --spec examples/idle_search_sweep.json
//   ./bench_spec --algorithms          # what can a spec reference?
//   ./bench_thm_5_11_simple --dump-spec | ./bench_spec --spec -
//
// Accepts the standard driver flags (--resume-dir/--threads/--trials/
// --seed/--progress, and --dump-spec to echo the canonical normalized
// form). Every sweep's tidy table goes to stdout, its tidy CSV to
// bench_out/spec_<sweep>.csv, and a run manifest (spec identity, git sha,
// engine split) to bench_out/spec_<sweep>.manifest.json.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "anthill.hpp"

namespace {

std::string capability_summary(const hh::core::AlgorithmSpec& spec) {
  if (!spec.pack) return "scalar-only";
  const hh::core::Capabilities& caps = spec.capabilities;
  std::string out = "packed";
  if (caps.crash_faults) out += "+crash";
  if (caps.byzantine_faults) out += "+byz";
  if (caps.count_noise || caps.quality_noise) out += "+noise";
  if (caps.partial_synchrony) out += "+skip";
  return out;
}

int list_algorithms() {
  auto& registry = hh::core::AlgorithmRegistry::instance();
  hh::util::Table table({"algorithm", "engines", "params", "summary"});
  for (const std::string& name : registry.names()) {
    const auto spec = registry.find(name);
    std::string params;
    for (const std::string& key : spec->params) {
      if (!params.empty()) params += ",";
      params += key;
    }
    table.begin_row()
        .cell(name)
        .cell(spec->simulation ? "custom" : capability_summary(*spec))
        .cell(params.empty() ? "-" : params)
        .cell(spec->summary.empty() ? "-" : spec->summary);
  }
  std::cout << table.render();
  std::printf(
      "\nparameter schema (set under \"params\" in a spec file):\n");
  for (const hh::core::ParamInfo& info : hh::core::algorithm_param_table()) {
    std::printf("  %-22.*s [%g, %g]  %.*s\n",
                static_cast<int>(info.key.size()), info.key.data(),
                info.min_value, info.max_value,
                static_cast<int>(info.doc.size()), info.doc.data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algorithms") == 0) return list_algorithms();
  }
  const hh::analysis::cli::Options options =
      hh::analysis::cli::parse_options(argc, argv, "bench_spec");
  if (options.spec_path.empty()) {
    std::fprintf(stderr,
                 "bench_spec needs --spec FILE (or --algorithms to list "
                 "what specs can reference)\n");
    return 2;
  }

  hh::analysis::ExperimentSpec spec;
  try {
    spec = hh::analysis::load_experiment_spec(options.spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  for (hh::analysis::SweepEntry& entry : spec.sweeps) {
    if (options.trials) entry.trials = *options.trials;
    if (options.base_seed) entry.base_seed = *options.base_seed;
  }
  if (options.dump_spec) {
    std::cout << hh::analysis::dump_experiment_spec(spec) << '\n';
    return 0;
  }

  const hh::analysis::Runner runner(
      hh::analysis::RunnerOptions{options.threads});
  for (const hh::analysis::SweepEntry& entry : spec.sweeps) {
    std::printf("\n[%s / %s] %zu scenario(s) x %zu trial(s), seed %llu, %u "
                "threads\n",
                spec.name.empty() ? "spec" : spec.name.c_str(),
                entry.name.c_str(), entry.size(), entry.trials,
                static_cast<unsigned long long>(entry.base_seed),
                runner.threads());
    const hh::analysis::BatchResult batch = hh::analysis::run_sweep(
        runner, entry.expand(), entry.trials, entry.base_seed,
        options.resume_dir,
        options.progress ? hh::analysis::stderr_progress(entry.name)
                         : hh::analysis::ProgressFn{});
    std::cout << batch.tidy_table().render();
    // spec_csv_name is the naming contract shared with anthill-client:
    // both must emit the same file for the same sweep.
    const std::string path = hh::analysis::write_csv(
        hh::service::spec_csv_name(entry.name), batch.tidy_csv_header(),
        batch.tidy_rows());
    if (!path.empty()) {
      std::printf("csv: %s\n", path.c_str());
      hh::analysis::ManifestInfo info;
      info.threads = runner.threads();
      info.store_dir = options.resume_dir;
      const std::string manifest =
          hh::analysis::write_run_manifest(path, batch, info);
      if (!manifest.empty()) std::printf("manifest: %s\n", manifest.c_str());
    }
  }
  return 0;
}
