// E2 + E3 (Lemma 3.1, Theorem 3.2): the lower-bound experiment.
//
// The location of the single good nest is a rumor; informed ants recruit
// to it every round (the fastest possible positive feedback) while
// ignorant ants wait at home, search, or mix. Any HouseHunting algorithm
// must inform all n ants, so rounds-to-inform-all lower-bounds achievable
// running time. The paper proves Omega(log n); rumor spreading matches it
// with O(log n), so the measured curves must be straight lines against
// log2(n).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr int kTrials = 15;

hh::analysis::Aggregate measure(std::uint32_t n, std::uint32_t k,
                                hh::core::IgnorantStrategy strategy) {
  return hh::analysis::aggregate(hh::analysis::run_trials(
      [&](std::uint64_t seed) {
        hh::core::RumorSpreadConfig cfg;
        cfg.num_ants = n;
        cfg.num_nests = k;
        cfg.seed = seed;
        cfg.strategy = strategy;
        const auto result = hh::core::run_rumor_spread(cfg);
        hh::analysis::TrialStats t;
        t.converged = result.all_informed;
        t.rounds = result.rounds;
        t.winner_quality = 1.0;
        return t;
      },
      kTrials, 0x32 + n + k));
}

const char* strategy_name(hh::core::IgnorantStrategy s) {
  switch (s) {
    case hh::core::IgnorantStrategy::kWaitAtHome: return "wait-at-home";
    case hh::core::IgnorantStrategy::kSearch: return "search";
    case hh::core::IgnorantStrategy::kMixed: return "mixed";
  }
  return "?";
}

}  // namespace

int main() {
  hh::analysis::print_banner(
      "E2+E3 / Lemma 3.1, Theorem 3.2 — rumor-spreading lower bound",
      "any algorithm needs Omega(log n) rounds; an ignorant ant stays "
      "ignorant w.p. >= 1/4 per round");

  const std::vector<std::uint32_t> ns = {1u << 6,  1u << 8,  1u << 10,
                                         1u << 12, 1u << 14, 1u << 16,
                                         1u << 18};
  const std::vector<hh::core::IgnorantStrategy> strategies = {
      hh::core::IgnorantStrategy::kWaitAtHome,
      hh::core::IgnorantStrategy::kSearch, hh::core::IgnorantStrategy::kMixed};

  // --- Lemma 3.1 check -----------------------------------------------------
  hh::util::Table lemma_table({"strategy", "k", "P[stay ignorant]", ">=1/4?"});
  for (auto strategy : strategies) {
    for (std::uint32_t k : {2u, 16u}) {
      hh::core::RumorSpreadConfig cfg;
      cfg.num_ants = 1 << 14;
      cfg.num_nests = k;
      cfg.seed = 31;
      cfg.strategy = strategy;
      const auto result = hh::core::run_rumor_spread(cfg);
      lemma_table.begin_row()
          .cell(strategy_name(strategy))
          .num(k)
          .num(result.stay_ignorant_rate, 4)
          .cell(result.stay_ignorant_rate >= 0.25 ? "yes" : "NO");
    }
  }
  std::printf("\n[Lemma 3.1] per-round ignorance retention (n = 2^14):\n");
  std::cout << lemma_table.render();

  // --- Theorem 3.2 scaling -------------------------------------------------
  std::vector<hh::util::Series> series;
  std::vector<std::vector<double>> csv_rows;
  char marker = 'a';
  for (auto strategy : strategies) {
    hh::util::Table table({"n", "log2(n)", "trials", "informed%",
                           "rounds(med)", "rounds(mean)", "rounds(p95)",
                           "(log4 n)/2 bound"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::uint32_t n : ns) {
      const auto agg = measure(n, 4, strategy);
      const double log4_bound = std::log2(static_cast<double>(n)) / 4.0;
      table.begin_row()
          .num(n)
          .num(std::log2(static_cast<double>(n)), 1)
          .num(agg.trials)
          .num(100.0 * agg.convergence_rate, 1)
          .num(agg.rounds.median, 1)
          .num(agg.rounds.mean, 1)
          .num(agg.rounds.p95, 1)
          .num(log4_bound, 1);
      xs.push_back(n);
      ys.push_back(agg.rounds.median);
      csv_rows.push_back({static_cast<double>(n),
                          static_cast<double>(strategy == strategies[0]   ? 0
                                              : strategy == strategies[1] ? 1
                                                                          : 2),
                          agg.rounds.median, agg.rounds.mean, agg.rounds.p95});
    }
    std::printf("\n[Theorem 3.2] strategy = %s (k = 4):\n",
                strategy_name(strategy));
    std::cout << table.render();
    const auto fit = hh::util::fit_logarithmic(xs, ys);
    hh::analysis::print_fit(fit, "log2(n)",
                            "Omega(log n) rounds, matched by O(log n)");
    series.push_back({strategy_name(strategy), xs, ys, marker++});
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "n (ants)";
  opt.y_label = "median rounds to inform all";
  opt.title = "\nFigure E3: rumor spreading time vs colony size";
  std::cout << hh::util::plot(series, opt);

  const auto path = hh::analysis::write_csv(
      "thm_3_2_lower_bound", {"n", "strategy", "median", "mean", "p95"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
