// E2 + E3 (Lemma 3.1, Theorem 3.2): the lower-bound experiment.
//
// The location of the single good nest is a rumor; informed ants recruit
// to it every round (the fastest possible positive feedback) while
// ignorant ants wait at home, search, or mix. Any HouseHunting algorithm
// must inform all n ants, so rounds-to-inform-all lower-bounds achievable
// running time. The paper proves Omega(log n); rumor spreading matches it
// with O(log n), so the measured curves must be straight lines against
// log2(n). The rumor-spread process is not a Simulation, so scenarios
// carry (n, k, strategy) and Runner::map drives run_rumor_spread.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

const char* strategy_name(hh::core::IgnorantStrategy s) {
  switch (s) {
    case hh::core::IgnorantStrategy::kWaitAtHome: return "wait-at-home";
    case hh::core::IgnorantStrategy::kSearch: return "search";
    case hh::core::IgnorantStrategy::kMixed: return "mixed";
  }
  return "?";
}

hh::core::RumorSpreadConfig rumor_config(
    const hh::analysis::Scenario& scenario, std::uint64_t seed) {
  hh::core::RumorSpreadConfig cfg;
  cfg.num_ants = scenario.config.num_ants;
  cfg.num_nests =
      static_cast<std::uint32_t>(scenario.config.qualities.size());
  cfg.seed = seed;
  cfg.strategy = static_cast<hh::core::IgnorantStrategy>(
      static_cast<int>(scenario.axis_value("strategy")));
  return cfg;
}

hh::analysis::TrialStats rumor_trial(const hh::analysis::Scenario& scenario,
                                     std::uint64_t seed) {
  const auto result =
      hh::core::run_rumor_spread(rumor_config(scenario, seed));
  hh::analysis::TrialStats t;
  t.converged = result.all_informed;
  t.rounds = result.rounds;
  t.winner_quality = 1.0;
  return t;
}

hh::analysis::SweepSpec::Point strategy_point(
    hh::core::IgnorantStrategy strategy) {
  return {strategy_name(strategy), static_cast<double>(strategy),
          [](hh::analysis::Scenario&) {}};
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("thm_3_2_lower_bound", argc, argv);

  constexpr int kScalingTrials = 15;
  const std::vector<std::uint32_t> ns = {1u << 6,  1u << 8,  1u << 10,
                                         1u << 12, 1u << 14, 1u << 16,
                                         1u << 18};
  const std::vector<hh::core::IgnorantStrategy> strategies = {
      hh::core::IgnorantStrategy::kWaitAtHome,
      hh::core::IgnorantStrategy::kSearch, hh::core::IgnorantStrategy::kMixed};

  exp.declare("lemma31",
              hh::analysis::SweepSpec("lemma31")
                  .base([] {
                    hh::core::SimulationConfig cfg;
                    cfg.num_ants = 1 << 14;
                    return cfg;
                  }())
                  .axis("strategy", {strategy_point(strategies[0]),
                                     strategy_point(strategies[1]),
                                     strategy_point(strategies[2])})
                  .nest_counts({2, 16}, 0.0),
              /*trials=*/1, 31);
  exp.declare("thm32",
              hh::analysis::SweepSpec("thm32")
                  .axis("strategy", {strategy_point(strategies[0]),
                                     strategy_point(strategies[1]),
                                     strategy_point(strategies[2])})
                  .nest_counts({4}, 0.0)
                  .colony_sizes(ns),
              kScalingTrials, 0x32);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E2+E3 / Lemma 3.1, Theorem 3.2 — rumor-spreading lower bound",
      "any algorithm needs Omega(log n) rounds; an ignorant ant stays "
      "ignorant w.p. >= 1/4 per round");

  // --- Lemma 3.1 check -----------------------------------------------------
  const auto& lemma_scenarios = exp.scenarios("lemma31");
  const auto lemma_runs = exp.runner().map(
      lemma_scenarios, exp.trials("lemma31"), exp.base_seed("lemma31"),
      [](const hh::analysis::Scenario& sc, std::uint64_t seed) {
        return hh::core::run_rumor_spread(rumor_config(sc, seed))
            .stay_ignorant_rate;
      });
  hh::util::Table lemma_table({"strategy", "k", "P[stay ignorant]", ">=1/4?"});
  for (std::size_t i = 0; i < lemma_scenarios.size(); ++i) {
    const auto& sc = lemma_scenarios[i];
    const double rate = lemma_runs[i][0];
    lemma_table.begin_row()
        .cell(strategy_name(static_cast<hh::core::IgnorantStrategy>(
            static_cast<int>(sc.axis_value("strategy")))))
        .num(sc.axis_value("k"), 0)
        .num(rate, 4)
        .cell(rate >= 0.25 ? "yes" : "NO");
  }
  std::printf("\n[Lemma 3.1] per-round ignorance retention (n = 2^14):\n");
  std::cout << lemma_table.render();

  // --- Theorem 3.2 scaling -------------------------------------------------
  const auto& scenarios = exp.scenarios("thm32");
  // The block indexing below assumes the in-code (strategy x n) grid.
  HH_EXPECTS(scenarios.size() == strategies.size() * ns.size());
  const auto cells = exp.runner().map(scenarios, exp.trials("thm32"),
                                      exp.base_seed("thm32"), rumor_trial);

  std::vector<hh::util::Series> series;
  std::vector<std::vector<double>> csv_rows;
  char marker = 'a';
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    hh::util::Table table({"n", "log2(n)", "trials", "informed%",
                           "rounds(med)", "rounds(mean)", "rounds(p95)",
                           "(log4 n)/2 bound"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      const std::size_t index = si * ns.size() + ni;
      // Guard the stride pairing against axis reordering in the spec.
      HH_EXPECTS(scenarios[index].axis_value("strategy") ==
                 static_cast<double>(strategies[si]));
      HH_EXPECTS(scenarios[index].axis_value("n") == ns[ni]);
      const auto agg = hh::analysis::aggregate(cells[index]);
      const double n = scenarios[index].axis_value("n");
      const double log4_bound = std::log2(n) / 4.0;
      table.begin_row()
          .num(n, 0)
          .num(std::log2(n), 1)
          .num(static_cast<std::uint64_t>(agg.trials))
          .num(100.0 * agg.convergence_rate, 1)
          .num(agg.rounds.median, 1)
          .num(agg.rounds.mean, 1)
          .num(agg.rounds.p95, 1)
          .num(log4_bound, 1);
      xs.push_back(n);
      ys.push_back(agg.rounds.median);
      csv_rows.push_back({n, static_cast<double>(si), agg.rounds.median,
                          agg.rounds.mean, agg.rounds.p95});
    }
    std::printf("\n[Theorem 3.2] strategy = %s (k = 4):\n",
                strategy_name(strategies[si]));
    std::cout << table.render();
    const auto fit = hh::util::fit_logarithmic(xs, ys);
    hh::analysis::print_fit(fit, "log2(n)",
                            "Omega(log n) rounds, matched by O(log n)");
    series.push_back({strategy_name(strategies[si]), xs, ys, marker++});
  }

  hh::util::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "n (ants)";
  opt.y_label = "median rounds to inform all";
  opt.title = "\nFigure E3: rumor spreading time vs colony size";
  std::cout << hh::util::plot(series, opt);

  const auto path = hh::analysis::write_csv(
      "thm_3_2_lower_bound", {"n", "strategy", "median", "mean", "p95"},
      csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
