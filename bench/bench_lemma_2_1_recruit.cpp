// E1 (Lemma 2.1): an ant executing recruit(1, ·) in a round with
// c(0, r) >= 2 succeeds in recruiting with probability at least 1/16.
//
// We measure the empirical per-recruiter success probability across home-
// nest sizes and active/passive mixes, against the paper's 1/16 bound.
// Each mix is a Scenario (axes: active, passive); the per-scenario
// measurement drives the environment directly via Runner::map.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

constexpr std::uint32_t kRounds = 3000;

/// Empirical per-recruiter success probability over kRounds rounds.
double success_probability(const hh::analysis::Scenario& scenario,
                           std::uint64_t seed) {
  const auto active =
      static_cast<std::uint32_t>(scenario.axis_value("active"));
  const std::uint32_t passive = scenario.config.num_ants - active;
  hh::env::EnvironmentConfig cfg;
  cfg.num_ants = scenario.config.num_ants;
  cfg.qualities = scenario.config.qualities;
  cfg.seed = seed;
  hh::env::Environment environment(std::move(cfg));

  // Everyone learns nest 1 in the search round, then the actives recruit
  // for it each round while the passives wait.
  std::vector<hh::env::Action> search(active + passive,
                                      hh::env::Action::search());
  environment.step(search);
  std::vector<hh::env::Action> round;
  for (std::uint32_t a = 0; a < active; ++a) {
    round.push_back(hh::env::Action::recruit(true, 1));
  }
  for (std::uint32_t p = 0; p < passive; ++p) {
    round.push_back(hh::env::Action::recruit(false, 1));
  }

  std::uint64_t successes = 0;
  for (std::uint32_t r = 0; r < kRounds; ++r) {
    const auto& outcomes = environment.step(round);
    for (std::uint32_t a = 0; a < active; ++a) {
      successes += outcomes[a].recruit_succeeded ? 1 : 0;
    }
  }
  return static_cast<double>(successes) /
         (static_cast<double>(active) * kRounds);
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("lemma_2_1_recruit", argc, argv);

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> mixes = {
      {2, 0},    {4, 0},     {16, 0},   {64, 0},   {256, 0},  {1024, 0},
      {4096, 0}, {2, 14},    {8, 8},    {8, 56},   {32, 96},  {128, 128},
      {64, 960}, {512, 512}, {1024, 3072}};

  std::vector<hh::analysis::SweepSpec::Point> points;
  for (const auto& [active, passive] : mixes) {
    points.push_back({std::to_string(active) + "+" + std::to_string(passive),
                      static_cast<double>(active),
                      [active = active, passive = passive](
                          hh::analysis::Scenario& sc) {
                        sc.axes.push_back({"passive",
                                           static_cast<double>(passive),
                                           std::to_string(passive)});
                        sc.config.num_ants = active + passive;
                        sc.config.qualities = {1.0};
                      }});
  }
  exp.declare("mixes",
              hh::analysis::SweepSpec("lemma21")
                  .axis("active", std::move(points)),
              /*trials=*/1, 0xE1);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E1 / Lemma 2.1 — recruit(1,.) success probability",
      "each active recruiter succeeds w.p. >= 1/16 when c(0,r) >= 2");

  const auto& scenarios = exp.scenarios("mixes");
  const auto probabilities = exp.runner().map(
      scenarios, exp.trials("mixes"), exp.base_seed("mixes"),
      success_probability);

  hh::util::Table table(
      {"active", "passive", "c(0,r)", "P[success]", "ci(99%)", ">=1/16?"});
  std::vector<std::vector<double>> csv_rows;
  bool all_hold = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    // Read the mix off the scenario itself (a --spec file may reshape it).
    const auto active =
        static_cast<std::uint32_t>(scenarios[i].axis_value("active"));
    const auto passive =
        static_cast<std::uint32_t>(scenarios[i].axis_value("passive"));
    // Mean over however many trials ran (--trials can raise the default
    // 1); each trial contributes active * kRounds Bernoulli samples.
    double p = 0.0;
    for (const double sample : probabilities[i]) p += sample;
    p /= static_cast<double>(probabilities[i].size());
    const double ci = hh::util::proportion_ci_halfwidth(
        p, static_cast<std::size_t>(active) * kRounds *
               probabilities[i].size());
    const bool holds = p >= 1.0 / 16.0;
    all_hold = all_hold && holds;
    table.begin_row()
        .num(active)
        .num(passive)
        .num(active + passive)
        .num(p, 4)
        .num(ci, 5)
        .cell(holds ? "yes" : "NO");
    csv_rows.push_back({static_cast<double>(active),
                        static_cast<double>(passive), p, ci});
  }
  std::cout << table.render();
  std::printf("\npaper bound: 1/16 = %.4f;  bound holds for all mixes: %s\n",
              1.0 / 16.0, all_hold ? "yes" : "NO");
  const auto path = hh::analysis::write_csv(
      "lemma_2_1_recruit", {"active", "passive", "p_success", "ci99"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return all_hold ? 0 : 1;
}
