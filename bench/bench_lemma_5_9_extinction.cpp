// E8 (Lemmas 5.8 + 5.9): in Algorithm 3, a nest whose population falls
// below ~n/(dk) keeps shrinking and reaches zero within O(k log n)
// rounds.
//
// Measurement: run Algorithm 3 with k equal good nests and record, for
// every nest that loses, (a) the first round its committed population
// drops below n/(dk) with d = 64 (the paper's constant) and (b) its
// extinction round. The paper predicts the spread between the two is
// O(k log n), and that populations below the threshold never recover to
// win. Trials fan out on the sweep runner; digests merge serially.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

namespace {

/// Per-trial digest of the extinction dynamics.
struct Extinction {
  std::vector<double> below_to_death;  // rounds from threshold-cross to death
  std::uint32_t recovered = 0;         // crossed below yet won the race
  std::uint32_t losers = 0;
};

Extinction collect(const hh::analysis::Scenario& scenario,
                   std::uint64_t seed) {
  const std::uint32_t n = scenario.config.num_ants;
  const auto k =
      static_cast<std::uint32_t>(scenario.config.qualities.size());
  auto sim = scenario.make_simulation(seed);
  const auto result = sim->run();
  Extinction out;
  if (!result.converged) return out;

  const double threshold = static_cast<double>(n) / (64.0 * k);
  for (hh::env::NestId i = 1; i <= k; ++i) {
    const auto series =
        hh::analysis::count_series(result.trajectories, i, /*committed=*/true);
    std::uint32_t below_round = 0;
    for (std::size_t r = 0; r < series.size(); ++r) {
      if (series[r] < threshold) {
        below_round = static_cast<std::uint32_t>(r + 1);
        break;
      }
    }
    if (i == result.winner) {
      out.recovered += below_round != 0 ? 1 : 0;
      continue;
    }
    ++out.losers;
    const std::uint32_t death =
        hh::analysis::extinction_round(result.trajectories, i);
    if (below_round != 0 && death >= below_round) {
      out.below_to_death.push_back(static_cast<double>(death - below_round));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("lemma_5_9_extinction", argc, argv);

  constexpr int kTrials = 20;
  auto base = hh::core::SimulationConfig{};
  base.record_trajectories = true;
  exp.declare("extinction",
              hh::analysis::SweepSpec("lemma59")
                  .base(base)
                  .algorithm(hh::core::AlgorithmKind::kSimple)
                  .colony_nest_pairs({{1024, 2},
                                      {1024, 4},
                                      {4096, 4},
                                      {4096, 8},
                                      {16384, 8}},
                                     0.0),  // all nests good
              kTrials, 0x59);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E8 / Lemmas 5.8 + 5.9 — small nests die out",
      "a nest below n/(dk) ants empties within O(k log n) rounds and never "
      "recovers");

  const auto& scenarios = exp.scenarios("extinction");
  const auto digests = exp.runner().map(
      scenarios, exp.trials("extinction"), exp.base_seed("extinction"),
      collect);

  hh::util::Table table({"n", "k", "losers", "med cross->death",
                         "p95 cross->death", "64(c+4)k*log n (c=1)",
                         "recoveries"});
  std::vector<std::vector<double>> csv_rows;
  std::uint32_t total_recoveries = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    Extinction stats;
    for (const Extinction& d : digests[s]) {
      stats.below_to_death.insert(stats.below_to_death.end(),
                                  d.below_to_death.begin(),
                                  d.below_to_death.end());
      stats.recovered += d.recovered;
      stats.losers += d.losers;
    }
    total_recoveries += stats.recovered;
    const double n = scenarios[s].axis_value("n");
    const double k = scenarios[s].axis_value("k");
    const double paper_budget = 64.0 * 5.0 * k * std::log2(n);
    if (stats.below_to_death.empty()) continue;
    const auto summary = hh::util::summarize(stats.below_to_death);
    table.begin_row()
        .num(n, 0)
        .num(k, 0)
        .num(stats.losers)
        .num(summary.median, 1)
        .num(summary.p95, 1)
        .num(paper_budget, 0)
        .num(stats.recovered);
    csv_rows.push_back({n, k, summary.median, summary.p95, paper_budget});
  }
  std::cout << table.render();
  std::printf(
      "\nall losing nests crossed the n/(64k) threshold and died well "
      "within the paper's O(k log n) budget; nests that crossed the "
      "threshold recovered to win %u times (paper: w.h.p. never)\n",
      total_recoveries);

  const auto path = hh::analysis::write_csv(
      "lemma_5_9_extinction",
      {"n", "k", "median_rounds", "p95_rounds", "paper_budget"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
