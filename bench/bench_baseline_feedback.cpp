// E16 (negative control): population-proportional positive feedback is
// what drives consensus.
//
// The uniform-recruit baseline removes the feedback (active ants recruit
// at a constant rate regardless of nest population): every nest then
// reinforces at the same relative rate — the neutral Polya-urn regime —
// and proportions wander instead of concentrating. Algorithm 3, whose
// reinforcement is quadratic (a p-fraction of ants each recruiting with
// probability p), converges within the same round budget.
//
// The quorum baseline shows the biology-literature speed/accuracy
// trade-off: thresholds at or below the initial occupancy n/k lock
// several nests at once and split the colony.
#include <cstdio>
#include <iostream>
#include <vector>

#include "anthill.hpp"

int main(int argc, char** argv) {
  hh::analysis::cli::Experiment exp("baseline_feedback", argc, argv);

  constexpr int kTrials = 20;
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint32_t kQuorumK = 4;
  const std::vector<std::uint32_t> ks = {2, 4, 8};

  // Part 1: uniform-recruit vs simple under an equal round budget
  // (~10x simple's typical need, so failures are structural, not caps).
  exp.declare("feedback-removal",
              hh::analysis::SweepSpec("feedback-removal")
                  .base([] {
                    hh::core::SimulationConfig cfg;
                    cfg.num_ants = kN;
                    return cfg;
                  }())
                  .algorithms({hh::core::AlgorithmKind::kSimple,
                               hh::core::AlgorithmKind::kUniformRecruit})
                  .axis("k",
                        {static_cast<double>(ks[0]),
                         static_cast<double>(ks[1]),
                         static_cast<double>(ks[2])},
                        [](hh::analysis::Scenario& sc, double k) {
                          const auto kk = static_cast<std::uint32_t>(k);
                          sc.config.qualities =
                              hh::core::SimulationConfig::binary_qualities(
                                  kk, 0);  // all nests good
                          sc.config.max_rounds = 200 * kk;
                        }),
              kTrials, 0x616);
  // Part 2: quorum threshold sweep (speed vs accuracy).
  exp.declare("quorum-threshold",
              hh::analysis::SweepSpec("quorum-threshold")
                  .base([] {
                    hh::core::SimulationConfig cfg;
                    cfg.num_ants = kN;
                    cfg.qualities =
                        hh::core::SimulationConfig::binary_qualities(
                            kQuorumK, 0);
                    cfg.max_rounds = 3000;
                    return cfg;
                  }())
                  .algorithm(hh::core::AlgorithmKind::kQuorum)
                  .quorum_fractions({0.10, 0.20, 0.30, 0.40, 0.55}),
              kTrials, 0x617);
  if (exp.dump_spec_requested()) return 0;

  hh::analysis::print_banner(
      "E16 — baselines: feedback removal and quorum thresholds",
      "positive feedback is necessary for consensus (Section 1: 'this is "
      "achieved through positive feedback')");

  const auto batch = exp.run("feedback-removal");

  hh::util::Table table({"k", "budget", "simple conv%", "simple med",
                         "uniform conv%", "uniform med"});
  std::vector<std::vector<double>> csv_rows;
  // The stride pairing assumes the in-code ({simple, uniform} x k) grid.
  HH_EXPECTS(batch.results.size() == 2 * ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    // Guard the stride pairing against axis reordering in the spec.
    HH_EXPECTS(batch.results[i].scenario.algorithm == "simple");
    HH_EXPECTS(batch.results[ks.size() + i].scenario.algorithm ==
               "uniform-recruit");
    const auto& simple = batch.results[i].aggregate;
    const auto& uniform = batch.results[ks.size() + i].aggregate;
    table.begin_row()
        .num(ks[i])
        .num(200 * ks[i])
        .num(100.0 * simple.convergence_rate, 1)
        .num(simple.converged ? simple.rounds.median : 0.0, 1)
        .num(100.0 * uniform.convergence_rate, 1)
        .num(uniform.converged ? uniform.rounds.median : 0.0, 1);
    csv_rows.push_back({static_cast<double>(ks[i]), simple.convergence_rate,
                        uniform.convergence_rate});
  }
  std::printf("\n[feedback removal] n = %u, all nests good:\n", kN);
  std::cout << table.render();
  std::printf(
      "expected shape: simple ~100%%, uniform near 0%% — equal relative "
      "reinforcement cannot concentrate the colony\n");

  const auto qbatch = exp.run("quorum-threshold");
  hh::util::Table qtable({"quorum fraction", "threshold/(n/k)", "conv%",
                          "rounds(med)", "split risk"});
  for (const auto& result : qbatch.results) {
    const auto& agg = result.aggregate;
    const double fraction = result.scenario.axis_value("quorum_fraction");
    const double rel = fraction * kQuorumK;  // threshold over n/k
    qtable.begin_row()
        .num(fraction, 2)
        .num(rel, 2)
        .num(100.0 * agg.convergence_rate, 1)
        .num(agg.converged ? agg.rounds.median : 0.0, 1)
        .cell(rel <= 1.0 ? "high (locks at t=1)" : "low");
    csv_rows.push_back({10.0 + fraction, agg.convergence_rate,
                        agg.converged ? agg.rounds.median : 0.0});
  }
  std::printf("\n[quorum sweep] n = %u, k = %u, all nests good:\n", kN,
              kQuorumK);
  std::cout << qtable.render();
  std::printf(
      "expected shape: fractions <= n/k lock every nest immediately "
      "(split colony, conv%% ~ 0); higher thresholds restore consensus — "
      "the speed/accuracy trade-off of quorum sensing [Pratt et al.]\n");

  const auto path = hh::analysis::write_csv(
      "baseline_feedback", {"config", "rate_a", "rate_b"}, csv_rows);
  if (!path.empty()) std::printf("csv: %s\n", path.c_str());
  return 0;
}
